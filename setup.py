"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that legacy (``--no-use-pep517`` / offline, wheel-less) editable
installs keep working on minimal environments.
"""

from setuptools import setup

setup()
