"""Tests for the exhaustive model checker."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration, enumerate_reachable, initial_state
from repro.checking.model_checker import successors
from repro.checking.states import SchedulerState, world_from_state
from repro.core import Algorithm, G, Grid, Synchrony, W, occ
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.rules import Guard, Rule

ASYNC_NAMES = [
    "async_phi2_l3_chir_k2",
    "async_phi2_l3_nochir_k3",
    "async_phi2_l2_chir_k3",
    "async_phi2_l2_nochir_k4",
    "async_phi1_l3_chir_k3",
]


def oscillator() -> Algorithm:
    """A deliberately non-terminating two-robot algorithm (ping-pong)."""
    rules = (
        # The two robots perpetually swap places: G always steps onto the W's
        # node and W always steps onto the G's node.
        Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
        Rule("R2", G, Guard.build(1, W=occ(W)), G, "W"),
        Rule("R3", W, Guard.build(1, W=occ(G)), W, "W"),
        Rule("R4", W, Guard.build(1, E=occ(G)), W, "E"),
    )
    return Algorithm(
        name="oscillator",
        synchrony=Synchrony.SSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=lambda m, n: [((0, 1), G), ((0, 2), W)],
        min_m=1,
        min_n=4,
    )


class TestStates:
    def test_initial_state_is_canonical(self):
        algorithm = get("async_phi2_l3_chir_k2")
        state = initial_state(algorithm, Grid(3, 4))
        assert state == SchedulerState.from_records(reversed(state.robots))
        assert state.all_idle()

    def test_world_round_trip(self):
        algorithm = get("async_phi2_l3_chir_k2")
        state = initial_state(algorithm, Grid(3, 4))
        world = world_from_state(Grid(3, 4), state)
        assert world.configuration().robot_count == algorithm.k


class TestSuccessors:
    def test_fsync_is_deterministic_for_algorithm1(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 4)
        state = initial_state(algorithm, grid)
        assert len(successors(algorithm, grid, state, "FSYNC")) == 1

    def test_ssync_branches_over_subsets(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 4)
        state = initial_state(algorithm, grid)
        # Two enabled robots -> three non-empty subsets.
        assert len(successors(algorithm, grid, state, "SSYNC")) == 3

    def test_async_offers_looks_only_to_enabled_robots(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        state = initial_state(algorithm, grid)
        # Only the W robot is enabled initially, so exactly one Look step.
        assert len(successors(algorithm, grid, state, "ASYNC")) == 1

    def test_terminal_states_have_no_successors(self):
        from repro.checking.states import AsyncRobotState

        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 3)
        # The paper's odd-m terminal configuration: G and W adjacent in the
        # southeast corner.
        state = SchedulerState.from_records(
            [AsyncRobotState(pos=(2, 1), color="G"), AsyncRobotState(pos=(2, 2), color="W")]
        )
        assert successors(algorithm, grid, state, "SSYNC") == []


class TestExhaustiveChecks:
    @pytest.mark.parametrize("name", ASYNC_NAMES)
    def test_ssync_terminating_exploration_holds(self, name):
        algorithm = get(name)
        grid = Grid(max(3, algorithm.min_m), max(4, algorithm.min_n))
        result = check_terminating_exploration(algorithm, grid, model="SSYNC")
        assert result.ok, result.summary()

    @pytest.mark.parametrize("name", ASYNC_NAMES)
    def test_async_terminating_exploration_holds_on_small_grid(self, name):
        algorithm = get(name)
        grid = Grid(algorithm.min_m, max(4, algorithm.min_n))
        result = check_terminating_exploration(algorithm, grid, model="ASYNC", max_states=500_000)
        assert result.ok, result.summary()

    def test_fsync_check_for_fsync_algorithm(self):
        result = check_terminating_exploration(get("fsync_phi1_l2_chir_k3"), Grid(3, 4), model="FSYNC")
        assert result.ok and result.terminal_states == 1

    def test_detects_nontermination(self):
        result = check_terminating_exploration(oscillator(), Grid(1, 4), model="SSYNC")
        assert not result.terminates
        assert not result.ok
        assert "infinite" in (result.counterexample or "")

    def test_detects_incomplete_coverage(self):
        # Algorithm 1 is only correct under FSYNC; under the SSYNC adversary it
        # must fail Definition 1 on some grid (Theorem 1 machinery aside, the
        # checker sees it directly).
        result = check_terminating_exploration(get("fsync_phi2_l2_chir_k2"), Grid(4, 4), model="SSYNC")
        assert not result.ok

    def test_state_budget_is_enforced(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        with pytest.raises(StateSpaceLimitExceeded):
            check_terminating_exploration(algorithm, Grid(4, 6), model="ASYNC", max_states=10)

    def test_enumerate_reachable_counts_states(self):
        count = enumerate_reachable(get("async_phi2_l3_chir_k2"), Grid(3, 4), model="SSYNC")
        assert count > 5
