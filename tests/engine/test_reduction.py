"""Tests for the composable reduction subsystem (grid x color x POR)."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.algorithms import get
from repro.algorithms import registry as algorithm_registry
from repro.checking import check_terminating_exploration, enumerate_reachable
from repro.core import Algorithm, B, G, Grid, Synchrony, W, occ
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.rules import EMPTY, Guard, Rule
from repro.engine import (
    AlgorithmTransitionSystem,
    CampaignTask,
    ExplorationPool,
    ParallelCampaignEngine,
    ReductionPipeline,
    apriori_reduction_factor,
    check_one,
    detect_color_permutations,
    estimate_states,
    execute_tasks,
    explore,
    explore_sharded,
    normalize_reduction,
    reduction_parity_suite,
    transform_state_colors,
    REDUCTION_BENCH_CASE,
)
from repro.engine.reduction import ColorPermutation, ProductWitness
from repro.verification import exhaustive_sweep

REDUCTIONS = ["grid", "grid+color", "grid+color+por", "por"]


def _serial(algorithm, grid, model, **kwargs):
    return explore(AlgorithmTransitionSystem(algorithm, grid, model), **kwargs)


def _color_twin(name="color_twin"):
    """Two anonymous-in-all-but-name colors marching in lockstep.

    The rule set is invariant under swapping G and W, and the initial
    placement is invariant under (rot180, swap) as a *product*, so the
    color quotient collapses orbits the grid quotient alone cannot.
    """
    rules = (
        Rule("R1", G, Guard.build(1, E=EMPTY), G, "E"),
        Rule("R2", W, Guard.build(1, E=EMPTY), W, "E"),
    )
    return Algorithm(
        name=name,
        synchrony=Synchrony.SSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=lambda m, n: [((0, 0), G), ((m - 1, n - 1), W)],
        min_m=2,
        min_n=3,
    )


# ---------------------------------------------------------------------------
# Color-permutation detection and action
# ---------------------------------------------------------------------------
class TestColorDetection:
    def test_paper_algorithms_have_trivial_color_groups(self):
        # The paper's palettes carry roles (leader/follower/turner); no
        # nontrivial permutation leaves any of the rule sets invariant.
        for name in ("async_phi2_l3_chir_k2", "fsync_phi2_l2_chir_k2", "fsync_phi1_l3_chir_k2"):
            perms = detect_color_permutations(get(name))
            assert len(perms) == 1 and perms[0].is_identity

    def test_symmetric_palette_is_detected(self):
        perms = detect_color_permutations(_color_twin())
        assert [p.name for p in perms] == ["id", "G->W,W->G"]

    def test_detection_is_semantic_not_syntactic(self):
        """Rule names and declaration order must not affect detection."""
        rules = (
            Rule("zz_second", W, Guard.build(1, E=EMPTY), W, "E"),
            Rule("aa_first", G, Guard.build(1, E=EMPTY), G, "E"),
        )
        shuffled = Algorithm(
            name="color_twin_shuffled",
            synchrony=Synchrony.SSYNC,
            phi=1,
            colors=(G, W),
            chirality=True,
            k=2,
            rules=rules,
            initial_placement=lambda m, n: [((0, 0), G), ((m - 1, n - 1), W)],
            min_m=2,
            min_n=3,
        )
        assert len(detect_color_permutations(shuffled)) == 2

    def test_partial_symmetry_in_larger_palette(self):
        """Only the invariant subgroup is detected, not the full S3."""
        rules = (
            Rule("R1", G, Guard.build(1, E=occ(B)), G, "E"),
            Rule("R2", W, Guard.build(1, E=occ(B)), W, "E"),
            Rule("R3", B, Guard.build(1, W=EMPTY), B, "W"),
        )
        partial = Algorithm(
            name="color_partial",
            synchrony=Synchrony.SSYNC,
            phi=1,
            colors=(G, W, B),
            chirality=True,
            k=3,
            rules=rules,
            initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W), ((0, 2), B)],
            min_m=2,
            min_n=3,
        )
        perms = detect_color_permutations(partial)
        # G<->W is invariant; anything moving B is not.
        assert sorted(p.name for p in perms) == ["G->W,W->G", "id"]

    def test_color_transform_round_trips_async_state(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 3)
        ts = AlgorithmTransitionSystem(algorithm, grid, "ASYNC")
        looked = ts.successors(ts.initial())[0]  # carries a stored snapshot
        swap = ColorPermutation(algorithm.colors, (W, G, B))
        # async palette is (G, W, B): swap G<->W.
        assert transform_state_colors(transform_state_colors(looked, swap), swap) == looked

    def test_dynamics_commute_with_detected_permutations(self):
        """succ(pi(s)) == pi(succ(s)) — the soundness property, directly."""
        twin = _color_twin("color_twin_commute")
        grid = Grid(2, 3)
        ts = AlgorithmTransitionSystem(twin, grid, "SSYNC")
        swap = detect_color_permutations(twin)[1]
        seen = [ts.initial()]
        for state in seen[:20]:
            image_succ = {
                transform_state_colors(s, swap) for s in ts.successors(state)
            }
            succ_image = set(ts.successors(transform_state_colors(state, swap)))
            assert image_succ == succ_image
            for successor in ts.successors(state):
                if successor not in seen:
                    seen.append(successor)


# ---------------------------------------------------------------------------
# Spec handling
# ---------------------------------------------------------------------------
class TestSpecNormalization:
    def test_aliases_and_ordering(self):
        assert normalize_reduction(None, False) == "none"
        assert normalize_reduction(None, True) == "grid"
        assert normalize_reduction("none") == "none"
        assert normalize_reduction("") == "none"
        assert normalize_reduction("por+grid") == "grid+por"
        assert normalize_reduction("COLOR + GRID") == "grid+color"
        assert normalize_reduction("grid+grid") == "grid"

    def test_unknown_component_raises(self):
        with pytest.raises(ValueError):
            normalize_reduction("grid+magic")
        with pytest.raises(TypeError):
            normalize_reduction(42)

    def test_pipeline_instance_is_reused(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        pipeline = ReductionPipeline(algorithm, grid, "FSYNC", spec="grid")
        assert normalize_reduction(pipeline) == "grid"
        first = _serial(algorithm, grid, "FSYNC", reduction=pipeline)
        second = _serial(algorithm, grid, "FSYNC", reduction=pipeline)
        # The shared pipeline accumulates, but per-run stats are deltas.
        assert first.reduction_stats == second.reduction_stats
        assert first.states == second.states

    def test_inert_components_drop_out_of_active_spec(self):
        algorithm = get("fsync_phi2_l2_chir_k2")  # trivial color group
        grid = Grid(3, 3)
        exploration = _serial(algorithm, grid, "FSYNC", reduction="grid+color+por")
        # POR is inert outside ASYNC and the color group is trivial.
        assert exploration.reduction == "grid"
        assert set(exploration.reduction_stats) == {"grid"}


# ---------------------------------------------------------------------------
# Verdict parity (the satellite suite)
# ---------------------------------------------------------------------------
_UNREDUCED = {}


def _unreduced(name, m, n, model):
    key = (name, m, n, model)
    if key not in _UNREDUCED:
        _UNREDUCED[key] = check_terminating_exploration(
            get(name), Grid(m, n), model=model, max_states=200_000, reduction="none"
        )
    return _UNREDUCED[key]


class TestVerdictParity:
    """Every suite case, every reduction: identical verdicts, fewer states."""

    @pytest.mark.parametrize("reduction", REDUCTIONS)
    @pytest.mark.parametrize("name,m,n,model", reduction_parity_suite())
    def test_reduced_verdicts_match_unreduced(self, name, m, n, model, reduction):
        plain = _unreduced(name, m, n, model)
        reduced = check_terminating_exploration(
            get(name), Grid(m, n), model=model, max_states=200_000, reduction=reduction
        )
        assert (reduced.terminates, reduced.explores, reduced.ok) == (
            plain.terminates,
            plain.explores,
            plain.ok,
        )
        assert reduced.counterexample == plain.counterexample
        assert reduced.states_explored <= plain.states_explored
        assert reduced.reduction == ReductionPipeline(
            get(name), Grid(m, n), model, spec=reduction
        ).active_spec


class TestRoutesAgreeOnTheQuotient:
    """Serial, sharded and pooled explorations of one quotient are identical."""

    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_exploration_identical_across_routes(self, reduction):
        name, m, n, model = REDUCTION_BENCH_CASE
        algorithm = get(name)
        grid = Grid(m, n)
        serial = _serial(algorithm, grid, model, reduction=reduction)
        sharded = explore_sharded(algorithm, grid, model, workers=2, reduction=reduction)
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            pooled = pool.explore(algorithm, grid, model, reduction=reduction)
        for other in (sharded, pooled):
            assert other.states == serial.states
            assert other.succ == serial.succ
            assert other.index == serial.index
            assert other.reduced == serial.reduced
            assert other.edge_syms == serial.edge_syms
            assert other.root_sym == serial.root_sym
            assert other.reduction == serial.reduction
            # Reduction statistics are deterministic — unlike the matcher
            # counters they must agree across every route.
            assert other.reduction_stats == serial.reduction_stats

    def test_budget_trip_context_identical_under_reduction(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        grid = Grid(4, 6)
        with pytest.raises(StateSpaceLimitExceeded) as serial_info:
            _serial(algorithm, grid, "ASYNC", reduction="grid+color+por", max_states=10)
        with pytest.raises(StateSpaceLimitExceeded) as sharded_info:
            explore_sharded(
                algorithm, grid, "ASYNC", workers=3, reduction="grid+color+por", max_states=10
            )
        serial, sharded = serial_info.value, sharded_info.value
        assert str(sharded) == str(serial)
        assert "reduction grid+por on" in str(serial)  # color group is trivial
        assert sharded.algorithm == serial.algorithm == algorithm.name
        assert sharded.max_states == serial.max_states == 10
        assert sharded.states_explored == serial.states_explored
        assert sharded.frontier_size == serial.frontier_size

    def test_grid_spec_budget_message_is_byte_compatible(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(8, 8)
        with pytest.raises(StateSpaceLimitExceeded) as new_info:
            _serial(algorithm, grid, "SSYNC", reduction="grid", max_states=80)
        with pytest.raises(StateSpaceLimitExceeded) as old_info:
            _serial(algorithm, grid, "SSYNC", symmetry_reduction=True, max_states=80)
        assert str(new_info.value) == str(old_info.value)
        assert "symmetry reduction on" in str(new_info.value)


# ---------------------------------------------------------------------------
# Strict reductions
# ---------------------------------------------------------------------------
class TestStrictReduction:
    def test_acceptance_por_prunes_the_bench_case(self):
        """Acceptance: grid+color+por < grid on a suite ASYNC case, same verdict."""
        name, m, n, model = REDUCTION_BENCH_CASE
        assert model == "ASYNC" and (name, m, n, model) in reduction_parity_suite()
        algorithm = get(name)
        grid = Grid(m, n)
        baseline = check_terminating_exploration(algorithm, grid, model=model, reduction="grid")
        results = [
            check_terminating_exploration(
                algorithm, grid, model=model, reduction="grid+color+por"
            ),
            check_terminating_exploration(
                algorithm, grid, model=model, reduction="grid+color+por", workers=2
            ),
        ]
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            results.append(
                check_terminating_exploration(
                    algorithm, grid, model=model, reduction="grid+color+por", pool=pool
                )
            )
        serial, sharded, pooled = results
        assert sharded == serial and pooled == serial  # byte-identical CheckResults
        assert serial.states_explored < baseline.states_explored
        assert (serial.terminates, serial.explores, serial.ok, serial.counterexample) == (
            baseline.terminates,
            baseline.explores,
            baseline.ok,
            baseline.counterexample,
        )
        assert serial.reduction_stats["por"]["interleavings_pruned"] > 0

    @pytest.mark.parametrize(
        "name,m,n",
        [("async_phi2_l2_chir_k3", 3, 3), ("async_phi2_l2_nochir_k4", 3, 4)],
    )
    def test_por_prunes_other_async_cases(self, name, m, n):
        algorithm = get(name)
        grid = Grid(m, n)
        quotient = enumerate_reachable(algorithm, grid, model="ASYNC", reduction="grid")
        pruned = enumerate_reachable(algorithm, grid, model="ASYNC", reduction="grid+por")
        assert pruned < quotient

    def test_color_quotient_collapses_beyond_the_grid_quotient(self):
        twin = _color_twin("color_twin_strict")
        grid = Grid(2, 3)
        counts = {
            spec: enumerate_reachable(twin, grid, model="SSYNC", reduction=spec)
            for spec in ("none", "grid", "color", "grid+color")
        }
        assert counts["grid+color"] < counts["grid"] < counts["none"]
        assert counts["color"] < counts["none"]
        # The twin ping-pongs forever; nontermination must survive every quotient.
        for spec in ("none", "grid", "color", "grid+color"):
            result = check_terminating_exploration(twin, grid, model="SSYNC", reduction=spec)
            assert not result.terminates and not result.ok

    def test_product_witnesses_map_coverage_exactly(self):
        """A terminating color-symmetric run: coverage through ProductWitness."""
        rules = (
            Rule("R1", G, Guard.build(1, E=EMPTY), G, "E"),
            Rule("R2", W, Guard.build(1, E=EMPTY), W, "E"),
            Rule("R3", G, Guard.build(1, S=EMPTY), G, "S"),
            Rule("R4", W, Guard.build(1, S=EMPTY), W, "S"),
        )
        crawler = Algorithm(
            name="color_crawler",
            synchrony=Synchrony.SSYNC,
            phi=1,
            colors=(G, W),
            chirality=True,
            k=2,
            rules=rules,
            initial_placement=lambda m, n: [((0, 0), G), ((m - 1, n - 1), W)],
            min_m=2,
            min_n=3,
        )
        grid = Grid(2, 3)
        plain = check_terminating_exploration(crawler, grid, model="SSYNC", reduction="none")
        reduced = check_terminating_exploration(
            crawler, grid, model="SSYNC", reduction="grid+color"
        )
        assert reduced.states_explored < plain.states_explored
        assert (reduced.terminates, reduced.explores, reduced.counterexample) == (
            plain.terminates,
            plain.explores,
            plain.counterexample,
        )


class TestShardedProductWitnesses:
    """The (grid, color) witness wire format across real worker processes."""

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="registry patching only reaches fork-started workers",
    )
    def test_sharded_exploration_matches_serial_with_color_quotient(self, monkeypatch):
        twin = _color_twin("color_twin_sharded")
        algorithm_registry.all_algorithms()  # make sure the cache exists
        monkeypatch.setitem(algorithm_registry._CACHE, twin.name, twin)
        grid = Grid(2, 4)
        serial = _serial(twin, grid, "SSYNC", reduction="grid+color")
        sharded = explore_sharded(twin, grid, "SSYNC", workers=2, reduction="grid+color")
        assert serial.reduced and serial.reduction == "grid+color"
        assert sharded.states == serial.states
        assert sharded.succ == serial.succ
        assert sharded.edge_syms == serial.edge_syms  # ProductWitness equality
        assert sharded.root_sym == serial.root_sym
        assert sharded.reduction_stats == serial.reduction_stats
        assert any(
            isinstance(h, ProductWitness) and h.color is not None
            for row in serial.edge_syms
            for h in row
        )

    def test_witness_tokens_round_trip(self):
        twin = _color_twin("color_twin_tokens")
        grid = Grid(2, 3)
        pipeline = ReductionPipeline(twin, grid, "SSYNC", spec="grid+color")
        ts = AlgorithmTransitionSystem(twin, grid, "SSYNC")
        seen = [ts.initial()]
        witnesses = []
        for state in seen[:30]:
            for raw in ts.successors(state):
                rep, h = pipeline.canonicalize(raw)
                witnesses.append((raw, rep, h))
                if rep not in seen:
                    seen.append(rep)
        resolver = ReductionPipeline(twin, grid, "SSYNC", spec="grid+color")
        assert any(h is not None for _, _, h in witnesses)
        for raw, rep, h in witnesses:
            token = pipeline.witness_token(h)
            resolved = resolver.witness_from_token(token)
            assert resolved == h
            if h is not None:
                # The witness really undoes the canonicalization.
                assert (h.apply(rep) if isinstance(h, ProductWitness) else None) in (raw, None)


# ---------------------------------------------------------------------------
# Routing estimates (satellite: pool.estimate_states respects reduction)
# ---------------------------------------------------------------------------
class TestReductionAwareEstimates:
    def test_estimate_scaled_by_apriori_factor(self):
        twin = _color_twin("color_twin_estimates")
        grid = Grid(4, 4)
        raw = estimate_states(twin, grid, "SSYNC")
        factor = apriori_reduction_factor(twin, grid, "SSYNC", "grid+color")
        # 4x4 chirality-true grid group has 4 elements, the color group 2.
        assert factor == 8
        assert estimate_states(twin, grid, "SSYNC", reduction="grid+color") == max(1, raw // 8)
        assert estimate_states(twin, grid, "SSYNC", reduction="none") == raw
        # POR contributes no a-priori factor.
        assert apriori_reduction_factor(twin, grid, "ASYNC", "por") == 1

    def test_quotiented_run_can_route_serial_where_raw_routes_sharded(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(5, 5)
        raw = estimate_states(algorithm, grid, "SSYNC")
        reduced = estimate_states(algorithm, grid, "SSYNC", reduction="grid")
        threshold = (raw + reduced) // 2
        assert reduced < threshold <= raw
        with ExplorationPool(workers=2, serial_threshold=threshold) as pool:
            pool.explore(algorithm, grid, "SSYNC", reduction="grid", max_states=200_000)
            assert not pool.started  # the scaled estimate routed it serially


# ---------------------------------------------------------------------------
# Campaign payloads and reports
# ---------------------------------------------------------------------------
class TestExhaustiveCheckCampaigns:
    def test_exhaustive_sweep_reports_match_direct_checks(self):
        algorithm = get("async_phi2_l3_chir_k2")
        sizes = [(2, 3), (3, 3)]
        sweep = exhaustive_sweep(algorithm, sizes=sizes, model="ASYNC", reduction="grid+por")
        assert sweep.ok
        for (m, n), report in zip(sizes, sweep.reports):
            direct = check_terminating_exploration(
                algorithm, Grid(m, n), model="ASYNC", reduction="grid+por"
            )
            assert report.kind == "check"
            assert report.steps == direct.states_explored
            assert report.moves == direct.terminal_states
            assert report.reduction == direct.reduction
            assert report.reduction_stats == direct.reduction_stats
            assert report.seed is None
            assert "exhaustive" in str(report)

    def test_parallel_and_serial_check_campaigns_agree(self):
        algorithm = get("async_phi2_l2_chir_k3")
        tasks = [
            CampaignTask(
                algorithm=algorithm.name,
                m=m,
                n=n,
                model="ASYNC",
                kind="check",
                reduction="grid+color+por",
            )
            for m, n in [(2, 3), (3, 3), (3, 4)]
        ]
        serial = execute_tasks(algorithm, tasks)
        parallel = ParallelCampaignEngine(workers=2).run_tasks(algorithm, tasks)
        assert parallel == serial
        with ExplorationPool(workers=2) as pool:
            pooled = ParallelCampaignEngine(pool=pool).run_tasks(algorithm, tasks)
        assert pooled == serial
        assert all(report.reduction_stats is not None for report in serial)
        # Deterministic reduction stats survive the process boundary.
        assert [r.reduction_stats for r in parallel] == [r.reduction_stats for r in serial]

    def test_budget_trip_is_reported_not_raised(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        report = check_one(algorithm, 4, 6, model="ASYNC", reduction="grid", max_states=10)
        assert not report.ok
        assert "StateSpaceLimitExceeded" in report.reason
        assert report.kind == "check"

    def test_mixed_walk_and_check_task_lists(self):
        algorithm = get("async_phi2_l3_chir_k2")
        tasks = [
            CampaignTask(algorithm=algorithm.name, m=3, n=3, model="FSYNC", tie_break="first"),
            CampaignTask(
                algorithm=algorithm.name, m=3, n=3, model="ASYNC", kind="check", reduction="grid"
            ),
        ]
        reports = execute_tasks(algorithm, tasks)
        assert [r.kind for r in reports] == ["walk", "check"]
        assert reports[0].seed is not None and reports[1].seed is None


# ---------------------------------------------------------------------------
# Deprecated alias and surface compatibility
# ---------------------------------------------------------------------------
class TestDeprecatedAlias:
    def test_symmetry_reduction_equals_reduction_grid(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(4, 4)
        via_alias = check_terminating_exploration(
            algorithm, grid, model="SSYNC", symmetry_reduction=True
        )
        via_spec = check_terminating_exploration(algorithm, grid, model="SSYNC", reduction="grid")
        assert via_alias == via_spec
        assert via_alias.symmetry_reduction and via_spec.symmetry_reduction
        assert via_alias.reduction == via_spec.reduction == "grid"

    def test_explicit_reduction_supersedes_the_alias(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        exploration = _serial(
            algorithm, grid, "FSYNC", reduction="none", symmetry_reduction=True
        )
        assert not exploration.reduced and exploration.reduction == "none"

    def test_check_result_summary_names_richer_reductions(self):
        name, m, n, model = REDUCTION_BENCH_CASE
        result = check_terminating_exploration(
            get(name), Grid(m, n), model=model, reduction="grid+color+por"
        )
        assert "reduced [grid+por]" in result.summary()
