"""Stateful shard sessions: parity, snapshots, recovery, elasticity.

The session route (``DistributedBackend.open_exploration`` +
``ShardSession.advance_wave``) promises the same byte-identical merge the
stateless ``map_shards`` route does, while keeping frontiers resident
worker-side and exchanging only delta-compressed rows.  These tests pin
that promise down on the shared reduction-parity suite, then exercise the
recovery machinery: killing a daemon mid-wave (snapshot restore and stale
re-partition), a worker joining mid-exploration (elastic rebalancing),
chaos-plan frame corruption on session frames, and graceful degradation
through :class:`~repro.engine.backend.FallbackBackend`.

Everything runs under the same hang guard as the distributed tests: a
wedged socket or condition wait fails instead of hanging the suite.
"""

from __future__ import annotations

import signal
import time

import pytest

from repro.algorithms import get
from repro.core import Grid
from repro.engine import (
    DistributedBackend,
    FallbackBackend,
    FleetLostError,
    SerialBackend,
    ShardSession,
    ShardSnapshotStore,
    WorkerDaemon,
    explore_sharded,
    initial_state,
)
from repro.engine.backend import PoolBackend
from repro.engine.faults import FaultPlan
from repro.engine.packed import normalize_kernel
from repro.engine.pool import ResidentShard
from repro.engine.suites import reduction_parity_suite

#: Generous wall-clock bound for any single test in this module.
HANG_GUARD_SECONDS = 180


@pytest.fixture(autouse=True)
def hang_guard():
    """Fail (don't hang) if a test wedges on a socket or condition wait."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _trip(signum, frame):
        raise TimeoutError(f"test exceeded the {HANG_GUARD_SECONDS}s hang guard")

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.alarm(HANG_GUARD_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _key(algorithm, m, n, model, spec="none"):
    """The ExploreKey for a registry algorithm (object kernel, no reduction)."""
    return (algorithm.name, m, n, model, spec, normalize_kernel(None))


# ---------------------------------------------------------------------------
# The snapshot store
# ---------------------------------------------------------------------------
class TestShardSnapshotStore:
    def test_in_memory_append_watermark_restore(self):
        with ShardSnapshotStore() as store:
            assert store.path is None
            assert store.watermark("s", 0) == 0
            assert store.restore("s", 0) is None
            store.append("s", 0, 0, ["a", "b"])
            store.append("s", 0, 2, ["c"])
            store.append("s", 1, 0, ["x"])
            assert store.watermark("s", 0) == 3
            assert store.restore("s", 0) == ["a", "b", "c"]
            assert store.restore("s", 1) == ["x"]

    def test_non_contiguous_suffix_is_rejected(self):
        with ShardSnapshotStore() as store:
            store.append("s", 0, 0, ["a"])
            with pytest.raises(ValueError, match="non-contiguous"):
                store.append("s", 0, 5, ["z"])

    def test_restore_returns_a_copy(self):
        with ShardSnapshotStore() as store:
            store.append("s", 0, 0, ["a"])
            copy = store.restore("s", 0)
            copy.append("mutated")
            assert store.restore("s", 0) == ["a"]

    def test_durable_store_reopens_with_reassembled_tables(self, tmp_path):
        path = tmp_path / "shards.journal"
        with ShardSnapshotStore(path) as store:
            store.append("s", 0, 0, ["a", "b"])
            store.append("s", 0, 2, ["c"])
        with ShardSnapshotStore(path) as reopened:
            assert reopened.watermark("s", 0) == 3
            assert reopened.restore("s", 0) == ["a", "b", "c"]

    def test_drop_session_forgets_tables(self):
        with ShardSnapshotStore() as store:
            store.append("s", 0, 0, ["a"])
            store.append("other", 0, 0, ["b"])
            store.drop_session("s")
            assert store.restore("s", 0) is None
            assert store.restore("other", 0) == ["b"]


# ---------------------------------------------------------------------------
# The worker-resident shard
# ---------------------------------------------------------------------------
class TestResidentShard:
    def test_expand_wave_matches_stateless_expansion_and_interns(self):
        from repro.engine.pool import expand_shard

        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        key = _key(algorithm, 3, 3, "FSYNC")
        root = initial_state(algorithm, grid)

        stateless_rows, _, _ = expand_shard((key, [root]))
        resident = ResidentShard(key)
        wave_rows, _, _ = resident.expand_wave([("f", root)])
        # Uplink rows reference the resident table; resolving them must
        # reproduce the stateless rows exactly.
        assert resident.table[0] == root
        resolved = [
            [
                (resident.table[ref] if isinstance(ref, int) else ref[1], token)
                for ref, token in row
            ]
            for row in wave_rows
        ]
        assert resolved == stateless_rows
        # A second wave over already-interned states ships only int refs.
        children = [entry for row in resolved for entry, _ in row]
        refs = [resident.seen[child] for child in children]
        rows2, _, _ = resident.expand_wave(refs)
        assert len(rows2) == len(children)


# ---------------------------------------------------------------------------
# Open/close semantics across backends
# ---------------------------------------------------------------------------
class TestOpenExploration:
    def test_serial_backend_has_no_session_route(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with SerialBackend() as backend:
            assert backend.open_exploration(_key(algorithm, 3, 3, "FSYNC")) is None

    def test_pool_backend_has_no_session_route(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with PoolBackend(workers=2) as backend:
            assert backend.open_exploration(_key(algorithm, 3, 3, "FSYNC")) is None

    def test_sessions_can_be_disabled(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with DistributedBackend(min_workers=1, sessions=False) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1, heartbeat_interval=0.2).start():
                assert backend.open_exploration(_key(algorithm, 4, 4, "FSYNC")) is None
                # The stateless route still serves the exploration.
                serial = explore_sharded(algorithm, Grid(4, 4), "FSYNC", workers=1)
                distributed = explore_sharded(algorithm, Grid(4, 4), "FSYNC", backend=backend)
                assert distributed == serial
                assert distributed.wire_stats is None
        assert backend.stats["sessions_opened"] == 0

    def test_open_rereads_parallelism_for_late_joiners(self):
        """Daemons that enroll after construction widen the shard count."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        with DistributedBackend(min_workers=1, start_timeout=60.0) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=3, heartbeat_interval=0.2).start():
                deadline = time.monotonic() + 30.0
                while backend.stats["live_workers"] < 3 and time.monotonic() < deadline:
                    time.sleep(0.05)
                session = backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"))
                try:
                    assert isinstance(session, ShardSession)
                    assert session.n_shards == 3
                finally:
                    session.close()

    def test_one_session_at_a_time(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with DistributedBackend(min_workers=1) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1, heartbeat_interval=0.2).start():
                session = backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"))
                try:
                    with pytest.raises(RuntimeError, match="one job at a time"):
                        backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"))
                finally:
                    session.close()
                # Closing releases the slot.
                second = backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"))
                second.close()


# ---------------------------------------------------------------------------
# Parity: stateful == stateless == serial
# ---------------------------------------------------------------------------
class TestSessionParity:
    def test_parity_suite_stateful_vs_stateless_vs_serial(self):
        """Every suite case merges byte-identically on both wire routes."""
        from dataclasses import replace

        def scrub(exploration):
            # Cache counters depend on how warm the long-lived daemons
            # are from earlier cases; the graph itself must be identical.
            return replace(exploration, matcher_stats=None)

        cases = reduction_parity_suite()
        with DistributedBackend(min_workers=2) as stateful, DistributedBackend(
            min_workers=2, sessions=False
        ) as stateless:
            with WorkerDaemon(
                stateful.host, stateful.port, workers=2, heartbeat_interval=0.5
            ).start(), WorkerDaemon(
                stateless.host, stateless.port, workers=2, heartbeat_interval=0.5
            ).start():
                for name, m, n, model in cases:
                    algorithm = get(name)
                    grid = Grid(m, n)
                    serial = explore_sharded(
                        algorithm, grid, model, workers=1, reduction="grid"
                    )
                    via_session = explore_sharded(
                        algorithm, grid, model, backend=stateful, reduction="grid"
                    )
                    via_jobs = explore_sharded(
                        algorithm, grid, model, backend=stateless, reduction="grid"
                    )
                    assert scrub(via_session) == scrub(serial), (
                        f"session route diverged on {name} {m}x{n} {model}"
                    )
                    assert scrub(via_jobs) == scrub(serial), (
                        f"stateless route diverged on {name} {m}x{n} {model}"
                    )
                    assert via_session.wire_stats is not None
                    assert via_session.wire_stats["waves"] > 0
                    assert via_jobs.wire_stats is None
            stats = stateful.stats
        assert stats["sessions_opened"] == len(cases)
        assert stats["bytes_sent"] > 0 and stats["bytes_received"] > 0
        assert stats["rows_exchanged"] > 0

    def test_check_result_carries_wire_stats(self):
        from repro.checking import check_terminating_exploration

        algorithm = get("fsync_phi2_l2_chir_k2")
        serial = check_terminating_exploration(algorithm, Grid(4, 4), model="FSYNC")
        with DistributedBackend(min_workers=1) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1, heartbeat_interval=0.2).start():
                remote = check_terminating_exploration(
                    algorithm, Grid(4, 4), model="FSYNC", backend=backend
                )
        assert remote == serial  # wire_stats is compare=False observability
        assert remote.wire_stats is not None
        assert remote.wire_stats["bytes_sent"] > 0
        assert serial.wire_stats is None


# ---------------------------------------------------------------------------
# Recovery: kill a daemon mid-wave
# ---------------------------------------------------------------------------
class TestSessionRecovery:
    def _explore_with_kill(self, *, snapshot_every=1, seed=11):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial = explore_sharded(algorithm, grid, "FSYNC", workers=1)
        plan = FaultPlan(seed=seed).kill_worker(index=1, worker=0)
        with DistributedBackend(
            min_workers=2, item_timeout=30.0, snapshot_every=snapshot_every
        ) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=2, heartbeat_interval=0.2, faults=plan
            ).start():
                exploration = explore_sharded(algorithm, grid, "FSYNC", backend=backend)
            stats = backend.stats
        assert exploration == serial
        return stats

    def test_kill_one_daemon_mid_wave_restores_from_snapshot(self):
        stats = self._explore_with_kill(snapshot_every=1)
        # Per-wave checkpoints mean the dead worker's shards were current:
        # recovery restores them instead of re-partitioning.
        assert stats["snapshots_restored"] >= 1
        assert stats["shards_repartitioned"] == 0

    def test_kill_without_snapshots_repartitions_the_shard(self):
        stats = self._explore_with_kill(snapshot_every=0)
        # No checkpoint cadence: the stale (empty) prefix forces a
        # re-partition — same bytes-identical merge, only wire savings lost.
        assert stats["shards_repartitioned"] >= 1
        assert stats["snapshots_restored"] == 0

    def test_corrupt_wave_result_frame_recovers_with_parity(self):
        """Chaos-plan corruption on a session uplink frame is survivable."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial = explore_sharded(algorithm, grid, "FSYNC", workers=1)
        plan = FaultPlan(seed=3).corrupt_result_frame(index=1, worker=0)
        with DistributedBackend(min_workers=2, item_timeout=30.0) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=2, heartbeat_interval=0.2, faults=plan
            ).start():
                exploration = explore_sharded(algorithm, grid, "FSYNC", backend=backend)
            stats = backend.stats
        assert exploration == serial
        # The garbled reply retired its member; its shards were recovered.
        assert stats["snapshots_restored"] + stats["shards_repartitioned"] >= 1

    def test_fleet_lost_mid_session_raises_structured_error(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with DistributedBackend(min_workers=1, start_timeout=2.0) as backend:
            daemon = WorkerDaemon(
                backend.host, backend.port, workers=1, heartbeat_interval=0.2
            ).start()
            session = backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"))
            root = initial_state(algorithm, Grid(4, 4))
            session.advance_wave([(0, [root])])
            daemon.terminate()
            with pytest.raises(FleetLostError) as excinfo:
                # Keep advancing until the loss lands (the first call may
                # still be served from the not-yet-dead connection).
                for _ in range(50):
                    session.advance_wave([(0, [root])])
            assert excinfo.value.kind == "session"
            session.close()

    def test_durable_snapshot_store_survives_backend_restart(self, tmp_path):
        """A path-backed store persists shard tables across backends."""
        path = tmp_path / "shards.journal"
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial = explore_sharded(algorithm, grid, "FSYNC", workers=1)
        with DistributedBackend(min_workers=1, snapshot_store=path) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1, heartbeat_interval=0.2).start():
                exploration = explore_sharded(algorithm, grid, "FSYNC", backend=backend)
        assert exploration == serial
        # The journal on disk holds the checkpointed suffixes.
        with ShardSnapshotStore(path) as reopened:
            totals = sum(
                reopened.watermark(session, shard)
                for session, shard in list(reopened._tables)
            )
            assert totals > 0


# ---------------------------------------------------------------------------
# Elasticity: joining mid-exploration
# ---------------------------------------------------------------------------
class TestSessionElasticity:
    def test_worker_join_mid_exploration_rebalances_shards(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        root = initial_state(algorithm, grid)
        with DistributedBackend(min_workers=1, start_timeout=60.0) as backend:
            first = WorkerDaemon(
                backend.host, backend.port, workers=1, heartbeat_interval=0.2
            ).start()
            try:
                session = backend.open_exploration(_key(algorithm, 4, 4, "FSYNC"), n_shards=4)
                try:
                    assert session.n_shards == 4
                    results = session.advance_wave([(0, [root])])
                    rows, _hm, _red = results[0]
                    frontier = [state for row in rows for state, _ in row]
                    second = WorkerDaemon(
                        backend.host, backend.port, workers=1, heartbeat_interval=0.2
                    ).start()
                    try:
                        deadline = time.monotonic() + 30.0
                        while (
                            backend.stats["shards_moved"] < 1
                            and time.monotonic() < deadline
                        ):
                            time.sleep(0.05)
                        assert backend.stats["shards_moved"] >= 1
                        # The rebalanced fleet still serves waves on every shard.
                        wave = [
                            (shard, [state])
                            for shard, state in zip(range(4), frontier)
                            if state is not None
                        ]
                        delivered = session.advance_wave(wave)
                        assert len(delivered) == len(wave)
                    finally:
                        second.terminate()
                finally:
                    session.close()
            finally:
                first.terminate()

    def test_parity_when_a_worker_joins_mid_exploration(self):
        """A daemon enrolling mid-run never perturbs the merged graph."""
        algorithm = get("async_phi2_l2_nochir_k4")
        grid = Grid(4, 4)
        serial = explore_sharded(algorithm, grid, "ASYNC", workers=1, reduction="grid")
        with DistributedBackend(min_workers=1, start_timeout=60.0) as backend:
            first = WorkerDaemon(
                backend.host, backend.port, workers=1, heartbeat_interval=0.2
            ).start()
            second = None
            try:
                import threading

                started = threading.Event()

                def join_late():
                    started.wait()
                    time.sleep(0.2)  # mid-exploration, with waves in flight
                    return WorkerDaemon(
                        backend.host, backend.port, workers=1, heartbeat_interval=0.2
                    ).start()

                joiner: list = []
                thread = threading.Thread(
                    target=lambda: joiner.append(join_late()), daemon=True
                )
                thread.start()
                started.set()
                exploration = explore_sharded(
                    algorithm, grid, "ASYNC", backend=backend, reduction="grid"
                )
                thread.join(timeout=30.0)
                second = joiner[0] if joiner else None
            finally:
                first.terminate()
                if second is not None:
                    second.terminate()
        assert exploration == serial


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------
class TestFallbackSessions:
    def test_session_degrades_to_local_when_the_fleet_dies(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial = explore_sharded(algorithm, grid, "FSYNC", workers=1)
        # Worker 0 (the only worker) dies on its second wave frame; the
        # fleet never recovers within the short start_timeout, so the
        # degrading session finishes the exploration locally.
        plan = FaultPlan(seed=5).kill_worker(index=1, worker=0)
        primary = DistributedBackend(min_workers=1, start_timeout=2.0, item_timeout=30.0)
        with FallbackBackend(primary) as backend:
            with WorkerDaemon(
                primary.host, primary.port, workers=1, heartbeat_interval=0.2, faults=plan
            ).start():
                exploration = explore_sharded(algorithm, grid, "FSYNC", backend=backend)
        assert exploration == serial
        assert backend.stats["fallback_jobs"] >= 1
        assert backend.stats["fallback_items"] >= 1
        assert primary.stats["sessions_opened"] >= 1

    def test_fallback_without_session_capable_primary_returns_none(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with FallbackBackend(SerialBackend()) as backend:
            assert backend.open_exploration(_key(algorithm, 4, 4, "FSYNC")) is None
