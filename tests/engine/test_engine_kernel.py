"""Tests for the engine kernel: matcher memoization, walk seeding, limits, suites."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration, explore_state_space
from repro.core import Grid, TieBreak, run_fsync, run_ssync
from repro.core.errors import StateSpaceLimitExceeded
from repro.engine import (
    AlgorithmTransitionSystem,
    LocalMatcher,
    TransitionSystem,
    default_grid_suite,
    explore,
    initial_state,
    scaling_suite,
)
from repro.engine import suites as engine_suites
from repro.verification import campaigns


class TestTransitionSystem:
    def test_algorithm_transition_system_satisfies_protocol(self):
        ts = AlgorithmTransitionSystem(get("fsync_phi2_l2_chir_k2"), Grid(3, 4), "FSYNC")
        assert isinstance(ts, TransitionSystem)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmTransitionSystem(get("fsync_phi2_l2_chir_k2"), Grid(3, 4), "HSYNC")

    def test_reusing_a_transition_system_is_consistent(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        ts = AlgorithmTransitionSystem(algorithm, grid, "SSYNC")
        state = initial_state(algorithm, grid)
        assert ts.successors(state) == ts.successors(state)

    def test_explore_matches_public_wrapper(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        exploration = explore(AlgorithmTransitionSystem(algorithm, grid, "SSYNC"))
        graph = explore_state_space(algorithm, grid, model="SSYNC")
        assert exploration.num_states == len(graph)
        assert set(exploration.graph()) == set(graph)


class TestLocalMatcher:
    def test_matches_are_cached(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 4)
        matcher = LocalMatcher(algorithm, grid)
        world = algorithm.initial_world(grid)
        robot = world.robots[0]
        first = matcher.matches(world.robots, robot.pos, robot.color)
        second = matcher.matches(world.robots, robot.pos, robot.color)
        assert first is second  # same tuple object: served from the cache

    def test_matches_agree_with_the_algorithm(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 4)
        matcher = LocalMatcher(algorithm, grid)
        world = algorithm.initial_world(grid)
        for robot in world.robots:
            assert list(matcher.matches(world.robots, robot.pos, robot.color)) == list(
                algorithm.matches_for_robot(world, robot)
            )

    def test_snapshot_agrees_with_world_snapshot(self):
        algorithm = get("async_phi1_l3_chir_k3")
        grid = Grid(3, 4)
        matcher = LocalMatcher(algorithm, grid)
        world = algorithm.initial_world(grid)
        for robot in world.robots:
            assert matcher.snapshot(world.robots, robot.pos) == world.snapshot(
                robot.pos, algorithm.phi
            )


class TestWalkSeeding:
    def test_seed_and_tie_break_threaded_into_result(self):
        result = run_fsync(get("fsync_phi2_l2_chir_k2"), Grid(3, 4), seed=7)
        assert result.seed == 7
        assert result.tie_break == TieBreak.ERROR

    def test_random_tie_break_is_replayable_from_the_recorded_seed(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        first = run_ssync(algorithm, Grid(4, 5), tie_break=TieBreak.RANDOM, seed=13)
        replay = run_ssync(algorithm, Grid(4, 5), tie_break=TieBreak.RANDOM, seed=first.seed)
        assert replay.events == first.events
        assert replay.trace == first.trace
        assert replay.final == first.final

    def test_random_tie_break_does_not_touch_global_rng(self):
        import random

        state_before = random.getstate()
        run_ssync(get("fsync_phi2_l2_nochir_k3"), Grid(4, 5), tie_break=TieBreak.RANDOM, seed=3)
        assert random.getstate() == state_before


class TestStateSpaceLimitContext:
    def test_limit_error_carries_exploration_context(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        with pytest.raises(StateSpaceLimitExceeded) as excinfo:
            check_terminating_exploration(algorithm, Grid(4, 6), model="ASYNC", max_states=10)
        error = excinfo.value
        assert error.algorithm == algorithm.name
        assert error.model == "ASYNC"
        assert error.max_states == 10
        assert error.states_explored is not None and error.states_explored <= 10
        assert error.frontier_size is not None and error.frontier_size >= 0
        message = str(error)
        assert "state budget" in message and "frontier" in message


class TestSharedSuites:
    def test_campaigns_use_the_engine_suite(self):
        assert campaigns.default_grid_suite is engine_suites.default_grid_suite
        assert campaigns.default_grid_suite is default_grid_suite

    def test_default_suite_respects_minimum_sizes(self):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        for m, n in default_grid_suite(algorithm):
            assert algorithm.supports_grid(m, n)

    def test_scaling_suite_matches_previous_default(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        base = max(algorithm.min_n, 4)
        expected = [(side, side + 1) for side in range(max(algorithm.min_m, 3), 12)] + [
            (3, base * 4),
            (base * 4, 3 if algorithm.min_n <= 3 else algorithm.min_n),
        ]
        assert scaling_suite(algorithm) == expected
