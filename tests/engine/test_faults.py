"""Chaos parity suite: fault injection, the resume journal, degradation.

Every distributed scenario here injects a *deterministic* fault through a
:class:`FaultPlan` and then asserts the strongest property the stack
claims: the reports are byte-identical to the serial engine's.  Under
seeded faults a parity failure is a bug, never flake.

Like ``test_distributed.py``, everything runs under a SIGALRM hang guard
so a wedged socket fails the test instead of the suite.
"""

from __future__ import annotations

import pickle
import random
import signal
import socket
import threading
import time

import pytest

from repro.core import Grid
from repro.engine import (
    CampaignJournal,
    DistributedBackend,
    FallbackBackend,
    Fault,
    FaultInjected,
    FaultPlan,
    ParallelCampaignEngine,
    WorkerDaemon,
    execute_tasks,
    exhaustive_check_tasks,
    recv_message,
    send_message,
)
from repro.engine.distributed import _backoff_delays, encode_frame, run_worker
from repro.engine.faults import _FRAME_HEADER_BYTES
from repro.checking import check_terminating_exploration

#: Generous wall-clock bound for any single test in this module.
HANG_GUARD_SECONDS = 120

SIZES = [(2, 3), (3, 3), (3, 4), (4, 3)]


@pytest.fixture(autouse=True)
def hang_guard():
    """Fail (don't hang) if a test wedges on a socket or condition wait."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _trip(signum, frame):
        raise TimeoutError(f"test exceeded the {HANG_GUARD_SECONDS}s hang guard")

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.alarm(HANG_GUARD_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def chaos_tasks(algorithm1):
    return exhaustive_check_tasks(algorithm1, sizes=SIZES, reduction="grid")


@pytest.fixture()
def serial_reports(algorithm1, chaos_tasks):
    return execute_tasks(algorithm1, chaos_tasks)


# ---------------------------------------------------------------------------
# FaultPlan semantics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_fault_requires_exactly_one_selector(self):
        with pytest.raises(ValueError, match="exactly one"):
            Fault("worker.item", "kill")
        with pytest.raises(ValueError, match="exactly one"):
            Fault("worker.item", "kill", index=0, item=1)

    def test_index_match_is_one_shot(self):
        plan = FaultPlan().add(Fault("worker.item", "kill", index=1))
        assert plan.fire("worker.item") is None  # event 0
        fault = plan.fire("worker.item")  # event 1
        assert fault is not None and fault.action == "kill"
        assert plan.fire("worker.item") is None  # event 2: the index passed

    def test_item_match_is_persistent(self):
        plan = FaultPlan().kill_worker(item=2)
        assert plan.fire("worker.item", item=0) is None
        assert plan.fire("worker.item", item=2) is not None
        assert plan.fire("worker.item", item=2) is not None  # poison: fires again
        assert plan.fire("worker.item", item=1) is None

    def test_worker_filter_restricts_firing(self):
        plan = FaultPlan().hang_worker(index=0, worker=1)
        assert plan.fire("worker.item", worker=0) is None
        # The index-0 event was consumed by worker 0's stream position, so
        # a fresh plan shows the positive case:
        plan = FaultPlan().hang_worker(index=0, worker=1)
        assert plan.fire("worker.item", worker=1) is not None

    def test_sites_count_independently(self):
        plan = FaultPlan().add(Fault("coordinator.send", "corrupt", index=1))
        assert plan.fire("worker.result") is None
        assert plan.fire("coordinator.send") is None  # event 0 at the site
        assert plan.fire("coordinator.send") is not None  # event 1

    def test_pickle_round_trip_resets_counters(self):
        plan = FaultPlan(seed=3).corrupt_result_frame(index=0)
        assert plan.fire("worker.result") is not None  # consume event 0
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 3
        assert clone.fire("worker.result") is not None  # counters start fresh

    def test_frame_corruption_is_deterministic_and_undecodable(self):
        frame = encode_frame(("result", 0, "payload"))
        one = FaultPlan(seed=11).corrupt_result_frame(index=0)
        two = FaultPlan(seed=11).corrupt_result_frame(index=0)
        corrupted = one.frame_out("worker.result", frame, item=0)
        assert corrupted == two.frame_out("worker.result", frame, item=0)
        assert corrupted != frame
        assert len(corrupted) == len(frame)
        # The length header survives (framing stays aligned) ...
        assert corrupted[:_FRAME_HEADER_BYTES] == frame[:_FRAME_HEADER_BYTES]
        # ... and the body is garbage that fails at decode, not a silent
        # wrong-but-decodable payload (which would break parity invisibly).
        with pytest.raises(Exception):
            pickle.loads(corrupted[_FRAME_HEADER_BYTES:])
        different_seed = FaultPlan(seed=12).corrupt_result_frame(index=0)
        assert different_seed.frame_out("worker.result", frame, item=0) != corrupted

    def test_frames_pass_through_untouched_without_a_matching_fault(self):
        frame = encode_frame(("result", 0, "payload"))
        plan = FaultPlan().corrupt_result_frame(index=5)
        assert plan.frame_out("worker.result", frame, item=0) == frame

    def test_check_crash_raises_only_on_crash_faults(self):
        plan = FaultPlan().crash_coordinator(after_records=2)
        plan.check_crash("journal.record")  # event 0: no fault yet
        with pytest.raises(FaultInjected, match="journal.record"):
            plan.check_crash("journal.record")  # event 1 == after_records-1

    def test_crash_coordinator_validates_after_records(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan().crash_coordinator(after_records=0)


# ---------------------------------------------------------------------------
# Connect backoff jitter
# ---------------------------------------------------------------------------
class TestBackoffJitter:
    def test_delays_are_jittered_within_the_exponential_envelope(self):
        delays = _backoff_delays(base=0.05, cap=1.0, rng=random.Random(42))
        ceiling = 0.05
        for _ in range(12):
            delay = next(delays)
            assert 0.0 < delay <= ceiling
            ceiling = min(ceiling * 2, 1.0)

    def test_sequence_is_deterministic_per_seed(self):
        first = _backoff_delays(rng=random.Random(7))
        second = _backoff_delays(rng=random.Random(7))
        assert [next(first) for _ in range(8)] == [next(second) for _ in range(8)]

    def test_different_seeds_decorrelate(self):
        first = [next(_backoff_delays(rng=random.Random(1))) for _ in range(1)]
        second = [next(_backoff_delays(rng=random.Random(2))) for _ in range(1)]
        assert first != second


# ---------------------------------------------------------------------------
# The write-ahead journal
# ---------------------------------------------------------------------------
class TestCampaignJournal:
    def test_round_trip_and_reopen(self, tmp_path):
        path = tmp_path / "campaign.journal"
        with CampaignJournal(path) as journal:
            journal.put("a", {"ok": True})
            journal.put("b", [1, 2, 3])
            assert len(journal) == 2
            assert "a" in journal and "c" not in journal
            assert journal.get("b") == [1, 2, 3]
        with CampaignJournal(path) as journal:
            assert len(journal) == 2
            assert journal.get("a") == {"ok": True}
            assert journal.recovered_bytes == 0

    def test_torn_tail_is_truncated_and_appendable(self, tmp_path):
        path = tmp_path / "campaign.journal"
        with CampaignJournal(path) as journal:
            journal.put("a", 1)
            journal.put("b", 2)
        intact = path.stat().st_size
        with open(path, "ab") as handle:  # a crash mid-append: torn record
            handle.write(b"\x00\x00\x00\x40\xde\xad\xbe\xefgarbage")
        with CampaignJournal(path) as journal:
            assert len(journal) == 2
            assert journal.recovered_bytes > 0
            journal.put("c", 3)  # the truncated journal is appendable again
        with CampaignJournal(path) as journal:
            assert len(journal) == 3
        assert path.stat().st_size > intact

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        path = tmp_path / "campaign.journal"
        with CampaignJournal(path) as journal:
            journal.put("a", "old")
            journal.put("a", "new")
        with CampaignJournal(path) as journal:
            assert len(journal) == 1
            assert journal.get("a") == "new"

    def test_fresh_discards_existing_records(self, tmp_path):
        path = tmp_path / "campaign.journal"
        with CampaignJournal(path) as journal:
            journal.put("a", 1)
        with CampaignJournal(path, fresh=True) as journal:
            assert len(journal) == 0

    def test_put_after_close_is_refused(self, tmp_path):
        journal = CampaignJournal(tmp_path / "campaign.journal")
        journal.close()
        with pytest.raises(RuntimeError, match="closed"):
            journal.put("a", 1)

    def test_task_key_is_stable_and_content_sensitive(self, chaos_tasks):
        assert CampaignJournal.task_key(chaos_tasks[0]) == CampaignJournal.task_key(chaos_tasks[0])
        keys = {CampaignJournal.task_key(task) for task in chaos_tasks}
        assert len(keys) == len(chaos_tasks)

    def test_injected_crash_fires_after_the_durable_append(self, tmp_path):
        path = tmp_path / "campaign.journal"
        plan = FaultPlan().crash_coordinator(after_records=1)
        with pytest.raises(FaultInjected):
            with CampaignJournal(path, faults=plan) as journal:
                journal.put("a", 1)
        with CampaignJournal(path) as journal:  # the record IS on disk
            assert journal.get("a") == 1


# ---------------------------------------------------------------------------
# Journalled campaigns: kill/resume parity
# ---------------------------------------------------------------------------
class TestJournalledCampaigns:
    def test_serial_crash_and_resume_is_byte_identical(
        self, tmp_path, algorithm1, serial_reports
    ):
        path = tmp_path / "sweep.journal"
        engine = ParallelCampaignEngine(workers=1)
        plan = FaultPlan().crash_coordinator(after_records=2)
        with pytest.raises(FaultInjected):
            with CampaignJournal(path, faults=plan) as journal:
                engine.exhaustive_sweep(algorithm1, sizes=SIZES, reduction="grid", journal=journal)
        with CampaignJournal(path) as journal:
            assert len(journal) == 2  # exactly the durable appends survive
            resumed = engine.exhaustive_sweep(
                algorithm1, sizes=SIZES, reduction="grid", journal=journal
            )
            assert len(journal) == len(SIZES)
        assert resumed.reports == serial_reports

    def test_resume_replays_journaled_verdicts_instead_of_recomputing(
        self, tmp_path, algorithm1, chaos_tasks, serial_reports
    ):
        from dataclasses import replace

        path = tmp_path / "sweep.journal"
        engine = ParallelCampaignEngine(workers=1)
        first = engine.run_tasks(algorithm1, chaos_tasks, journal=path)
        assert first == serial_reports
        # Plant a sentinel verdict: if resume re-executed the task, the
        # sentinel would be overwritten by the recomputed report.
        sentinel = replace(serial_reports[1], reason="journaled-sentinel")
        with CampaignJournal(path) as journal:
            journal.put(CampaignJournal.task_key(chaos_tasks[1]), sentinel)
            resumed = engine.run_tasks(algorithm1, chaos_tasks, journal=journal)
        assert resumed[1].reason == "journaled-sentinel"
        assert resumed[0] == serial_reports[0]

    def test_resume_false_recomputes_from_scratch(self, tmp_path, algorithm1, chaos_tasks, serial_reports):
        from dataclasses import replace

        path = tmp_path / "sweep.journal"
        engine = ParallelCampaignEngine(workers=1)
        with CampaignJournal(path) as journal:
            journal.put(
                CampaignJournal.task_key(chaos_tasks[0]),
                replace(serial_reports[0], reason="stale"),
            )
        reports = engine.run_tasks(algorithm1, chaos_tasks, journal=path, resume=False)
        assert reports == serial_reports
        assert reports[0].reason != "stale"

    def test_pooled_journalled_sweep_matches_serial(self, tmp_path, algorithm1, serial_reports):
        from repro.engine import ExplorationPool

        path = tmp_path / "sweep.journal"
        with ExplorationPool(workers=2) as pool:
            engine = ParallelCampaignEngine(pool=pool)
            swept = engine.exhaustive_sweep(algorithm1, sizes=SIZES, reduction="grid", journal=path)
        assert swept.reports == serial_reports
        with CampaignJournal(path) as journal:
            assert len(journal) == len(SIZES)

    def test_campaign_entry_points_accept_journal(self, tmp_path, algorithm1, serial_reports):
        from repro.verification import exhaustive_sweep

        path = tmp_path / "sweep.journal"
        first = exhaustive_sweep(algorithm1, sizes=SIZES, reduction="grid", journal=path)
        resumed = exhaustive_sweep(algorithm1, sizes=SIZES, reduction="grid", journal=path)
        assert first.reports == serial_reports
        assert resumed.reports == serial_reports


# ---------------------------------------------------------------------------
# Distributed chaos: injected faults, serial parity
# ---------------------------------------------------------------------------
class TestDistributedChaos:
    def test_frame_corruption_retires_and_retries_to_parity(
        self, algorithm1, chaos_tasks, serial_reports
    ):
        plan = (
            FaultPlan(seed=5)
            .corrupt_result_frame(index=0, worker=0)  # worker 0's first reply rots
            .corrupt_work_frame(index=1)  # the coordinator's second work frame rots
        )
        with DistributedBackend(min_workers=3, start_timeout=30, faults=plan) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=3, heartbeat_interval=0.1, faults=plan
            ).start():
                reports = backend.run_tasks(chaos_tasks)
            stats = backend.stats
        assert reports == serial_reports
        assert stats["retries_total"] >= 1

    def test_hung_worker_is_retired_within_the_deadline(
        self, algorithm1, chaos_tasks, serial_reports
    ):
        plan = FaultPlan().hang_worker(index=0, worker=0, seconds=60.0)
        with DistributedBackend(
            min_workers=2, start_timeout=30, item_timeout=1.0
        ) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=2, heartbeat_interval=0.05, faults=plan
            ).start():
                started = time.monotonic()
                reports = backend.run_tasks(chaos_tasks)
                elapsed = time.monotonic() - started
            stats = backend.stats
        assert reports == serial_reports
        assert stats["hung_retired"] >= 1
        # The wedge lasts 60s; finishing far sooner proves the deadline
        # (not the hang ending) is what retired the connection.
        assert elapsed < 30

    def test_slow_but_alive_worker_is_not_retired(self, algorithm1, chaos_tasks, serial_reports):
        # The delayed item takes ~2s against a 0.75s silence deadline, but
        # heartbeats keep flowing — retiring it would be a false positive.
        plan = FaultPlan().delay_item(index=0, worker=0, seconds=2.0)
        with DistributedBackend(
            min_workers=2, start_timeout=30, item_timeout=0.75
        ) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=2, heartbeat_interval=0.1, faults=plan
            ).start():
                reports = backend.run_tasks(chaos_tasks)
            stats = backend.stats
        assert reports == serial_reports
        assert stats["hung_retired"] == 0
        assert stats["retries_total"] == 0

    def test_daemon_kill_mid_wave_preserves_parity(self, algorithm1, chaos_tasks, serial_reports):
        plan = FaultPlan().kill_worker(index=0, worker=0)  # worker 0 dies on its first item
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=2, heartbeat_interval=0.1, faults=plan
            ).start() as daemon:
                reports = backend.run_tasks(chaos_tasks)
                assert daemon.alive >= 1  # the survivor carried the job
            stats = backend.stats
        assert reports == serial_reports
        assert stats["retries_total"] >= 1

    def test_poison_task_fails_alone_with_a_structured_report(
        self, algorithm1, chaos_tasks, serial_reports
    ):
        poison_id = 2
        plan = FaultPlan().kill_worker(item=poison_id)  # whoever pulls item 2 dies
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=4, heartbeat_interval=0.1, faults=plan
            ).start() as daemon:
                reports = backend.run_tasks(chaos_tasks)
                # Only its own item failed; every other verdict is serial-identical.
                for item_id, report in enumerate(reports):
                    if item_id == poison_id:
                        assert not report.ok
                        assert "poison" in report.reason
                        assert "retry budget" in report.reason
                    else:
                        assert report == serial_reports[item_id]
                assert backend.poisoned_total == 1
                # The fleet survives the quarantine (3 attempts, 4 workers) ...
                assert daemon.alive >= 1
                # ... and a subsequent job on the same fleet runs clean.
                follow_up = backend.run_tasks(chaos_tasks[:2])
                assert follow_up == serial_reports[:2]

    def test_poisoned_shard_raises_a_structured_error(self, algorithm1):
        from repro.engine.backend import PoisonedItemError

        grid = Grid(4, 4)  # big enough that the check actually shards
        plan = FaultPlan().kill_worker(item=0)  # shard jobs: wave item 0 is poison
        with DistributedBackend(min_workers=1, start_timeout=30, max_item_attempts=2) as backend:
            with WorkerDaemon(
                backend.host, backend.port, workers=3, heartbeat_interval=0.1, faults=plan
            ).start():
                with pytest.raises(PoisonedItemError, match="retry budget"):
                    check_terminating_exploration(
                        algorithm1, grid, model="FSYNC", reduction="grid", backend=backend
                    )

    def test_journalled_distributed_crash_and_resume(
        self, tmp_path, algorithm1, serial_reports
    ):
        path = tmp_path / "sweep.journal"
        crash = FaultPlan().crash_coordinator(after_records=2)
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=2, heartbeat_interval=0.1).start():
                engine = ParallelCampaignEngine(backend=backend)
                with pytest.raises(FaultInjected):
                    with CampaignJournal(path, faults=crash) as journal:
                        engine.exhaustive_sweep(
                            algorithm1, sizes=SIZES, reduction="grid", journal=journal
                        )
                with CampaignJournal(path) as journal:
                    assert len(journal) == 2
                    resumed = engine.exhaustive_sweep(
                        algorithm1, sizes=SIZES, reduction="grid", journal=journal
                    )
        assert resumed.reports == serial_reports


# ---------------------------------------------------------------------------
# Graceful degradation: FallbackBackend
# ---------------------------------------------------------------------------
class TestFallbackBackend:
    def test_fleet_that_never_arrives_degrades_to_local(self, algorithm1, chaos_tasks, serial_reports):
        primary = DistributedBackend(min_workers=1, start_timeout=0.2)
        with FallbackBackend(primary) as backend:
            reports = backend.run_tasks(chaos_tasks)
            assert reports == serial_reports
            assert backend.stats == {"fallback_jobs": 1, "fallback_items": len(chaos_tasks)}

    def test_fleet_lost_mid_job_finishes_locally_without_recomputing(
        self, algorithm1, chaos_tasks, serial_reports
    ):
        # The single worker dies on its *second* item: item 0's result is
        # already collected, so the fallback must only run the remainder.
        plan = FaultPlan().kill_worker(index=1, worker=0)
        primary = DistributedBackend(min_workers=1, start_timeout=1.0)
        with FallbackBackend(primary) as backend:
            with WorkerDaemon(
                primary.host, primary.port, workers=1, heartbeat_interval=0.1, faults=plan
            ).start():
                reports = backend.run_tasks(chaos_tasks)
        assert reports == serial_reports
        assert backend.stats["fallback_jobs"] == 1
        assert backend.stats["fallback_items"] == len(chaos_tasks) - 1

    def test_shard_jobs_degrade_too(self, algorithm1):
        grid = Grid(4, 4)
        serial = check_terminating_exploration(algorithm1, grid, model="FSYNC", reduction="grid")
        primary = DistributedBackend(min_workers=2, start_timeout=0.2)
        with FallbackBackend(primary) as backend:
            degraded = check_terminating_exploration(
                algorithm1, grid, model="FSYNC", reduction="grid", backend=backend
            )
            assert backend.stats["fallback_jobs"] >= 1
        assert degraded == serial

    def test_parallelism_delegates_to_the_primary(self):
        primary = DistributedBackend(min_workers=3, start_timeout=0.2)
        with FallbackBackend(primary) as backend:
            assert backend.parallelism == 3

    def test_close_is_final(self):
        backend = FallbackBackend(DistributedBackend(min_workers=1, start_timeout=0.2))
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.run_tasks([])


# ---------------------------------------------------------------------------
# Worker daemon lifecycle reporting
# ---------------------------------------------------------------------------
class TestWorkerLifecycleReporting:
    def test_join_names_stragglers_and_clears_after_shutdown(self):
        backend = DistributedBackend(min_workers=1, start_timeout=30)
        daemon = WorkerDaemon(backend.host, backend.port, workers=2).start()
        deadline = time.monotonic() + 30
        while backend.parallelism < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        # Workers are parked in recv: a bounded join must *name* them.
        stragglers = daemon.join(timeout=0.3)
        assert len(stragglers) == 2
        assert all(status.alive and status.pid is not None for status in stragglers)
        backend.close()  # orderly shutdown frame reaches both workers
        assert daemon.join(timeout=30) == []
        assert [status.exitcode for status in daemon.statuses()] == [0, 0]
        daemon.terminate()

    def test_run_worker_exits_zero_on_orderly_shutdown(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()[:2]

        def coordinator():
            conn, _ = listener.accept()
            with conn:
                assert recv_message(conn)[0] == "hello"
                send_message(conn, ("shutdown",))

        thread = threading.Thread(target=coordinator, daemon=True)
        thread.start()
        try:
            assert run_worker(host, port, workers=1, connect_timeout=10.0) == 0
        finally:
            thread.join(timeout=10)
            listener.close()

    def test_run_worker_exits_nonzero_when_a_loop_dies_abnormally(self, capsys):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()[:2]

        def coordinator():
            conn, _ = listener.accept()
            with conn:
                assert recv_message(conn)[0] == "hello"
            # connection dropped without a shutdown frame: abnormal end

        thread = threading.Thread(target=coordinator, daemon=True)
        thread.start()
        try:
            assert run_worker(host, port, workers=1, connect_timeout=10.0) == 1
        finally:
            thread.join(timeout=10)
            listener.close()
        assert "died abnormally" in capsys.readouterr().err
