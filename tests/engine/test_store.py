"""The persistent content-addressed verdict store.

Four promises under test:

1. **Crash safety** — segments reuse the journal record format, so a
   writer killed mid-append leaves at worst a torn tail that the next
   open truncates away; a corrupt record ends its segment's replay
   without losing the records before it.
2. **Coalescing** — duplicate concurrent requests for one key trigger
   exactly one computation; the duplicates share the leader's result
   (or exception) and count on the ``coalesced`` counter.
3. **Parity** — a verdict served from the store compares equal to a
   freshly computed one, on every route (serial, pooled, distributed),
   across the shared reduction-parity suite.
4. **Bounds** — the in-memory index is LRU-bounded, and on-disk bloat
   triggers compaction that preserves the live entries.
"""

from __future__ import annotations

import pickle
import struct
import threading
import zlib
from dataclasses import replace

import pytest

from repro.algorithms import get
from repro.core import Grid
from repro.engine import VerdictStore, explore_sharded
from repro.engine.campaign import (
    ParallelCampaignEngine,
    exhaustive_check_tasks,
    grid_sweep_tasks,
    task_store_key,
    verify_one,
)
from repro.engine.journal import RECORD_HEADER, pack_record
from repro.engine.matcher import MatcherCache
from repro.engine.pool import ExplorationPool
from repro.engine.store import COALESCED, HIT, MISS
from repro.engine.suites import reduction_parity_suite
from repro.checking import check_terminating_exploration

ALGORITHM = "fsync_phi2_l2_chir_k2"


def scrubbed(exploration):
    """An exploration with every observability-only field cleared.

    ``matcher_stats`` participates in equality (warmth is deterministic
    per route) but differs between a cold run and a cache-served copy of
    an earlier run, so parity tests compare the verdict-bearing rest.
    """
    return replace(exploration, matcher_stats=None, store_stats=None, wire_stats=None)


# ---------------------------------------------------------------------------
# Record format and crash safety
# ---------------------------------------------------------------------------
class TestDurability:
    def test_roundtrip_across_reopen(self, tmp_path):
        path = tmp_path / "store"
        with VerdictStore(path) as store:
            store.put(("spec", 1), {"verdict": "a"})
            store.put(("spec", 2), {"verdict": "b"})
        with VerdictStore(path) as reopened:
            assert len(reopened) == 2
            assert reopened.get(("spec", 1)) == {"verdict": "a"}
            assert reopened.get(("spec", 2)) == {"verdict": "b"}

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        path = tmp_path / "store"
        with VerdictStore(path) as store:
            store.put("key", "stale")
            store.put("key", "fresh")
        with VerdictStore(path) as reopened:
            assert reopened.get("key") == "fresh"

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "store"
        with VerdictStore(path) as store:
            store.put("key-1", "value-1")
            store.put("key-2", "value-2")
            segment = store._segments()[-1]
        # A writer killed mid-append leaves a partial record: a full
        # header promising more body bytes than were ever written.
        intact = segment.read_bytes()
        with open(segment, "ab") as handle:
            handle.write(RECORD_HEADER.pack(1 << 20, 0) + b"partial body")
        with VerdictStore(path) as recovered:
            assert recovered.recovered_bytes == RECORD_HEADER.size + len(b"partial body")
            assert recovered.get("key-1") == "value-1"
            assert recovered.get("key-2") == "value-2"
            assert segment.read_bytes() == intact  # tail gone, records kept

    def test_crc_mismatch_ends_segment_replay(self, tmp_path):
        path = tmp_path / "store"
        with VerdictStore(path) as store:
            store.put("key-1", "value-1")
            store.put("key-2", "value-2")
            store.put("key-3", "value-3")
            segment = store._segments()[-1]
        data = bytearray(segment.read_bytes())
        # Corrupt one byte inside the *second* record's body.
        (length_1,) = struct.unpack_from("!I", data, 0)
        offset = RECORD_HEADER.size + length_1 + RECORD_HEADER.size + 2
        data[offset] ^= 0xFF
        segment.write_bytes(bytes(data))
        with VerdictStore(path) as recovered:
            assert recovered.get("key-1") == "value-1"  # before the corruption
            assert recovered.get("key-2") is None  # the corrupt record
            assert recovered.get("key-3") is None  # ... and everything after
            assert recovered.recovered_bytes > 0

    def test_kill_mid_append_then_reopen_and_continue(self, tmp_path):
        """A simulated kill -9 mid-append: reopen, recover, keep writing."""
        path = tmp_path / "store"
        store = VerdictStore(path)
        store.put("survivor", "ok")
        # Die mid-write: half a record hits the active segment and the
        # process never comes back to finish or close it.
        record = pack_record("casualty", "lost")
        store._file.write(record[: len(record) // 2])
        store._file.flush()
        del store  # never closed — the handle just goes away

        with VerdictStore(path) as recovered:
            assert recovered.recovered_bytes == len(record) // 2
            assert recovered.get("survivor") == "ok"
            assert recovered.get("casualty") is None
            recovered.put("casualty", "rewritten")  # appends still work
        with VerdictStore(path) as again:
            assert again.get("casualty") == "rewritten"

    def test_in_memory_store_needs_no_disk(self):
        store = VerdictStore()
        store.put("key", "value")
        assert store.get("key") == "value"
        assert store.stats["disk_records"] == 0


# ---------------------------------------------------------------------------
# Bounds: LRU index and segment compaction
# ---------------------------------------------------------------------------
class TestBounds:
    def test_lru_eviction_counts_and_bounds_the_index(self):
        store = VerdictStore(max_entries=3)
        for i in range(5):
            store.put(("spec", i), i)
        assert len(store) == 3
        assert store.evictions == 2
        assert store.get(("spec", 0)) is None  # oldest went first
        assert store.get(("spec", 4)) == 4

    def test_hits_refresh_recency(self):
        store = VerdictStore(max_entries=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # touch: "b" is now the LRU entry
        store.put("c", 3)
        assert store.get("a") == 1
        assert store.get("b") is None

    def test_compaction_drops_stale_records_and_keeps_live_ones(self, tmp_path):
        path = tmp_path / "store"
        with VerdictStore(path, max_entries=4, segment_records=4) as store:
            # Rewrite the same four keys many times: disk bloats with
            # stale duplicates until compaction rewrites the live index.
            for round_ in range(8):
                for i in range(4):
                    store.put(("spec", i), (round_, i))
            assert store.compactions > 0
            assert store.stats["disk_records"] <= max(
                store.compact_factor * len(store), store.segment_records
            ) + len(store)
        with VerdictStore(path) as reopened:
            assert {reopened.get(("spec", i)) for i in range(4)} == {(7, i) for i in range(4)}


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_duplicate_concurrent_requests_compute_once(self):
        store = VerdictStore()
        started, release = threading.Event(), threading.Event()
        calls = []

        def compute():
            calls.append(1)
            started.set()
            assert release.wait(timeout=30)
            return "verdict"

        outcomes = {}

        def request(slot):
            outcomes[slot] = store.get_or_compute("key", compute)

        leader = threading.Thread(target=request, args=("leader",))
        leader.start()
        assert started.wait(timeout=30)
        follower = threading.Thread(target=request, args=("follower",))
        follower.start()
        # The follower registers as a waiter (counting ``coalesced``)
        # before it blocks; only then is the leader released.
        for _ in range(10_000):
            if store.coalesced:
                break
            threading.Event().wait(0.001)
        assert store.coalesced == 1
        release.set()
        leader.join(timeout=30)
        follower.join(timeout=30)
        assert len(calls) == 1
        assert outcomes["leader"] == ("verdict", MISS)
        assert outcomes["follower"] == ("verdict", COALESCED)
        assert store.get_or_compute("key", compute) == ("verdict", HIT)
        assert len(calls) == 1

    def test_leader_exception_propagates_and_caches_nothing(self):
        store = VerdictStore()
        started, release = threading.Event(), threading.Event()

        def explode():
            started.set()
            assert release.wait(timeout=30)
            raise RuntimeError("exploration failed")

        errors = []

        def request():
            try:
                store.get_or_compute("key", explode)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=request) for _ in range(2)]
        threads[0].start()
        assert started.wait(timeout=30)
        threads[1].start()
        for _ in range(10_000):
            if store.coalesced:
                break
            threading.Event().wait(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == ["exploration failed"] * 2
        assert "key" not in store  # failures are never recorded
        assert store.get_or_compute("key", lambda: "retried") == ("retried", MISS)

    def test_concurrent_explorations_coalesce_to_one(self, monkeypatch):
        """Two racing ``explore_sharded(store=...)`` calls, one exploration."""
        from repro.engine import sharded as sharded_module

        routed = sharded_module._route_exploration
        started, release = threading.Event(), threading.Event()
        calls = []

        def gated_route(*args, **kwargs):
            calls.append(1)
            started.set()
            assert release.wait(timeout=60)
            return routed(*args, **kwargs)

        monkeypatch.setattr(sharded_module, "_route_exploration", gated_route)
        store = VerdictStore()
        algorithm, grid = get(ALGORITHM), Grid(3, 3)
        results = {}

        def request(slot):
            results[slot] = explore_sharded(algorithm, grid, "FSYNC", reduction="grid", store=store)

        leader = threading.Thread(target=request, args=("leader",))
        leader.start()
        assert started.wait(timeout=60)
        follower = threading.Thread(target=request, args=("follower",))
        follower.start()
        for _ in range(60_000):
            if store.coalesced:
                break
            threading.Event().wait(0.001)
        assert store.coalesced >= 1
        release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)
        assert len(calls) == 1  # exactly one exploration ran
        assert scrubbed(results["leader"]) == scrubbed(results["follower"])
        outcomes = {results[slot].store_stats["outcome"] for slot in results}
        assert outcomes == {MISS, COALESCED}


# ---------------------------------------------------------------------------
# Cached-vs-computed parity
# ---------------------------------------------------------------------------
class TestParity:
    def test_exploration_parity_across_the_reduction_suite_serial(self):
        store = VerdictStore()
        for name, m, n, model in reduction_parity_suite():
            algorithm, grid = get(name), Grid(m, n)
            fresh = explore_sharded(algorithm, grid, model, reduction="grid", workers=1)
            recorded = explore_sharded(
                algorithm, grid, model, reduction="grid", workers=1, store=store
            )
            cached = explore_sharded(
                algorithm, grid, model, reduction="grid", workers=1, store=store
            )
            assert recorded.store_stats["outcome"] == MISS
            assert cached.store_stats["outcome"] == HIT
            assert scrubbed(cached) == scrubbed(recorded) == scrubbed(fresh)

    def test_exploration_parity_on_the_pool_route(self):
        store = VerdictStore()
        cases = [case for case in reduction_parity_suite() if case[3] != "ASYNC"][:6]
        with ExplorationPool(workers=2) as pool:
            for name, m, n, model in cases:
                algorithm, grid = get(name), Grid(m, n)
                fresh = pool.explore(algorithm, grid, model, reduction="grid")
                recorded = pool.explore(algorithm, grid, model, reduction="grid", store=store)
                cached = pool.explore(algorithm, grid, model, reduction="grid", store=store)
                assert cached.store_stats["outcome"] == HIT
                assert scrubbed(cached) == scrubbed(recorded) == scrubbed(fresh)

    def test_check_result_parity_and_cross_entry_point_sharing(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        algorithm, grid = get(ALGORITHM), Grid(3, 3)
        fresh = check_terminating_exploration(algorithm, grid, model="FSYNC", reduction="grid")
        recorded = check_terminating_exploration(
            algorithm, grid, model="FSYNC", reduction="grid", store=store
        )
        # The check cached its inner exploration under the explore key,
        # so the explorer route hits without ever having explored.
        exploration = explore_sharded(algorithm, grid, "FSYNC", reduction="grid", store=store)
        assert exploration.store_stats["outcome"] == HIT
        cached = check_terminating_exploration(
            algorithm, grid, model="FSYNC", reduction="grid", store=store
        )
        assert cached.store_stats["outcome"] == HIT
        assert replace(cached, store_stats=None) == replace(recorded, store_stats=None) == fresh

    def test_budget_tripped_verdicts_never_alias_full_ones(self):
        from repro.core.errors import StateSpaceLimitExceeded
        from repro.engine.campaign import check_one

        store = VerdictStore()
        algorithm, grid = get(ALGORITHM), Grid(3, 3)
        with pytest.raises(StateSpaceLimitExceeded):
            check_terminating_exploration(
                algorithm, grid, model="FSYNC", reduction="grid", max_states=2, store=store
            )
        assert len(store) == 0  # a tripped budget records nothing
        # check_one converts the trip into a failed report — cached under a
        # key that carries max_states, so it can never answer for the full
        # check, which runs (and passes) as its own miss.
        starved = check_one(algorithm, 3, 3, max_states=2, store=store)
        assert not starved.ok
        full = check_one(algorithm, 3, 3, store=store)
        assert full.ok
        assert full.store_stats["outcome"] == MISS
        assert check_one(algorithm, 3, 3, max_states=2, store=store) == starved

    def test_report_parity_on_disk_across_sessions(self, tmp_path):
        algorithm = get(ALGORITHM)
        tasks = grid_sweep_tasks(algorithm, sizes=[(3, 3), (3, 4)]) + exhaustive_check_tasks(
            algorithm, sizes=[(3, 3)]
        )
        fresh = ParallelCampaignEngine(workers=1).run_tasks(algorithm, tasks)
        with VerdictStore(tmp_path / "store") as store:
            recorded = ParallelCampaignEngine(workers=1, store=store).run_tasks(algorithm, tasks)
        # A new process opening the same directory serves every report.
        with VerdictStore(tmp_path / "store") as reopened:
            cached = ParallelCampaignEngine(workers=1, store=reopened).run_tasks(algorithm, tasks)
            assert all(report.store_stats["outcome"] == HIT for report in cached)
            assert reopened.misses == 0
        assert cached == recorded == fresh

    def test_serial_and_engine_routes_share_store_entries(self):
        store = VerdictStore()
        algorithm = get(ALGORITHM)
        report = verify_one(algorithm, 3, 3, store=store)
        assert report.store_stats["outcome"] == MISS
        (task,) = grid_sweep_tasks(algorithm, sizes=[(3, 3)])
        (engine_report,) = ParallelCampaignEngine(workers=1, store=store).run_tasks(
            algorithm, [task]
        )
        assert engine_report.store_stats["outcome"] == HIT
        assert engine_report == report

    def test_walk_keys_normalize_the_default_seed(self):
        algorithm = get(ALGORITHM)
        explicit = grid_sweep_tasks(algorithm, sizes=[(3, 3)], seed=0)[0]
        defaulted = grid_sweep_tasks(algorithm, sizes=[(3, 3)])[0]
        assert task_store_key(explicit) == task_store_key(defaulted)

    def test_distributed_route_serves_and_fills_the_store(self):
        from repro.engine import DistributedBackend, WorkerDaemon

        store = VerdictStore()
        algorithm = get(ALGORITHM)
        tasks = exhaustive_check_tasks(algorithm, sizes=[(3, 3), (3, 4)])
        fresh = ParallelCampaignEngine(workers=1).run_tasks(algorithm, tasks)
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                engine = ParallelCampaignEngine(backend=backend, store=store)
                recorded = engine.run_tasks(algorithm, tasks)
                cached = engine.run_tasks(algorithm, tasks)
        assert all(report.store_stats["outcome"] == HIT for report in cached)
        assert cached == recorded == fresh
        # The second run never crossed the wire: hits short-circuit dispatch.
        assert store.misses == len(tasks)


# ---------------------------------------------------------------------------
# Matcher-cache bound (satellite)
# ---------------------------------------------------------------------------
class TestMatcherCacheBound:
    def test_trim_bounds_entries_and_counts_evictions(self):
        from repro.engine.walk import run_fsync

        algorithm = get(ALGORITHM)
        cache = MatcherCache(max_entries=8)
        run_fsync(algorithm, Grid(4, 4), matcher=cache.matcher_for(algorithm, Grid(4, 4)))
        assert cache.entry_count() > 8  # matchers overshoot between handouts
        cache.matcher_for(algorithm, Grid(3, 3))  # handout enforces the cap
        assert cache.entry_count() <= 8
        assert cache.stats.evictions > 0
        assert cache.stats_for(algorithm).evictions == cache.stats.evictions

    def test_unbounded_by_default_in_practice(self):
        cache = MatcherCache()
        algorithm = get(ALGORITHM)
        cache.matcher_for(algorithm, Grid(3, 3))
        assert cache.stats.evictions == 0

    def test_eviction_does_not_change_results(self):
        from repro.engine.walk import run_fsync

        algorithm = get(ALGORITHM)
        bounded, unbounded = MatcherCache(max_entries=4), MatcherCache()
        grids = [Grid(3, 3), Grid(4, 4), Grid(3, 3)]
        for grid in grids:
            starved = run_fsync(algorithm, grid, matcher=bounded.matcher_for(algorithm, grid))
            warm = run_fsync(algorithm, grid, matcher=unbounded.matcher_for(algorithm, grid))
            assert starved.steps == warm.steps
            assert starved.total_moves == warm.total_moves
        assert bounded.stats.evictions > 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            MatcherCache(max_entries=0)


# ---------------------------------------------------------------------------
# Frame compression (satellite)
# ---------------------------------------------------------------------------
class TestFrameCompression:
    def test_large_bodies_compress_and_roundtrip(self):
        from repro.engine.distributed import COMPRESS_THRESHOLD, decode_frame_body, encode_frame_info

        payload = ("work", 7, "explore", [("row", i, "X" * 20) for i in range(500)])
        frame, raw_bytes, wire_bytes, compressed = encode_frame_info(payload)
        assert compressed
        assert wire_bytes < raw_bytes
        assert len(frame) == wire_bytes
        assert raw_bytes - 1 >= COMPRESS_THRESHOLD
        assert decode_frame_body(frame[8:]) == payload

    def test_small_bodies_ship_raw(self):
        from repro.engine.distributed import decode_frame_body, encode_frame_info

        payload = ("heartbeat", 3)
        frame, raw_bytes, wire_bytes, compressed = encode_frame_info(payload)
        assert not compressed
        assert wire_bytes == raw_bytes == len(frame)
        assert decode_frame_body(frame[8:]) == payload

    def test_incompressible_bodies_stay_raw(self):
        import os as _os

        from repro.engine.distributed import decode_frame_body, encode_frame_info

        payload = _os.urandom(4096)  # already-high-entropy body
        frame, _, _, compressed = encode_frame_info(payload)
        assert not compressed
        assert decode_frame_body(frame[8:]) == payload

    def test_legacy_unflagged_frames_still_decode(self):
        from repro.engine.distributed import decode_frame_body

        body = pickle.dumps(("hello", {"pid": 1}), protocol=pickle.HIGHEST_PROTOCOL)
        assert body[:1] == b"\x80"  # the disambiguating first byte
        assert decode_frame_body(body) == ("hello", {"pid": 1})

    def test_corrupt_compressed_body_raises_not_hangs(self):
        from repro.engine.distributed import decode_frame_body, encode_frame_info

        frame, _, _, compressed = encode_frame_info(list(range(2000)))
        assert compressed
        body = bytearray(frame[8:])
        body[10] ^= 0xFF
        with pytest.raises((zlib.error, pickle.UnpicklingError, EOFError, ValueError)):
            decode_frame_body(bytes(body))

    def test_wire_stats_record_compression_savings(self, monkeypatch):
        from repro.engine import DistributedBackend, WorkerDaemon
        from repro.engine import distributed as distributed_module

        # Small test grids send small frames; drop the threshold so the
        # coordinator's work frames qualify (production-size frontiers
        # clear the real 1 KiB bar on their own).
        monkeypatch.setattr(distributed_module, "COMPRESS_THRESHOLD", 64)
        algorithm = get(ALGORITHM)
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                exploration = explore_sharded(
                    algorithm, Grid(4, 4), "FSYNC", reduction="grid", backend=backend
                )
                stats = backend.stats
        assert exploration.num_states > 0
        assert stats["frames_compressed"] >= 1
        assert stats["bytes_sent_raw"] > stats["bytes_sent"]  # savings were real
