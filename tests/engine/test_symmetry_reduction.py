"""Tests for grid-symmetry reduction in the engine kernel."""

from __future__ import annotations

import pytest

from repro.algorithms import all_algorithms, get
from repro.checking import check_terminating_exploration, enumerate_reachable
from repro.core import Algorithm, G, Grid, Synchrony, W, occ
from repro.core.rules import Guard, Rule
from repro.engine import (
    AlgorithmTransitionSystem,
    canonicalize,
    grid_symmetries,
    initial_state,
    transform_state,
)

FSYNC_NAMES = sorted(
    name for name, alg in all_algorithms().items() if alg.synchrony == "FSYNC"
)


def small_square(algorithm: Algorithm) -> Grid:
    side = max(algorithm.min_m, algorithm.min_n, 3)
    return Grid(side, side)


class TestGridSymmetries:
    def test_square_grid_group_sizes(self):
        assert len(grid_symmetries(Grid(3, 3), chirality=True)) == 4
        assert len(grid_symmetries(Grid(3, 3), chirality=False)) == 8

    def test_rectangular_grid_group_sizes(self):
        # Only the identity and rot180 preserve a non-square rectangle with
        # chirality; the two axis flips join without it.
        assert len(grid_symmetries(Grid(3, 4), chirality=True)) == 2
        assert len(grid_symmetries(Grid(3, 4), chirality=False)) == 4

    def test_identity_comes_first(self):
        for chirality in (True, False):
            first = grid_symmetries(Grid(4, 4), chirality)[0]
            assert first.is_identity

    def test_node_maps_are_grid_automorphisms(self):
        grid = Grid(4, 4)
        for gs in grid_symmetries(grid, chirality=False):
            image = {gs.node(node) for node in grid.nodes()}
            assert image == set(grid.nodes())
            # Adjacency is preserved.
            for node in grid.nodes():
                for neighbor in grid.neighbors(node):
                    assert Grid.distance(gs.node(node), gs.node(neighbor)) == 1

    def test_inverse_round_trip(self):
        grid = Grid(4, 4)
        for gs in grid_symmetries(grid, chirality=False):
            inv = gs.inverse()
            for node in grid.nodes():
                assert inv.node(gs.node(node)) == node
            for offset in ((1, 0), (0, 1), (-1, 0), (0, -1)):
                assert inv.offset(gs.offset(offset)) == offset

    def test_transform_state_round_trip(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 3)
        state = initial_state(algorithm, grid)
        # Push the state one ASYNC step in so it carries a stored snapshot.
        ts = AlgorithmTransitionSystem(algorithm, grid, "ASYNC")
        looked = ts.successors(state)[0]
        for gs in grid_symmetries(grid, chirality=True):
            assert transform_state(transform_state(looked, gs), gs.inverse()) == looked

    def test_canonicalize_is_orbit_invariant(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        symmetries = grid_symmetries(grid, chirality=True)
        state = initial_state(algorithm, grid)
        rep, _ = canonicalize(state, symmetries)
        for gs in symmetries:
            other_rep, h = canonicalize(transform_state(state, gs), symmetries)
            assert other_rep == rep
            if h is not None:
                # h maps the representative back onto the orbit member.
                assert transform_state(rep, h) == transform_state(state, gs)


class TestReductionSoundness:
    @pytest.mark.parametrize("name", FSYNC_NAMES)
    def test_fsync_reduced_count_and_verdicts(self, name):
        """Satellite: reduced <= unreduced, identical verdicts, per FSYNC algorithm."""
        algorithm = get(name)
        grid = small_square(algorithm)
        full = enumerate_reachable(algorithm, grid, model="FSYNC")
        reduced = enumerate_reachable(algorithm, grid, model="FSYNC", symmetry_reduction=True)
        assert reduced <= full
        plain = check_terminating_exploration(algorithm, grid, model="FSYNC")
        quotient = check_terminating_exploration(
            algorithm, grid, model="FSYNC", symmetry_reduction=True
        )
        assert (plain.terminates, plain.explores, plain.ok) == (
            quotient.terminates,
            quotient.explores,
            quotient.ok,
        )
        assert quotient.states_explored == reduced

    @pytest.mark.parametrize(
        "name,m,n,model",
        [
            ("fsync_phi2_l2_chir_k2", 3, 3, "SSYNC"),
            ("fsync_phi2_l2_chir_k2", 4, 4, "SSYNC"),
            ("fsync_phi2_l2_nochir_k3", 4, 4, "SSYNC"),
        ],
    )
    def test_strict_reduction_on_symmetric_pairs(self, name, m, n, model):
        """Acceptance: symmetric pairs where the quotient is strictly smaller."""
        algorithm = get(name)
        grid = Grid(m, n)
        full = enumerate_reachable(algorithm, grid, model=model)
        reduced = enumerate_reachable(algorithm, grid, model=model, symmetry_reduction=True)
        assert reduced < full
        plain = check_terminating_exploration(algorithm, grid, model=model)
        quotient = check_terminating_exploration(algorithm, grid, model=model, symmetry_reduction=True)
        assert (plain.terminates, plain.explores) == (quotient.terminates, quotient.explores)

    @pytest.mark.parametrize("name", ["async_phi2_l3_chir_k2", "async_phi2_l2_chir_k3"])
    def test_async_model_verdicts_identical(self, name):
        algorithm = get(name)
        grid = Grid(3, 3)
        plain = check_terminating_exploration(algorithm, grid, model="ASYNC", max_states=500_000)
        quotient = check_terminating_exploration(
            algorithm, grid, model="ASYNC", max_states=500_000, symmetry_reduction=True
        )
        assert (plain.terminates, plain.explores, plain.ok) == (
            quotient.terminates,
            quotient.explores,
            quotient.ok,
        )

    def test_nontermination_detected_through_the_quotient(self):
        """A quotient cycle is reported exactly like a raw cycle."""
        rules = (
            Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
            Rule("R2", G, Guard.build(1, W=occ(W)), G, "W"),
            Rule("R3", W, Guard.build(1, W=occ(G)), W, "W"),
            Rule("R4", W, Guard.build(1, E=occ(G)), W, "E"),
        )
        oscillator = Algorithm(
            name="oscillator",
            synchrony=Synchrony.SSYNC,
            phi=1,
            colors=(G, W),
            chirality=True,
            k=2,
            rules=rules,
            initial_placement=lambda m, n: [((0, 1), G), ((0, 2), W)],
            min_m=1,
            min_n=4,
        )
        grid = Grid(1, 4)
        full = enumerate_reachable(oscillator, grid, model="SSYNC")
        reduced = enumerate_reachable(oscillator, grid, model="SSYNC", symmetry_reduction=True)
        assert reduced < full  # the ping-pong orbit folds onto itself
        plain = check_terminating_exploration(oscillator, grid, model="SSYNC")
        quotient = check_terminating_exploration(oscillator, grid, model="SSYNC", symmetry_reduction=True)
        assert not plain.terminates and not quotient.terminates
        assert not plain.ok and not quotient.ok
