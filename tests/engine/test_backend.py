"""Tests for the pluggable execution backends and their lifecycles."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration, enumerate_reachable, explore_state_space
from repro.analysis.scaling import round_complexity_sweep, state_space_sweep
from repro.engine import (
    AlgorithmTransitionSystem,
    ExecutionBackend,
    ExplorationPool,
    ParallelCampaignEngine,
    PoolBackend,
    SerialBackend,
    backend_cache,
    exhaustive_check_tasks,
    explore,
    explore_sharded,
    grid_sweep_tasks,
    run_task,
)
from repro.core import Grid
from repro.verification import exhaustive_sweep, grid_sweep, verify_algorithm


def _serial_exploration(algorithm, grid, model, **kwargs):
    return explore(AlgorithmTransitionSystem(algorithm, grid, model), **kwargs)


def _assert_same_exploration(actual, expected):
    assert actual.num_states == expected.num_states
    assert actual.states == expected.states
    assert actual.succ == expected.succ
    assert actual.index == expected.index
    assert actual.reduced == expected.reduced
    assert actual.edge_syms == expected.edge_syms


@pytest.fixture(params=["serial", "pool"])
def backend(request):
    """Each in-process backend implementation, freshly constructed."""
    if request.param == "serial":
        with SerialBackend() as made:
            yield made
    else:
        with PoolBackend(workers=2) as made:
            yield made


# ---------------------------------------------------------------------------
# The backend contract
# ---------------------------------------------------------------------------
class TestBackendContract:
    def test_implementations_satisfy_the_protocol(self, backend):
        assert isinstance(backend, ExecutionBackend)
        assert backend.parallelism >= 1

    def test_run_tasks_returns_reports_in_task_order(self, backend, algorithm1):
        tasks = grid_sweep_tasks(algorithm1, sizes=[(3, 3), (3, 4), (4, 3)])
        reports = backend.run_tasks(tasks)
        assert [(r.m, r.n) for r in reports] == [(t.m, t.n) for t in tasks]
        assert reports == [run_task(task) for task in tasks]

    def test_empty_task_list(self, backend):
        assert backend.run_tasks([]) == []
        assert backend.map_shards([]) == []

    def test_check_tasks_match_serial_engine(self, backend, algorithm1):
        tasks = exhaustive_check_tasks(algorithm1, sizes=[(2, 3), (3, 3)], reduction="grid")
        serial = ParallelCampaignEngine(workers=1).run_tasks(algorithm1, tasks)
        assert backend.run_tasks(tasks) == serial

    def test_closed_backend_refuses_work(self, algorithm1):
        backend = SerialBackend()
        backend.close()
        backend.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            backend.run_tasks(grid_sweep_tasks(algorithm1, sizes=[(3, 3)]))
        with pytest.raises(RuntimeError, match="closed"):
            backend.map_shards([])
        with pytest.raises(RuntimeError, match="closed"):
            with backend:
                pass


# ---------------------------------------------------------------------------
# Exploration through map_shards
# ---------------------------------------------------------------------------
class TestBackendExploration:
    @pytest.mark.parametrize("reduction", [None, "grid", "grid+color+por"])
    def test_explore_sharded_backend_matches_serial(self, backend, algorithm1, reduction):
        grid = Grid(4, 4)
        expected = _serial_exploration(algorithm1, grid, "FSYNC", reduction=reduction)
        actual = explore_sharded(algorithm1, grid, "FSYNC", reduction=reduction, backend=backend)
        _assert_same_exploration(actual, expected)

    def test_checking_entry_points_accept_backend(self, backend, algorithm1):
        grid = Grid(3, 3)
        check = check_terminating_exploration(algorithm1, grid, model="FSYNC", backend=backend)
        assert check == check_terminating_exploration(algorithm1, grid, model="FSYNC")
        assert enumerate_reachable(algorithm1, grid, model="FSYNC", backend=backend) == (
            enumerate_reachable(algorithm1, grid, model="FSYNC")
        )
        graph = explore_state_space(algorithm1, grid, model="FSYNC", backend=backend)
        assert graph == explore_state_space(algorithm1, grid, model="FSYNC")


# ---------------------------------------------------------------------------
# Campaign / verification / analysis layers
# ---------------------------------------------------------------------------
class TestBackendCampaigns:
    def test_engine_backend_supersedes_pool(self, backend, algorithm1):
        engine = ParallelCampaignEngine(backend=backend)
        tasks = grid_sweep_tasks(algorithm1, sizes=[(3, 3), (4, 4)])
        assert engine.run_tasks(algorithm1, tasks) == [run_task(task) for task in tasks]
        assert engine.workers == backend.parallelism

    def test_verification_campaigns_parity(self, backend, algorithm1):
        sizes = [(3, 3), (3, 4)]
        assert grid_sweep(algorithm1, sizes=sizes, backend=backend).reports == (
            grid_sweep(algorithm1, sizes=sizes).reports
        )
        assert exhaustive_sweep(algorithm1, sizes=sizes, backend=backend).reports == (
            exhaustive_sweep(algorithm1, sizes=sizes).reports
        )
        assert verify_algorithm(algorithm1, sizes=sizes, backend=backend).reports == (
            verify_algorithm(algorithm1, sizes=sizes).reports
        )

    def test_scaling_sweeps_parity(self, backend, algorithm1):
        sizes = [(3, 3), (3, 4), (4, 4)]
        assert round_complexity_sweep(algorithm1, sizes=sizes, backend=backend) == (
            round_complexity_sweep(algorithm1, sizes=sizes)
        )
        baseline = state_space_sweep(algorithm1, sizes=sizes, reduction="grid")
        routed = state_space_sweep(algorithm1, sizes=sizes, reduction="grid", backend=backend)
        assert [(p.m, p.n, p.states, p.reduction) for p in routed] == (
            [(p.m, p.n, p.states, p.reduction) for p in baseline]
        )

    def test_unregistered_algorithm_falls_back_in_process(self, backend):
        from tests.engine.test_pool import _adhoc_algorithm

        adhoc = _adhoc_algorithm("adhoc_backend_test")
        engine = ParallelCampaignEngine(backend=backend)
        tasks = grid_sweep_tasks(adhoc, sizes=[(1, 3)])
        # An unregistered rule set cannot cross a process boundary; the
        # engine must fall back to in-process execution with the same
        # reports the serial path produces.
        assert engine.run_tasks(adhoc, tasks) == ParallelCampaignEngine(workers=1).run_tasks(
            adhoc, tasks
        )


# ---------------------------------------------------------------------------
# PoolBackend specifics
# ---------------------------------------------------------------------------
class TestPoolBackend:
    def test_shared_pool_is_not_closed_with_the_backend(self, algorithm1):
        with ExplorationPool(workers=2) as pool:
            with PoolBackend(pool) as backend:
                assert backend.parallelism == 2
                assert backend_cache(backend) is pool.cache
            # The backend wrapped a shared pool: closing it must leave the
            # pool usable for other consumers.
            exploration = pool.explore(algorithm1, Grid(3, 3), "FSYNC")
            assert exploration.num_states > 0

    def test_owned_pool_is_closed_with_the_backend(self):
        backend = PoolBackend(workers=2)
        pool = backend.pool
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.explore(get("fsync_phi2_l2_chir_k2"), Grid(3, 3), "FSYNC")

    def test_pool_and_workers_are_mutually_exclusive(self):
        with ExplorationPool(workers=2) as pool:
            with pytest.raises(ValueError):
                PoolBackend(pool, workers=4)

    def test_serial_backend_cache_is_the_process_cache(self):
        from repro.engine import process_cache

        # The serial backend's "worker" is this process, so fallbacks
        # share the same cache its registered workloads warm.
        assert backend_cache(SerialBackend()) is process_cache()

    def test_distributed_backend_has_no_in_process_cache(self):
        class RemoteLike:  # duck-typed: no pool attribute, not serial
            parallelism = 2

        assert backend_cache(RemoteLike()) is None


# ---------------------------------------------------------------------------
# Lifecycle hardening: partial spawn failure must not leak workers
# ---------------------------------------------------------------------------
class _FailingPoolContext:
    """A multiprocessing context whose Pool strands a child then fails."""

    def __init__(self, real_context):
        self._real = real_context
        self.stranded = []

    def Pool(self, processes=None):
        # Simulate the constructor getting partway: one worker process is
        # alive when the spawn of the next one blows up.  Real stranded
        # workers carry multiprocessing's pool-worker naming, which the
        # cleanup keys on to avoid reaping unrelated processes.
        process = self._real.Process(
            target=time.sleep, args=(60,), daemon=True, name="ForkPoolWorker-simulated"
        )
        process.start()
        self.stranded.append(process)
        raise RuntimeError("simulated worker spawn failure")


class TestSpawnFailureSafety:
    def test_pool_spawn_failure_leaks_nothing(self, monkeypatch, algorithm1):
        failing = _FailingPoolContext(multiprocessing.get_context())
        monkeypatch.setattr(multiprocessing, "get_context", lambda *a, **k: failing)
        pool = ExplorationPool(workers=2, serial_threshold=0)
        with pytest.raises(RuntimeError, match="simulated worker spawn failure"):
            pool.explore(algorithm1, Grid(3, 3), "FSYNC")
        # The stranded child was reaped before the error propagated ...
        assert [p for p in failing.stranded if p.is_alive()] == []
        assert not pool.started
        # ... and the pool closes cleanly (idempotently) afterwards.
        pool.close()
        pool.close()

    def test_pool_exit_does_not_mask_spawn_failure(self, monkeypatch, algorithm1):
        failing = _FailingPoolContext(multiprocessing.get_context())
        monkeypatch.setattr(multiprocessing, "get_context", lambda *a, **k: failing)
        with pytest.raises(RuntimeError, match="simulated worker spawn failure"):
            with ExplorationPool(workers=2, serial_threshold=0) as pool:
                pool.explore(algorithm1, Grid(3, 3), "FSYNC")
        assert [p for p in failing.stranded if p.is_alive()] == []
