"""Tests for the batched/parallel campaign engine."""

from __future__ import annotations

from repro.algorithms import get
from repro.core import Algorithm, G, Synchrony, W, occ
from repro.core.rules import Guard, Rule
from repro.engine import (
    CampaignTask,
    ParallelCampaignEngine,
    derive_seed,
    execute_tasks,
    grid_sweep_tasks,
    run_task,
    stress_test_tasks,
)
from repro.verification import grid_sweep, stress_test


class TestTaskLists:
    def test_grid_sweep_tasks_cover_the_default_suite(self):
        algorithm = get("fsync_phi1_l2_chir_k3")
        tasks = grid_sweep_tasks(algorithm)
        assert tasks, "default suite must not be empty"
        assert all(task.algorithm == algorithm.name for task in tasks)
        assert all(algorithm.supports_grid(task.m, task.n) for task in tasks)

    def test_stress_tasks_enumerate_models_and_seeds(self):
        algorithm = get("async_phi2_l3_chir_k2")
        tasks = stress_test_tasks(algorithm, sizes=[(3, 4)], seeds=(0, 1))
        assert len(tasks) == 4  # 2 models x 2 seeds
        assert {task.model for task in tasks} == {"SSYNC", "ASYNC"}

    def test_run_task_resolves_through_the_registry(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        report = run_task(CampaignTask(algorithm=algorithm.name, m=3, n=4))
        assert report.ok and report.algorithm == algorithm.name


class TestParallelSerialParity:
    def test_grid_sweep_reports_identical_with_four_workers(self):
        """Acceptance: workers=4 produces byte-identical reports to serial."""
        algorithm = get("fsync_phi1_l2_chir_k3")
        serial = grid_sweep(algorithm)
        parallel = ParallelCampaignEngine(workers=4).grid_sweep(algorithm)
        assert parallel.reports == serial.reports
        assert [str(r) for r in parallel.reports] == [str(r) for r in serial.reports]
        assert parallel.ok == serial.ok

    def test_stress_test_reports_identical_with_workers(self):
        algorithm = get("async_phi2_l3_chir_k2")
        sizes = [(3, 4), (3, 5)]
        serial = stress_test(algorithm, sizes=sizes, seeds=(0, 1))
        parallel = ParallelCampaignEngine(workers=4).stress_test(algorithm, sizes=sizes, seeds=(0, 1))
        assert parallel.reports == serial.reports

    def test_single_worker_runs_in_process(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        engine = ParallelCampaignEngine(workers=1)
        report = engine.grid_sweep(algorithm, sizes=[(3, 4)])
        assert report.ok and len(report.reports) == 1

    def test_unregistered_algorithm_falls_back_to_serial(self):
        rules = (
            Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
            Rule("R2", W, Guard.build(1, W=occ(G)), W, None),
        )
        adhoc = Algorithm(
            name="adhoc_engine_test",
            synchrony=Synchrony.FSYNC,
            phi=1,
            colors=(G, W),
            chirality=True,
            k=2,
            rules=rules,
            initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W)],
            min_m=1,
            min_n=3,
        )
        engine = ParallelCampaignEngine(workers=4)
        report = engine.grid_sweep(adhoc, sizes=[(1, 3)])
        # The ad-hoc rule set is not a terminating explorer; what matters is
        # that the engine executed it in-process instead of failing to pickle.
        assert len(report.reports) == 1
        # ...and the result matches the serial path exactly.
        serial = execute_tasks(adhoc, grid_sweep_tasks(adhoc, sizes=[(1, 3)]))
        assert report.reports == serial


class TestSeedDerivation:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(0, 3, 4, "SSYNC") == derive_seed(0, 3, 4, "SSYNC")

    def test_derive_seed_separates_coordinates(self):
        seeds = {
            derive_seed(0, m, n, model)
            for m in (3, 4)
            for n in (4, 5)
            for model in ("SSYNC", "ASYNC")
        }
        assert len(seeds) == 8

    def test_derive_seed_fits_in_63_bits(self):
        for base in range(5):
            assert 0 <= derive_seed(base, "x") < 2**63
