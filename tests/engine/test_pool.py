"""Tests for the persistent exploration pool and the cache-plumbing fixes."""

from __future__ import annotations

import os

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration, enumerate_reachable, explore_state_space
from repro.core import Algorithm, G, Grid, Synchrony, W, occ
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.rules import Guard, Rule
from repro.engine import (
    AlgorithmTransitionSystem,
    ExplorationPool,
    MatcherCache,
    ParallelCampaignEngine,
    default_workers,
    estimate_states,
    explore,
    explore_sharded,
    verify_one,
)
from repro.verification import grid_sweep


def _serial(algorithm, grid, model, **kwargs):
    return explore(AlgorithmTransitionSystem(algorithm, grid, model), **kwargs)


def _adhoc_algorithm(name="adhoc_pool_test"):
    rules = (
        Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
        Rule("R2", W, Guard.build(1, W=occ(G)), W, None),
    )
    return Algorithm(
        name=name,
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W)],
        min_m=1,
        min_n=3,
    )


def _assert_same_exploration(actual, expected):
    assert actual.num_states == expected.num_states
    assert actual.states == expected.states  # same states in the same interned order
    assert actual.succ == expected.succ
    assert actual.index == expected.index
    assert actual.reduced == expected.reduced
    assert actual.edge_syms == expected.edge_syms
    assert actual.root_sym is expected.root_sym


# ---------------------------------------------------------------------------
# Pooled exploration: parity and routing
# ---------------------------------------------------------------------------
class TestPooledParity:
    """Acceptance: pooled explorations are byte-identical to serial ones."""

    @pytest.mark.parametrize(
        "name,m,n,model",
        [
            ("fsync_phi2_l2_chir_k2", 4, 4, "FSYNC"),
            ("fsync_phi2_l2_chir_k2", 4, 4, "SSYNC"),
            ("async_phi2_l3_chir_k2", 3, 4, "ASYNC"),
        ],
    )
    @pytest.mark.parametrize("symmetry_reduction", [False, True])
    def test_sharded_route_matches_serial(self, name, m, n, model, symmetry_reduction):
        algorithm = get(name)
        grid = Grid(m, n)
        serial = _serial(algorithm, grid, model, symmetry_reduction=symmetry_reduction)
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            pooled = pool.explore(
                algorithm, grid, model, symmetry_reduction=symmetry_reduction
            )
        _assert_same_exploration(pooled, serial)

    def test_serial_route_matches_serial_without_spawning(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        serial = _serial(algorithm, grid, "FSYNC")
        with ExplorationPool(workers=2) as pool:  # default threshold: 3x3 routes serial
            pooled = pool.explore(algorithm, grid, "FSYNC")
            assert not pool.started  # no worker processes were ever spawned
        _assert_same_exploration(pooled, serial)

    def test_budget_trip_context_identical_on_the_sharded_route(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(8, 8)
        with pytest.raises(StateSpaceLimitExceeded) as serial_info:
            _serial(algorithm, grid, "SSYNC", max_states=100)
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            with pytest.raises(StateSpaceLimitExceeded) as pooled_info:
                pool.explore(algorithm, grid, "SSYNC", max_states=100)
        serial, pooled = serial_info.value, pooled_info.value
        assert str(pooled) == str(serial)
        assert pooled.algorithm == serial.algorithm
        assert pooled.model == serial.model
        assert pooled.max_states == serial.max_states
        assert pooled.states_explored == serial.states_explored
        assert pooled.frontier_size == serial.frontier_size

    def test_budget_trip_context_identical_on_the_serial_route(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(8, 8)
        with pytest.raises(StateSpaceLimitExceeded) as serial_info:
            _serial(algorithm, grid, "SSYNC", max_states=100)
        with ExplorationPool(workers=2, serial_threshold=10**12) as pool:
            with pytest.raises(StateSpaceLimitExceeded) as pooled_info:
                pool.explore(algorithm, grid, "SSYNC", max_states=100)
            assert not pool.started
        assert str(pooled_info.value) == str(serial_info.value)

    def test_checking_entry_points_accept_pool(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial_graph = explore_state_space(algorithm, grid, model="SSYNC")
        serial_check = check_terminating_exploration(algorithm, grid, model="SSYNC")
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            assert explore_state_space(algorithm, grid, model="SSYNC", pool=pool) == serial_graph
            assert enumerate_reachable(algorithm, grid, model="SSYNC", pool=pool) == len(serial_graph)
            pooled_check = check_terminating_exploration(algorithm, grid, model="SSYNC", pool=pool)
        assert pooled_check == serial_check  # CheckResult equality ignores matcher_stats
        assert pooled_check.matcher_stats is not None

    def test_unregistered_algorithm_routes_serial_on_the_pool_cache(self):
        adhoc = _adhoc_algorithm()
        grid = Grid(1, 3)
        serial = _serial(adhoc, grid, "FSYNC", max_states=500)
        with ExplorationPool(workers=4, serial_threshold=0) as pool:
            pooled = pool.explore(adhoc, grid, "FSYNC", max_states=500)
            assert not pool.started  # cannot cross the process boundary
            assert pool.cache.stats_for(adhoc).lookups > 0  # ran on the pool's cache
        _assert_same_exploration(pooled, serial)

    def test_explicit_workers_clamped_to_pool_capacity(self):
        """A one-worker pool routes serial — on its cache — even if the
        caller asks for more shards than the pool has workers."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        with ExplorationPool(workers=1) as pool:
            result = explore_sharded(algorithm, grid, "FSYNC", workers=4, pool=pool)
            assert not pool.started
            assert pool.cache.stats_for(algorithm).lookups > 0
        _assert_same_exploration(result, _serial(algorithm, grid, "FSYNC"))

    def test_closed_pool_refuses_work(self):
        pool = ExplorationPool(workers=2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.explore(get("fsync_phi2_l2_chir_k2"), Grid(3, 3), "FSYNC")
        pool.close()  # idempotent


class TestPoolCachePersistence:
    """Acceptance: caches survive across explorations on one pool."""

    def test_cross_exploration_reuse_on_the_sharded_route(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            first = pool.explore(algorithm, grid, "FSYNC")
            second = pool.explore(algorithm, grid, "FSYNC")
        _assert_same_exploration(second, first)
        assert first.matcher_stats["misses"] > 0  # cold workers evaluated guards
        # The same workers serve the second exploration, so its lookups hit
        # the patterns memoized during the first one.
        assert second.matcher_stats["hits"] > 0
        assert second.matcher_stats["misses"] < first.matcher_stats["misses"]

    def test_cross_exploration_reuse_on_the_serial_route(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        with ExplorationPool(workers=2) as pool:  # 3x3 routes serial
            first = pool.explore(algorithm, grid, "FSYNC")
            second = pool.explore(algorithm, grid, "FSYNC")
        assert first.matcher_stats["misses"] > 0
        # The coordinator cache persists deterministically: the re-run pays
        # zero guard evaluations.
        assert second.matcher_stats["misses"] == 0
        assert second.matcher_stats["hit_rate"] == 1.0

    def test_cache_reuse_spans_grid_sizes_and_models(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with ExplorationPool(workers=2) as pool:
            pool.explore(algorithm, Grid(3, 3), "FSYNC")
            pool.explore(algorithm, Grid(3, 4), "FSYNC")
            third = pool.explore(algorithm, Grid(4, 4), "SSYNC")
        # Patterns learned at other sizes (and under FSYNC) serve the new
        # size/model: the matcher keys are grid-size and model independent.
        assert third.matcher_stats["hits"] > 0


# ---------------------------------------------------------------------------
# Campaigns on the pool
# ---------------------------------------------------------------------------
class TestCampaignsOnThePool:
    def test_engine_on_pool_reports_identical_to_serial(self):
        algorithm = get("fsync_phi1_l2_chir_k3")
        serial = grid_sweep(algorithm)
        with ExplorationPool(workers=2) as pool:
            pooled = ParallelCampaignEngine(pool=pool).grid_sweep(algorithm)
        assert pooled.reports == serial.reports
        assert [str(r) for r in pooled.reports] == [str(r) for r in serial.reports]

    def test_engine_defaults_to_pool_worker_count(self):
        with ExplorationPool(workers=3) as pool:
            assert ParallelCampaignEngine(pool=pool).workers == 3

    def test_engine_workers_clamped_to_pool_capacity(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        with ExplorationPool(workers=1) as pool:
            engine = ParallelCampaignEngine(workers=4, pool=pool)
            report = engine.grid_sweep(algorithm, sizes=[(3, 3), (4, 4)])
            assert not pool.started  # ran in-process, on the pool's cache
            assert pool.cache.stats_for(algorithm).lookups > 0
        assert report.ok

    def test_grid_sweep_accepts_pool(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        sizes = [(3, 3), (3, 4), (4, 4)]
        serial = grid_sweep(algorithm, sizes=sizes)
        with ExplorationPool(workers=2) as pool:
            pooled = grid_sweep(algorithm, sizes=sizes, pool=pool)
        assert pooled.reports == serial.reports

    def test_serial_fallback_campaign_runs_on_the_pool_cache(self):
        """A one-worker pool still gives campaigns persistent cache reuse."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        sizes = [(3, 3), (4, 4)]
        with ExplorationPool(workers=1) as pool:
            first = grid_sweep(algorithm, sizes=sizes, pool=pool)
            assert pool.cache.stats_for(algorithm).lookups > 0
            second = grid_sweep(algorithm, sizes=sizes, pool=pool)
        assert second.reports == first.reports
        # The second campaign replays entirely from the coordinator cache.
        assert all(report.cache_misses == 0 for report in second.reports)
        assert sum(report.cache_hits for report in second.reports) > 0

    def test_pool_serves_campaigns_and_explorations_alike(self):
        """One pool, interleaved workloads: both run and stay consistent."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            exploration = pool.explore(algorithm, grid, "FSYNC")
            report = grid_sweep(algorithm, sizes=[(3, 3), (4, 4)], pool=pool)
            again = pool.explore(algorithm, grid, "FSYNC")
        assert report.ok
        _assert_same_exploration(again, exploration)


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------
class TestShardedFallbackCache:
    """explore_sharded's serial fallback must honour the caller's cache."""

    def test_fallback_runs_on_the_supplied_cache(self):
        adhoc = _adhoc_algorithm("adhoc_fallback_cache")
        grid = Grid(1, 3)
        cache = MatcherCache()
        warm = explore_sharded(adhoc, grid, "FSYNC", workers=4, max_states=500, cache=cache)
        # The unregistered algorithm fell back to the serial explorer — on
        # the supplied cache, not a cold ad-hoc matcher.
        assert cache.stats_for(adhoc).lookups > 0
        assert cache.entry_count() > 0
        _assert_same_exploration(warm, _serial(adhoc, grid, "FSYNC", max_states=500))
        # ...and a second fallback over the same cache starts warm.
        rerun = explore_sharded(adhoc, grid, "FSYNC", workers=4, max_states=500, cache=cache)
        assert rerun.matcher_stats["misses"] == 0
        _assert_same_exploration(rerun, warm)

    def test_workers_one_fallback_also_uses_the_cache(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        cache = MatcherCache()
        explore_sharded(algorithm, grid, "FSYNC", workers=1, cache=cache)
        warm = explore_sharded(algorithm, grid, "FSYNC", workers=1, cache=cache)
        assert warm.matcher_stats["misses"] == 0


class TestSeedNormalization:
    """A VerificationReport's seed must replay the run it describes."""

    @pytest.mark.parametrize("model", ["FSYNC", "SSYNC", "ASYNC"])
    def test_default_seed_is_recorded_and_replays(self, model):
        algorithm = get("async_phi2_l3_chir_k2" if model != "FSYNC" else "fsync_phi2_l2_chir_k2")
        tie_break = "error" if model == "FSYNC" else "first"
        report = verify_one(algorithm, 3, 4, model=model, seed=None, tie_break=tie_break)
        assert report.seed == 0  # the seed that actually drove the run
        replay = verify_one(algorithm, 3, 4, model=model, seed=report.seed, tie_break=tie_break)
        assert replay == report
        assert (replay.steps, replay.moves, replay.ok) == (report.steps, report.moves, report.ok)

    def test_explicit_seed_round_trips_through_the_report(self):
        algorithm = get("async_phi2_l3_chir_k2")
        report = verify_one(algorithm, 3, 4, model="SSYNC", seed=7, tie_break="first")
        assert report.seed == 7
        assert verify_one(algorithm, 3, 4, model="SSYNC", seed=report.seed, tie_break="first") == report

    def test_campaign_reports_replay_from_their_recorded_seed(self):
        algorithm = get("async_phi2_l3_chir_k2")
        sweep = grid_sweep(algorithm, sizes=[(3, 4)], model="SSYNC", seed=None, tie_break="first")
        for report in sweep.reports:
            assert report.seed is not None
            replay = verify_one(
                algorithm, report.m, report.n, model=report.model, seed=report.seed, tie_break="first"
            )
            assert replay == report


class TestStatsForIsLive:
    """MatcherCache.stats_for must hand back counters that keep counting."""

    def test_stats_requested_before_any_matcher_see_increments(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        cache = MatcherCache()
        stats = cache.stats_for(algorithm)  # no matcher exists yet
        assert stats.lookups == 0
        matcher = cache.matcher_for(algorithm, Grid(3, 3))
        assert matcher.stats is stats  # the same live object
        world = algorithm.initial_world(Grid(3, 3))
        matcher.matches(world.robots, world.robots[0].pos, world.robots[0].color)
        assert stats.lookups > 0  # increments were never lost

    def test_stats_for_is_stable_across_calls(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        cache = MatcherCache()
        assert cache.stats_for(algorithm) is cache.stats_for(algorithm)

    def test_distinct_algorithms_keep_distinct_counters(self):
        cache = MatcherCache()
        first = cache.stats_for(get("fsync_phi2_l2_chir_k2"))
        second = cache.stats_for(get("fsync_phi1_l2_chir_k3"))
        assert first is not second


class TestDefaultWorkers:
    def test_respects_scheduling_affinity_where_available(self):
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1)
        )
        assert default_workers() == expected
        assert default_workers() >= 1

    def test_campaign_engine_default_matches(self):
        assert ParallelCampaignEngine().workers == default_workers()

    def test_exploration_pool_default_matches(self):
        pool = ExplorationPool()
        assert pool.workers == default_workers()
        pool.close()


class TestEstimateStates:
    def test_monotone_in_grid_area(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        small = estimate_states(algorithm, Grid(3, 3), "FSYNC")
        large = estimate_states(algorithm, Grid(8, 8), "FSYNC")
        assert small < large

    def test_richer_models_estimate_higher(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        fsync = estimate_states(algorithm, grid, "FSYNC")
        ssync = estimate_states(algorithm, grid, "SSYNC")
        async_ = estimate_states(algorithm, grid, "ASYNC")
        assert fsync < ssync < async_
