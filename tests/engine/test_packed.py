"""Parity tests for the packed successor kernel (:mod:`repro.engine.packed`).

The packed kernel is a performance path, never a semantics path: every test
here pins some route through it — serial wave BFS, quotiented object loop,
sharded workers, pooled routing, backend shards, campaign tasks — against
the authoritative object kernel and requires the results to be identical
field by field (``matcher_stats`` and ``profile`` excepted, which are
observability and legitimately route/kernel-dependent).
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.grid import Grid
from repro.engine import (
    AlgorithmTransitionSystem,
    AsyncRobotState,
    CampaignTask,
    ExplorationPool,
    SerialBackend,
    execute_tasks,
    exhaustive_check_tasks,
    explore,
    explore_sharded,
    initial_state,
    reduction_parity_suite,
)
from repro.engine import packed as packed_module
from repro.engine.packed import (
    HAS_NUMPY,
    PackedTransitionSystem,
    build_transition_system,
    normalize_kernel,
)
from repro.engine.pool import expand_shard
from repro.engine.profile import PROFILE_ENV
from repro.engine.reduction import ReductionPipeline

#: Exploration fields that must be identical across kernels.  Excludes
#: ``matcher_stats`` (the packed kernel compiles tables through the matcher
#: once and then never consults it, so its counters legitimately differ)
#: and ``profile`` (opt-in timing).
PARITY_FIELDS = (
    "model",
    "reduced",
    "states",
    "index",
    "succ",
    "edge_syms",
    "root",
    "root_sym",
    "reduction",
    "reduction_stats",
)

SPECS = ("none", "por", "grid", "grid+color+por")


def assert_explorations_equal(reference, candidate):
    for field in PARITY_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), field


def _object_exploration(algorithm, grid, model, **kwargs):
    return explore(AlgorithmTransitionSystem(algorithm, grid, model), **kwargs)


# ---------------------------------------------------------------------------
# Kernel spec handling
# ---------------------------------------------------------------------------
class TestKernelSpec:
    def test_normalize(self):
        assert normalize_kernel(None) == "object"
        assert normalize_kernel("object") == "object"
        assert normalize_kernel("packed") == "packed"
        assert normalize_kernel("auto") == "packed"
        assert normalize_kernel(" Packed ") == "packed"

    @pytest.mark.parametrize("bad", ["fast", "", 3, "objects"])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError, match="kernel"):
            normalize_kernel(bad)

    def test_build_transition_system(self):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        assert isinstance(
            build_transition_system(algorithm, grid, "FSYNC", "object"),
            AlgorithmTransitionSystem,
        )
        assert isinstance(
            build_transition_system(algorithm, grid, "FSYNC", "packed"),
            PackedTransitionSystem,
        )

    def test_explore_converts_both_directions(self):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        reference = _object_exploration(algorithm, grid, "FSYNC")
        packed_ts = PackedTransitionSystem(algorithm, grid, "FSYNC")
        # packed ts + kernel="object" runs the object loop on an object ts.
        assert_explorations_equal(reference, explore(packed_ts, kernel="object"))
        # object ts + kernel="packed" runs the wave BFS.
        object_ts = AlgorithmTransitionSystem(algorithm, grid, "FSYNC")
        assert_explorations_equal(reference, explore(object_ts, kernel="packed"))


# ---------------------------------------------------------------------------
# The headline guarantee: byte-identical explorations on the whole suite
# ---------------------------------------------------------------------------
class TestSerialParity:
    @pytest.mark.parametrize("name,m,n,model", reduction_parity_suite())
    def test_suite_parity_all_specs(self, name, m, n, model):
        """Every suite case, every reduction spec, both kernels — identical."""
        algorithm = get(name)
        grid = Grid(m, n)
        ts = PackedTransitionSystem(algorithm, grid, model)
        for spec in SPECS:
            reference = _object_exploration(algorithm, grid, model, reduction=spec)
            candidate = explore(ts, reduction=spec)
            assert_explorations_equal(reference, candidate)

    def test_warm_rerun_identical(self):
        """Memoized re-exploration (the pool/daemon regime) changes nothing."""
        algorithm = get("async_phi2_l2_nochir_k4")
        grid = Grid(4, 4)
        ts = PackedTransitionSystem(algorithm, grid, "ASYNC")
        for spec in ("none", "por"):
            reference = _object_exploration(algorithm, grid, "ASYNC", reduction=spec)
            cold = explore(ts, reduction=spec)
            warm = explore(ts, reduction=spec)
            assert_explorations_equal(reference, cold)
            assert_explorations_equal(reference, warm)

    def test_object_successors_through_packed_tables(self):
        """The TransitionSystem protocol itself is kernel-independent."""
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        object_ts = AlgorithmTransitionSystem(algorithm, grid, "ASYNC")
        packed_ts = PackedTransitionSystem(algorithm, grid, "ASYNC")
        state = initial_state(algorithm, grid)
        seen = [state]
        for _ in range(4):  # a few BFS levels of spot checks
            next_level = []
            for current in seen[:8]:
                expected = object_ts.successors(current)
                assert packed_ts.successors(current) == expected
                next_level.extend(expected)
            if not next_level:
                break
            seen = next_level

    def test_explore_packed_rejects_quotients(self):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        ts = PackedTransitionSystem(algorithm, grid, "FSYNC")
        pipeline = ReductionPipeline(algorithm, grid, "FSYNC", spec="grid")
        with pytest.raises(ValueError, match="quotient"):
            ts.explore_packed(pipeline)


class TestBudgetTripParity:
    @pytest.mark.parametrize("spec", ["none", "por"])
    def test_limit_message_and_context_identical(self, spec):
        algorithm = get("async_phi2_l2_nochir_k4")
        grid = Grid(4, 4)
        with pytest.raises(StateSpaceLimitExceeded) as object_trip:
            _object_exploration(algorithm, grid, "ASYNC", reduction=spec, max_states=40)
        with pytest.raises(StateSpaceLimitExceeded) as packed_trip:
            explore(
                PackedTransitionSystem(algorithm, grid, "ASYNC"),
                reduction=spec,
                max_states=40,
            )
        assert str(packed_trip.value) == str(object_trip.value)
        for attr in ("algorithm", "model", "max_states", "states_explored", "frontier_size"):
            assert getattr(packed_trip.value, attr) == getattr(object_trip.value, attr)


# ---------------------------------------------------------------------------
# Kernel selection across the parallel routes (the ExploreKey plumbing)
# ---------------------------------------------------------------------------
class TestRouteParity:
    CASE = ("async_phi2_l2_nochir_k4", 4, 4, "ASYNC")

    def _reference(self, reduction="none"):
        name, m, n, model = self.CASE
        return _object_exploration(get(name), Grid(m, n), model, reduction=reduction)

    def test_serial_fallback_kernel(self):
        name, m, n, model = self.CASE
        candidate = explore_sharded(get(name), Grid(m, n), model, workers=1, kernel="packed")
        assert_explorations_equal(self._reference(), candidate)

    @pytest.mark.parametrize("reduction", ["none", "grid+color+por"])
    def test_sharded_workers_rebuild_packed_systems(self, reduction):
        name, m, n, model = self.CASE
        candidate = explore_sharded(
            get(name), Grid(m, n), model, workers=2, reduction=reduction, kernel="packed"
        )
        assert_explorations_equal(self._reference(reduction), candidate)

    def test_pooled_kernel_both_routes(self):
        name, m, n, model = self.CASE
        reference = self._reference()
        # serial_threshold=0 forces the sharded route, a huge threshold the
        # serial one — both must agree with the object run.
        with ExplorationPool(workers=2, serial_threshold=0) as pool:
            assert_explorations_equal(
                reference, pool.explore(get(name), Grid(m, n), model, kernel="packed")
            )
        with ExplorationPool(workers=2, serial_threshold=10**9) as pool:
            assert_explorations_equal(
                reference, pool.explore(get(name), Grid(m, n), model, kernel="packed")
            )
            assert not pool.started  # routed serially: no workers spawned

    def test_backend_shards_carry_kernel(self):
        name, m, n, model = self.CASE
        with SerialBackend() as backend:
            candidate = explore_sharded(
                get(name), Grid(m, n), model, backend=backend, kernel="packed"
            )
        assert_explorations_equal(self._reference(), candidate)

    def test_legacy_five_slot_key_still_expands(self):
        """Pre-kernel coordinators ship 5-tuples; workers default to object."""
        name, m, n, model = self.CASE
        algorithm = get(name)
        grid = Grid(m, n)
        state = initial_state(algorithm, grid)
        legacy = expand_shard(((name, m, n, model, "none"), [state]))
        current = expand_shard(((name, m, n, model, "none", "packed"), [state]))
        assert [[rep for rep, _ in row] for row in legacy[0]] == [
            [rep for rep, _ in row] for row in current[0]
        ]

    def test_packed_serial_threshold_scaling(self):
        from repro.engine.pool import PACKED_SERIAL_FACTOR, estimate_states

        name, m, n, model = self.CASE
        algorithm = get(name)
        estimate = estimate_states(algorithm, Grid(m, n), model)
        assert PACKED_SERIAL_FACTOR > 1
        # A threshold just below the estimate shards the object kernel but
        # keeps the (PACKED_SERIAL_FACTOR x faster) packed kernel serial.
        with ExplorationPool(workers=2, serial_threshold=estimate) as pool:
            pool.explore(algorithm, Grid(m, n), model, kernel="packed")
            assert not pool.started
            pool.explore(algorithm, Grid(m, n), model, kernel="object")
            assert pool.started


# ---------------------------------------------------------------------------
# Checking and campaign entry points
# ---------------------------------------------------------------------------
class TestCheckingParity:
    def test_check_verdict_kernel_independent(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        grid = Grid(4, 4)
        reference = check_terminating_exploration(algorithm, grid, "ASYNC", reduction="none")
        candidate = check_terminating_exploration(
            algorithm, grid, "ASYNC", reduction="none", kernel="packed"
        )
        assert candidate == reference  # CheckResult equality skips the counters
        assert candidate.ok

    def test_campaign_tasks_carry_kernel(self):
        algorithm = get("async_phi2_l2_nochir_k4")
        tasks = exhaustive_check_tasks(
            algorithm, sizes=[(4, 4)], model="ASYNC", reduction="none", kernel="packed"
        )
        assert tasks and all(task.kernel == "packed" for task in tasks)
        reference = execute_tasks(
            algorithm,
            exhaustive_check_tasks(algorithm, sizes=[(4, 4)], model="ASYNC", reduction="none"),
        )
        candidate = execute_tasks(algorithm, tasks)
        assert candidate == reference
        assert all(report.ok for report in candidate)

    def test_campaign_task_pickles_with_kernel(self):
        task = CampaignTask(
            algorithm="async_phi2_l2_nochir_k4", m=4, n=4, model="ASYNC",
            kind="check", reduction="none", kernel="packed",
        )
        assert pickle.loads(pickle.dumps(task)) == task
        assert CampaignTask(algorithm="x", m=3, n=3).kernel == "object"


# ---------------------------------------------------------------------------
# NumPy frontier-at-a-time signatures
# ---------------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not available")
class TestNumpyWavePath:
    def test_wave_signatures_match_scalar(self, monkeypatch):
        monkeypatch.setattr(packed_module, "_WAVE_NUMPY_MIN", 1)
        algorithm = get("fsync_phi2_l1_nochir_k4")
        grid = Grid(5, 5)
        reference = explore(
            PackedTransitionSystem(algorithm, grid, "SSYNC", use_numpy=False)
        )
        candidate = explore(
            PackedTransitionSystem(algorithm, grid, "SSYNC", use_numpy=True)
        )
        assert_explorations_equal(reference, candidate)

    def test_numpy_disabled_flag_is_honoured(self):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        ts = PackedTransitionSystem(algorithm, Grid(4, 4), "FSYNC", use_numpy=False)
        assert ts.space._use_numpy is False


# ---------------------------------------------------------------------------
# Profiling hook
# ---------------------------------------------------------------------------
class TestProfileHook:
    PROFILE_KEYS = {"kernel", "match_s", "canonicalise_s", "dedup_s", "inflate_s", "store_s", "total_s"}

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        assert _object_exploration(algorithm, grid, "FSYNC").profile is None
        assert explore(PackedTransitionSystem(algorithm, grid, "FSYNC")).profile is None

    def test_reports_phase_split_for_both_kernels(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        object_profile = _object_exploration(algorithm, grid, "FSYNC").profile
        packed_profile = explore(PackedTransitionSystem(algorithm, grid, "FSYNC")).profile
        for profile, kernel in ((object_profile, "object"), (packed_profile, "packed")):
            assert profile is not None and set(profile) == self.PROFILE_KEYS
            assert profile["kernel"] == kernel
            assert profile["total_s"] >= 0.0
        # The packed kernel inflates at the boundary; the object kernel never does.
        assert object_profile["inflate_s"] == 0.0

    def test_profile_excluded_from_equality(self, monkeypatch):
        algorithm = get("fsync_phi1_l2_nochir_k5")
        grid = Grid(4, 4)
        monkeypatch.setenv(PROFILE_ENV, "1")
        profiled = _object_exploration(algorithm, grid, "FSYNC")
        monkeypatch.delenv(PROFILE_ENV)
        plain = _object_exploration(algorithm, grid, "FSYNC")
        assert profiled == plain


# ---------------------------------------------------------------------------
# AsyncRobotState sort-key/hash caching (satellite)
# ---------------------------------------------------------------------------
class TestAsyncRobotStateCaching:
    def test_key_and_hash_are_cached(self):
        record = AsyncRobotState(pos=(1, 2), color="B")
        assert record.key() is record.key()
        assert hash(record) == hash(record)
        assert record._hash == hash(record)

    def test_still_frozen(self):
        from dataclasses import FrozenInstanceError

        record = AsyncRobotState(pos=(1, 2), color="B")
        with pytest.raises(FrozenInstanceError):
            record.pos = (0, 0)
        with pytest.raises(FrozenInstanceError):
            del record.color

    def test_pickle_drops_caches(self):
        record = AsyncRobotState(
            pos=(1, 2), color="B", phase="computed", pending_color="W", pending_move=(0, 1)
        )
        record.key(), hash(record)  # populate both caches
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert not hasattr(clone, "_key") and not hasattr(clone, "_hash")
        assert clone.key() == record.key()
        assert hash(clone) == hash(record)

    def test_equality_semantics_preserved(self):
        a = AsyncRobotState(pos=(1, 2), color="B")
        b = AsyncRobotState(pos=(1, 2), color="B")
        c = AsyncRobotState(pos=(1, 2), color="W")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a.__eq__(object()) is NotImplemented
