"""Engine-test fixtures: process-global cache isolation.

Several engine tests execute the worker-side functions
(:func:`repro.engine.campaign.run_task`,
:func:`repro.engine.pool.expand_shard`) directly in the pytest process —
the serial backend runs them in-process by design, and the wire-protocol
tests feed their real outputs through the framing layer.  That warms this
process's persistent :func:`repro.engine.pool.process_cache`, which
fork-started pool workers then inherit — harmless for results (memoization
never changes them) but fatal for tests asserting *cold-start* cache
counters.  Reset the process-global cache state around every engine test
so cache-counter assertions stay order-independent.
"""

from __future__ import annotations

import pytest

import repro.engine.pool as pool_module


@pytest.fixture(autouse=True)
def reset_process_cache():
    """Keep each test's view of the process-persistent caches pristine."""
    saved_cache = pool_module._PROCESS_CACHE
    saved_systems = dict(pool_module._SYSTEMS)
    pool_module._PROCESS_CACHE = None
    pool_module._SYSTEMS.clear()
    try:
        yield
    finally:
        pool_module._PROCESS_CACHE = saved_cache
        pool_module._SYSTEMS.clear()
        pool_module._SYSTEMS.update(saved_systems)
