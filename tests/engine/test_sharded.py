"""Tests for the sharded explorer and the persistent matcher caches."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.checking import (
    check_terminating_exploration,
    enumerate_reachable,
    explore_state_space,
)
from repro.core import Algorithm, G, Grid, Synchrony, W, occ
from repro.core.errors import StateSpaceLimitExceeded
from repro.core.rules import Guard, Rule
from repro.engine import (
    AlgorithmTransitionSystem,
    MatcherCache,
    explore,
    explore_sharded,
)


def _serial(algorithm, grid, model, **kwargs):
    return explore(AlgorithmTransitionSystem(algorithm, grid, model), **kwargs)


class TestShardedSerialParity:
    """Acceptance: workers=N reproduces the serial exploration exactly."""

    @pytest.mark.parametrize(
        "name,m,n,model",
        [
            ("fsync_phi2_l2_chir_k2", 4, 4, "FSYNC"),
            ("fsync_phi2_l2_chir_k2", 4, 4, "SSYNC"),
            ("async_phi2_l3_chir_k2", 3, 4, "ASYNC"),
        ],
    )
    @pytest.mark.parametrize("symmetry_reduction", [False, True])
    def test_exploration_identical_across_models(self, name, m, n, model, symmetry_reduction):
        algorithm = get(name)
        grid = Grid(m, n)
        serial = _serial(algorithm, grid, model, symmetry_reduction=symmetry_reduction)
        sharded = explore_sharded(
            algorithm, grid, model, workers=2, symmetry_reduction=symmetry_reduction
        )
        assert sharded.num_states == serial.num_states
        assert sharded.states == serial.states  # same states in the same interned order
        assert sharded.succ == serial.succ
        assert sharded.index == serial.index
        assert sharded.reduced == serial.reduced
        if serial.edge_syms is None:
            assert sharded.edge_syms is None
        else:
            # Edge labels resolve to the very same cached symmetry instances.
            assert sharded.edge_syms == serial.edge_syms
        assert sharded.root_sym is serial.root_sym

    def test_check_verdicts_identical_with_workers(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        serial = check_terminating_exploration(algorithm, grid, model="ASYNC")
        sharded = check_terminating_exploration(algorithm, grid, model="ASYNC", workers=2)
        assert sharded.ok == serial.ok
        assert sharded.terminates == serial.terminates
        assert sharded.explores == serial.explores
        assert sharded.states_explored == serial.states_explored
        assert sharded.terminal_states == serial.terminal_states
        assert sharded.counterexample == serial.counterexample

    def test_public_wrappers_accept_workers(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 4)
        serial_graph = explore_state_space(algorithm, grid, model="SSYNC")
        sharded_graph = explore_state_space(algorithm, grid, model="SSYNC", workers=2)
        assert sharded_graph == serial_graph
        assert enumerate_reachable(algorithm, grid, model="SSYNC", workers=2) == len(serial_graph)

    def test_sharded_matcher_stats_are_aggregated(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        exploration = explore_sharded(algorithm, Grid(4, 4), "SSYNC", workers=2)
        stats = exploration.matcher_stats
        assert stats is not None
        assert stats["misses"] > 0  # workers really evaluated guards
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_unregistered_algorithm_falls_back_to_serial(self):
        rules = (
            Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
            Rule("R2", W, Guard.build(1, W=occ(G)), W, None),
        )
        adhoc = Algorithm(
            name="adhoc_sharded_test",
            synchrony=Synchrony.FSYNC,
            phi=1,
            colors=(G, W),
            chirality=True,
            k=2,
            rules=rules,
            initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W)],
            min_m=1,
            min_n=3,
        )
        grid = Grid(1, 3)
        serial = _serial(adhoc, grid, "FSYNC", max_states=500)
        sharded = explore_sharded(adhoc, grid, "FSYNC", workers=4, max_states=500)
        assert sharded.states == serial.states
        assert sharded.succ == serial.succ

    def test_workers_one_is_the_serial_path(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        serial = _serial(algorithm, grid, "FSYNC")
        sharded = explore_sharded(algorithm, grid, "FSYNC", workers=1)
        assert sharded.states == serial.states
        assert sharded.succ == serial.succ


class TestShardedBudgetParity:
    """The state budget trips with the serial explorer's exact context."""

    @pytest.mark.parametrize(
        "name,m,n,model,budget",
        [
            ("async_phi2_l2_nochir_k4", 4, 6, "ASYNC", 10),
            ("fsync_phi2_l2_nochir_k3", 8, 8, "SSYNC", 100),
        ],
    )
    def test_limit_error_context_identical(self, name, m, n, model, budget):
        algorithm = get(name)
        grid = Grid(m, n)
        with pytest.raises(StateSpaceLimitExceeded) as serial_info:
            _serial(algorithm, grid, model, max_states=budget)
        with pytest.raises(StateSpaceLimitExceeded) as sharded_info:
            explore_sharded(algorithm, grid, model, workers=3, max_states=budget)
        serial, sharded = serial_info.value, sharded_info.value
        assert str(sharded) == str(serial)
        assert sharded.algorithm == serial.algorithm == algorithm.name
        assert sharded.model == serial.model == model
        assert sharded.max_states == serial.max_states == budget
        assert sharded.states_explored == serial.states_explored
        assert sharded.frontier_size == serial.frontier_size

    def test_limit_error_context_identical_with_symmetry(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")
        grid = Grid(8, 8)
        with pytest.raises(StateSpaceLimitExceeded) as serial_info:
            _serial(algorithm, grid, "SSYNC", symmetry_reduction=True, max_states=80)
        with pytest.raises(StateSpaceLimitExceeded) as sharded_info:
            explore_sharded(
                algorithm, grid, "SSYNC", workers=2, symmetry_reduction=True, max_states=80
            )
        assert str(sharded_info.value) == str(serial_info.value)
        assert "symmetry reduction on" in str(sharded_info.value)


class TestMatcherCache:
    def test_cross_size_reuse_has_nonzero_hits(self):
        """Acceptance: a cache warmed at other sizes hits at a new size."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        cache = MatcherCache()
        for size in [(3, 3), (3, 4), (3, 5)]:
            check_terminating_exploration(algorithm, Grid(*size), model="FSYNC", cache=cache)
        before = cache.stats.snapshot()
        result = check_terminating_exploration(algorithm, Grid(4, 4), model="FSYNC", cache=cache)
        delta = cache.stats.delta_since(before)
        assert delta.hits > 0
        assert result.matcher_stats is not None
        assert result.matcher_stats["hits"] == delta.hits

    def test_cache_does_not_change_verdicts(self):
        algorithm = get("async_phi2_l3_chir_k2")
        grid = Grid(3, 4)
        plain = check_terminating_exploration(algorithm, grid, model="ASYNC")
        cache = MatcherCache()
        cached = check_terminating_exploration(algorithm, grid, model="ASYNC", cache=cache)
        recheck = check_terminating_exploration(algorithm, grid, model="ASYNC", cache=cache)
        for result in (cached, recheck):
            assert result.ok == plain.ok
            assert result.states_explored == plain.states_explored
            assert result.terminal_states == plain.terminal_states
        # The second run over the same cache is (almost) all hits.
        assert recheck.matcher_stats["hit_rate"] > 0.9

    def test_tables_are_shared_per_algorithm_identity(self):
        first = get("fsync_phi2_l2_chir_k2")
        second = get("fsync_phi1_l2_chir_k3")
        cache = MatcherCache()
        matcher_a = cache.matcher_for(first, Grid(3, 3))
        matcher_b = cache.matcher_for(first, Grid(5, 5))
        matcher_c = cache.matcher_for(second, Grid(3, 3))
        assert matcher_a._matches is matcher_b._matches  # same algorithm: shared tables
        assert matcher_a._matches is not matcher_c._matches  # different algorithm: isolated
        assert matcher_a.stats is matcher_b.stats

    def test_summary_surfaces_cache_stats(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        cache = MatcherCache()
        check_terminating_exploration(algorithm, Grid(3, 3), model="FSYNC", cache=cache)
        result = check_terminating_exploration(algorithm, Grid(3, 3), model="FSYNC", cache=cache)
        assert "match cache" in result.summary()


class TestSlotsAndBatching:
    def test_hot_state_classes_have_no_dict(self):
        from repro.engine.states import AsyncRobotState, initial_state

        algorithm = get("fsync_phi2_l2_chir_k2")
        state = initial_state(algorithm, Grid(3, 3))
        assert not hasattr(state, "__dict__")
        assert not hasattr(state.robots[0], "__dict__")
        record = AsyncRobotState(pos=(0, 0), color="W")
        with pytest.raises((AttributeError, TypeError)):
            object.__setattr__(record, "not_a_slot", 1)

    def test_scheduler_state_hash_cache_not_pickled(self):
        import pickle

        from repro.engine.states import initial_state

        algorithm = get("fsync_phi2_l2_chir_k2")
        state = initial_state(algorithm, Grid(3, 3))
        hash(state)  # populate the cache
        clone = pickle.loads(pickle.dumps(state))
        with pytest.raises(AttributeError):
            object.__getattribute__(clone, "_hash")
        assert clone == state and hash(clone) == hash(state)

    def test_batched_matches_agree_with_per_robot_matches(self):
        from repro.engine import LocalMatcher

        for name in ("fsync_phi2_l2_chir_k2", "fsync_phi1_l2_nochir_k5"):
            algorithm = get(name)
            grid = Grid(4, 5)
            matcher = LocalMatcher(algorithm, grid)
            reference = LocalMatcher(algorithm, grid)
            world = algorithm.initial_world(grid)
            batch = matcher.batched_matches(world.robots)
            assert [robot.rid for robot, _ in batch] == [robot.rid for robot in world.robots]
            for robot, matches in batch:
                assert matches == reference.matches(world.robots, robot.pos, robot.color)

    def test_walk_results_unchanged_by_shared_matcher(self):
        from repro.core import run_fsync
        from repro.engine import MatcherCache

        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(4, 5)
        plain = run_fsync(algorithm, grid)
        cache = MatcherCache()
        warm = run_fsync(algorithm, grid, matcher=cache.matcher_for(algorithm, grid))
        rewarm = run_fsync(algorithm, grid, matcher=cache.matcher_for(algorithm, grid))
        for result in (warm, rewarm):
            assert result.final == plain.final
            assert result.events == plain.events
            assert result.steps == plain.steps


class TestCampaignCacheObservability:
    def test_serial_campaign_reports_carry_cache_counters(self):
        from repro.verification import grid_sweep

        report = grid_sweep(get("fsync_phi2_l2_chir_k2"), sizes=[(3, 3), (3, 4), (4, 4)])
        assert report.ok
        assert all(r.cache_hits is not None for r in report.reports)
        # Later sizes reuse patterns learned at earlier ones.
        assert sum(r.cache_hits for r in report.reports[1:]) > 0
        assert "match cache" in report.summary()

    def test_cache_counters_do_not_break_parallel_parity(self):
        from repro.engine.campaign import VerificationReport

        first = VerificationReport("a", "FSYNC", 3, 3, None, True, 1, 1, "ok", cache_hits=10, cache_misses=1)
        second = VerificationReport("a", "FSYNC", 3, 3, None, True, 1, 1, "ok", cache_hits=99, cache_misses=5)
        assert first == second  # observability fields are compare=False
        assert str(first) == str(second)
