"""Tests for the TCP distributed backend: wire protocol, retries, parity.

Everything here runs under a hang guard: a stuck socket or a deadlocked
coordinator fails the test instead of hanging the suite (pytest-timeout
enforces the same bound in CI; the SIGALRM fixture below covers
environments without the plugin).
"""

from __future__ import annotations

import pickle
import signal
import socket
import struct
import threading
import time

import pytest

from repro.algorithms import get
from repro.checking import check_terminating_exploration
from repro.core import Grid
from repro.engine import (
    AlgorithmTransitionSystem,
    CampaignTask,
    DistributedBackend,
    ReductionPipeline,
    TieBreak,
    WorkerDaemon,
    execute_tasks,
    exhaustive_check_tasks,
    explore,
    explore_sharded,
    grid_sweep_tasks,
    initial_state,
    recv_message,
    run_task,
    send_message,
    stress_test_tasks,
)
from repro.engine.campaign import check_one
from repro.engine.distributed import MAX_FRAME_BYTES, _parse_endpoint, main
from repro.engine.pool import expand_shard
from repro.verification import exhaustive_sweep

#: Generous wall-clock bound for any single test in this module.
HANG_GUARD_SECONDS = 120


@pytest.fixture(autouse=True)
def hang_guard():
    """Fail (don't hang) if a test wedges on a socket or condition wait."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _trip(signum, frame):
        raise TimeoutError(f"test exceeded the {HANG_GUARD_SECONDS}s hang guard")

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.alarm(HANG_GUARD_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _roundtrip(obj):
    """Ship ``obj`` through one length-prefixed frame and back."""
    left, right = socket.socketpair()
    try:
        send_message(left, obj)
        return recv_message(right)
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# Wire protocol: every payload kind survives the frame round-trip
# ---------------------------------------------------------------------------
class TestWireProtocol:
    def test_campaign_task_round_trip(self):
        walk = CampaignTask(
            algorithm="fsync_phi2_l2_chir_k2", m=3, n=4, model="SSYNC", seed=7, tie_break=TieBreak.FIRST
        )
        check = CampaignTask(
            algorithm="async_phi2_l2_nochir_k4",
            m=4,
            n=4,
            model="ASYNC",
            kind="check",
            reduction="grid+color+por",
            max_states=50_000,
        )
        assert _roundtrip(walk) == walk
        assert _roundtrip(check) == check

    def test_verification_report_round_trip(self):
        report = check_one(get("fsync_phi2_l2_chir_k2"), 3, 3, model="FSYNC", reduction="grid")
        shipped = _roundtrip(("result", 0, report))
        assert shipped == ("result", 0, report)
        # compare=False fields still travel (equality just ignores them).
        assert shipped[2].cache_hits == report.cache_hits
        assert shipped[2].reduction_stats == report.reduction_stats

    def test_shard_payload_round_trip(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        key = (algorithm.name, 3, 3, "FSYNC", "grid")
        states = [initial_state(algorithm, grid)]
        assert _roundtrip((key, states)) == (key, states)

    def test_shard_result_rows_and_stat_deltas_round_trip(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        key = (algorithm.name, 3, 3, "FSYNC", "grid")
        result = expand_shard((key, [initial_state(algorithm, grid)]))
        rows, stats_delta, reduction_delta = result
        shipped_rows, shipped_stats, shipped_reduction = _roundtrip(result)
        assert shipped_rows == rows  # states and witness tokens, in order
        assert shipped_stats == stats_delta
        assert shipped_reduction == reduction_delta

    def test_witness_tokens_resolve_after_the_wire(self):
        """Shipped witness tokens resolve to the serial explorer's witnesses."""
        algorithm = get("fsync_phi2_l2_chir_k2")
        grid = Grid(3, 3)
        pipeline = ReductionPipeline(algorithm, grid, "FSYNC", spec="grid")
        key = (algorithm.name, 3, 3, "FSYNC", "grid")
        rows, _, _ = _roundtrip(expand_shard((key, [initial_state(algorithm, grid)])))
        serial = explore(
            AlgorithmTransitionSystem(algorithm, grid, "FSYNC"), reduction="grid"
        )
        resolved = [pipeline.witness_from_token(token) for _, token in rows[0]]
        assert resolved == serial.edge_syms[0]

    def test_worker_hello_and_error_frames_round_trip(self):
        hello = ("hello", {"pid": 1234, "host": "worker-1"})
        error = ("error", 3, "Traceback (most recent call last): ...")
        assert _roundtrip(hello) == hello
        assert _roundtrip(error) == error

    def test_oversized_frame_header_is_refused(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!Q", MAX_FRAME_BYTES + 1))
            with pytest.raises(ConnectionError, match="exceeds"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            body = pickle.dumps(("result", 0, None))
            left.sendall(struct.pack("!Q", len(body)) + body[: len(body) // 2])
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_message(right)
        finally:
            right.close()


# ---------------------------------------------------------------------------
# Coordinator scheduling: determinism, retries, lifecycle
# ---------------------------------------------------------------------------
def _crashing_worker(host, port, crashed):
    """A protocol-speaking worker that dies with its first item in flight."""
    sock = socket.create_connection((host, port))
    try:
        send_message(sock, ("hello", {"pid": -1, "host": "crasher"}))
        recv_message(sock)  # pull one work frame ...
    finally:
        sock.close()  # ... and die without replying
        crashed.set()


class TestCoordinator:
    def test_results_come_back_in_task_order(self, algorithm1):
        tasks = stress_test_tasks(algorithm1, sizes=[(3, 3)], models=("SSYNC",), seeds=range(6))
        serial = execute_tasks(algorithm1, tasks)
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=2).start():
                first = backend.run_tasks(tasks)
                second = backend.run_tasks(tasks)  # a second job on the same workers
        assert first == serial
        assert second == serial

    def test_worker_crash_mid_task_is_retried_elsewhere(self, algorithm1):
        tasks = grid_sweep_tasks(algorithm1, sizes=[(3, 3), (3, 4), (4, 3)])
        serial = execute_tasks(algorithm1, tasks)
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            crashed = threading.Event()
            crasher = threading.Thread(
                target=_crashing_worker, args=(backend.host, backend.port, crashed), daemon=True
            )
            crasher.start()
            # The crasher is the only worker: it must receive the first item.
            outcome = {}
            runner = threading.Thread(
                target=lambda: outcome.update(reports=backend.run_tasks(tasks)), daemon=True
            )
            runner.start()
            assert crashed.wait(timeout=30), "crashing worker never received an item"
            crasher.join(timeout=30)
            # Now a healthy daemon joins and must pick up the requeued item.
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                runner.join(timeout=60)
                assert not runner.is_alive(), "job did not recover from the crashed worker"
        assert outcome["reports"] == serial
        assert backend.retries_total >= 1

    def test_parallelism_honours_min_workers_before_daemons_connect(self):
        # The sharded explorer freezes its shard count from `parallelism`
        # before the first map_shards call waits for registrations; a
        # pre-connection floor of 1 would silently serialize every wave.
        with DistributedBackend(min_workers=4, start_timeout=0.2) as backend:
            assert backend.parallelism == 4

    def test_garbage_reply_retires_the_connection_and_retries(self, algorithm1):
        tasks = grid_sweep_tasks(algorithm1, sizes=[(3, 3)])
        serial = execute_tasks(algorithm1, tasks)
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            confused = threading.Event()

            def garbage_worker():
                sock = socket.create_connection((backend.host, backend.port))
                try:
                    send_message(sock, ("hello", {"pid": -2, "host": "garbage"}))
                    recv_message(sock)  # take an item ...
                    body = b"\x80\x04not a pickle"
                    sock.sendall(struct.pack("!Q", len(body)) + body)  # ... reply noise
                    confused.set()
                    time.sleep(30)  # stay connected: the coordinator must not wait on us
                except OSError:
                    pass
                finally:
                    sock.close()

            threading.Thread(target=garbage_worker, daemon=True).start()
            outcome = {}
            runner = threading.Thread(
                target=lambda: outcome.update(reports=backend.run_tasks(tasks)), daemon=True
            )
            runner.start()
            assert confused.wait(timeout=30)
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                runner.join(timeout=60)
                assert not runner.is_alive(), "job hung on an undecodable reply"
        assert outcome["reports"] == serial
        assert backend.retries_total >= 1

    def test_worker_exception_propagates_to_the_caller(self):
        bad = CampaignTask(algorithm="no_such_algorithm", m=3, n=3)
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                with pytest.raises(RuntimeError, match="no_such_algorithm"):
                    backend.run_tasks([bad])

    def test_empty_job_needs_no_workers(self):
        with DistributedBackend(min_workers=1, start_timeout=0.2) as backend:
            assert backend.run_tasks([]) == []

    def test_missing_workers_time_out(self, algorithm1):
        with DistributedBackend(min_workers=1, start_timeout=0.2) as backend:
            with pytest.raises(TimeoutError, match="worker daemon"):
                backend.run_tasks(grid_sweep_tasks(algorithm1, sizes=[(3, 3)]))

    def test_close_is_idempotent_and_final(self, algorithm1):
        backend = DistributedBackend()
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.run_tasks(grid_sweep_tasks(algorithm1, sizes=[(3, 3)]))
        with pytest.raises(RuntimeError, match="closed"):
            with backend:
                pass

    def test_daemons_shut_down_when_the_backend_closes(self):
        backend = DistributedBackend(min_workers=1, start_timeout=30)
        daemon = WorkerDaemon(backend.host, backend.port, workers=2).start()
        deadline = time.monotonic() + 30
        while backend.parallelism < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        backend.close()
        daemon.join(timeout=30)
        assert daemon.alive == 0

    def test_daemon_spawn_failure_terminates_started_workers(self, monkeypatch):
        import multiprocessing

        real = multiprocessing.get_context()
        started = []

        class FailingContext:
            def Process(self, *args, **kwargs):
                if started:
                    raise RuntimeError("simulated daemon spawn failure")
                process = real.Process(*args, **kwargs)
                started.append(process)
                return process

        monkeypatch.setattr(multiprocessing, "get_context", lambda *a, **k: FailingContext())
        with DistributedBackend() as backend:
            daemon = WorkerDaemon(backend.host, backend.port, workers=2)
            with pytest.raises(RuntimeError, match="simulated daemon spawn failure"):
                daemon.start()
        assert daemon.processes == []
        assert [p for p in started if p.is_alive()] == []


# ---------------------------------------------------------------------------
# Acceptance: distributed sweeps are identical to the serial engine
# ---------------------------------------------------------------------------
class TestDistributedParity:
    SIZES = [(2, 3), (3, 3), (3, 4), (4, 3), (4, 4)]

    def test_exhaustive_sweep_matches_serial_engine(self, algorithm1):
        serial = exhaustive_sweep(algorithm1, sizes=self.SIZES, reduction="grid")
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=2).start():
                distributed = exhaustive_sweep(
                    algorithm1, sizes=self.SIZES, reduction="grid", backend=backend
                )
        assert distributed.reports == serial.reports

    def test_exhaustive_sweep_survives_killing_a_worker_mid_sweep(self, algorithm1):
        tasks = exhaustive_check_tasks(algorithm1, sizes=self.SIZES, reduction="grid")
        tasks = tasks * 3  # enough work that the kill lands mid-sweep
        serial = execute_tasks(algorithm1, tasks)
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            victim = WorkerDaemon(backend.host, backend.port, workers=1).start()
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                outcome = {}
                runner = threading.Thread(
                    target=lambda: outcome.update(reports=backend.run_tasks(tasks)),
                    daemon=True,
                )
                runner.start()
                time.sleep(0.3)  # let the sweep get going before the kill
                victim.terminate()
                runner.join(timeout=90)
                assert not runner.is_alive(), "sweep did not finish after the worker kill"
        assert outcome["reports"] == serial

    def test_sharded_exploration_through_tcp_matches_serial(self, algorithm1):
        grid = Grid(4, 4)
        serial = explore(
            AlgorithmTransitionSystem(algorithm1, grid, "SSYNC"), reduction="grid"
        )
        with DistributedBackend(min_workers=2, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=2).start():
                shipped = explore_sharded(algorithm1, grid, "SSYNC", reduction="grid", backend=backend)
        assert shipped.states == serial.states
        assert shipped.succ == serial.succ
        assert shipped.index == serial.index
        assert shipped.edge_syms == serial.edge_syms
        assert shipped.reduction_stats == serial.reduction_stats

    def test_check_through_tcp_matches_serial(self, algorithm1):
        grid = Grid(4, 4)
        serial = check_terminating_exploration(algorithm1, grid, model="FSYNC", reduction="grid+color")
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            with WorkerDaemon(backend.host, backend.port, workers=1).start():
                shipped = check_terminating_exploration(
                    algorithm1, grid, model="FSYNC", reduction="grid+color", backend=backend
                )
        assert shipped == serial
        assert shipped.reduction_stats == serial.reduction_stats


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_parse_endpoint(self):
        assert _parse_endpoint("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert _parse_endpoint("worker-3.cluster.local:7421") == ("worker-3.cluster.local", 7421)
        with pytest.raises(Exception):
            _parse_endpoint("no-port")

    def test_worker_subcommand_requires_connect(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_worker_subcommand_serves_a_real_job(self, algorithm1):
        tasks = grid_sweep_tasks(algorithm1, sizes=[(3, 3), (3, 4)])
        with DistributedBackend(min_workers=1, start_timeout=30) as backend:
            cli = threading.Thread(
                target=main,
                args=(["worker", "--connect", backend.address, "--workers", "1"],),
                daemon=True,
            )
            cli.start()
            reports = backend.run_tasks(tasks)
            backend.close()
            cli.join(timeout=30)
        assert reports == [run_task(task) for task in tasks]
        assert not cli.is_alive()
