"""Reproduction of the paper's execution figures (Figs. 3-21).

Each test runs the relevant algorithm, extracts the configurations the
figure draws and checks that they occur, in order, in the recorded trace.
Coordinates follow the paper (rows from North, columns from West); the
turning figures are checked at the first border encounter (row ``r = 0``),
which is the instance the paper draws.
"""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import Configuration, Grid, SequentialAsync, run_async, run_fsync
from repro.viz.figures import find_subtrace


def cfg(pairs):
    return Configuration.from_pairs(pairs)


def fsync_trace(name, m, n):
    return run_fsync(get(name), Grid(m, n), tie_break="first").trace


def async_trace(name, m, n):
    return run_async(get(name), Grid(m, n), scheduler=SequentialAsync(), tie_break="first").trace


class TestFigure3Route:
    @pytest.mark.parametrize("name", ["fsync_phi2_l2_chir_k2", "async_phi2_l3_chir_k2"])
    def test_first_visits_follow_the_snake(self, name):
        from repro.analysis import follows_boustrophedon_route

        result = run_fsync(get(name), Grid(5, 6), tie_break="first")
        assert follows_boustrophedon_route(result)


class TestAlgorithm1Figures:
    """Figures 4 and 5 (turning west / turning east of Algorithm 1)."""

    def test_figure4_turning_west(self):
        n = 6
        trace = fsync_trace("fsync_phi2_l2_chir_k2", 4, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("W",))]),   # Fig. 4(a)
            cfg([((1, n - 2), ("G",)), ((0, n - 1), ("W",))]),   # Fig. 4(b)
            cfg([((1, n - 3), ("G",)), ((1, n - 1), ("W",))]),   # Fig. 4(c)
        ]
        assert find_subtrace(trace, frames) is not None

    def test_figure5_turning_east(self):
        n = 6
        trace = fsync_trace("fsync_phi2_l2_chir_k2", 4, n)
        frames = [
            cfg([((1, 0), ("G",)), ((1, 2), ("W",))]),           # Fig. 5(a)
            cfg([((2, 0), ("G",)), ((1, 1), ("W",))]),           # Fig. 5(b)
            cfg([((2, 0), ("G",)), ((2, 1), ("W",))]),           # Fig. 5(c)
        ]
        assert find_subtrace(trace, frames) is not None


class TestAlgorithm3Figures:
    """Figures 7 and 8 (Algorithm 3, phi = 1, two robots)."""

    def test_figure7_turning_west(self):
        n = 5
        trace = fsync_trace("fsync_phi1_l3_chir_k2", 4, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("W",))]),   # Fig. 7(a)
            cfg([((0, n - 1), ("G",)), ((1, n - 1), ("G",))]),   # Fig. 7(b)
            cfg([((1, n - 2), ("B",)), ((1, n - 1), ("G",))]),   # Fig. 7(c)
        ]
        assert find_subtrace(trace, frames) is not None

    def test_figure8_turning_east(self):
        n = 5
        trace = fsync_trace("fsync_phi1_l3_chir_k2", 4, n)
        frames = [
            cfg([((1, 0), ("B",)), ((1, 1), ("G",))]),           # Fig. 8(a)
            cfg([((2, 0), ("B",)), ((1, 0), ("G",))]),           # Fig. 8(b)
            cfg([((2, 0), ("G",)), ((2, 1), ("W",))]),           # Fig. 8(c)
        ]
        assert find_subtrace(trace, frames) is not None


class TestAlgorithm5Figures:
    """Figures 10 and 11 (Algorithm 5, three robots, two colors)."""

    def test_figure10_turning_west(self):
        n = 5
        trace = fsync_trace("fsync_phi1_l2_chir_k3", 4, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("G",)), ((1, n - 2), ("W",))]),  # (a)
            cfg([((0, n - 1), ("G",)), ((1, n - 1), ("G", "W"))]),                      # (b)
            cfg([((1, n - 2), ("W",)), ((1, n - 1), ("W",)), ((2, n - 1), ("G",))]),   # (c)
        ]
        assert find_subtrace(trace, frames) is not None

    def test_figure11_turning_east(self):
        n = 5
        trace = fsync_trace("fsync_phi1_l2_chir_k3", 4, n)
        frames = [
            cfg([((1, 0), ("W",)), ((1, 1), ("W",)), ((2, 1), ("G",))]),  # (a)
            cfg([((1, 0), ("W",)), ((2, 0), ("G", "W"))]),                 # (b)
            cfg([((2, 0), ("G",)), ((2, 1), ("G",)), ((3, 0), ("W",))]),  # (c)
        ]
        assert find_subtrace(trace, frames) is not None


class TestAlgorithm2Figure6:
    """Figure 6 (Algorithm 2): border pivot of the chirality-free triple."""

    def test_figure6_turning_west_outcome(self):
        n = 6
        trace = fsync_trace("fsync_phi2_l2_nochir_k3", 4, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("G",)), ((1, n - 2), ("W",))]),  # (a)
            cfg([((0, n - 1), ("G",)), ((1, n - 2), ("G",)), ((2, n - 2), ("W",))]),  # (b)
            cfg([((1, n - 2), ("G",)), ((1, n - 1), ("G",)), ((2, n - 1), ("W",))]),  # (c)
        ]
        assert find_subtrace(trace, frames) is not None


class TestAlgorithm6Figures:
    """Figures 12 and 13 (Algorithm 6, ASYNC) including the recoloring intermediate."""

    def test_figure12_turning_west_with_intermediate(self):
        n = 5
        trace = async_trace("async_phi2_l3_chir_k2", 4, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("W",))]),   # (a)
            cfg([((0, n - 2), ("G",)), ((1, n - 1), ("W",))]),   # (b)
            cfg([((0, n - 2), ("B",)), ((1, n - 1), ("W",))]),   # (c) color changed, not moved
            cfg([((1, n - 2), ("B",)), ((1, n - 1), ("W",))]),   # (d)
        ]
        assert find_subtrace(trace, frames) is not None

    def test_figure13_turning_east_with_idle_recoloring(self):
        n = 5
        trace = async_trace("async_phi2_l3_chir_k2", 4, n)
        frames = [
            cfg([((1, 0), ("B",)), ((1, 1), ("W",))]),           # (a)
            cfg([((2, 0), ("B",)), ((1, 1), ("W",))]),           # (b)
            cfg([((2, 0), ("G",)), ((1, 1), ("W",))]),           # (c) idle recoloring
            cfg([((2, 0), ("G",)), ((2, 1), ("W",))]),           # (d)
        ]
        assert find_subtrace(trace, frames) is not None


class TestAlgorithm10Figures:
    """Figures 19 and 20 (Algorithm 10): the stack-and-hop gait and its border pivot."""

    def test_figure19_proceeding_east_stacks(self):
        trace = async_trace("async_phi1_l3_chir_k3", 3, 5)
        frames = [
            cfg([((0, 0), ("G",)), ((0, 1), ("W",)), ((0, 2), ("W",))]),  # (a)
            cfg([((0, 1), ("G", "W")), ((0, 2), ("W",))]),                  # (b)
            cfg([((0, 1), ("G",)), ((0, 2), ("G", "W"))]),                  # (d)
            cfg([((0, 1), ("G",)), ((0, 2), ("W",)), ((0, 3), ("W",))]),   # (f)
        ]
        assert find_subtrace(trace, frames) is not None

    def test_figure20_turning_west_reaches_mirror_form(self):
        n = 4
        trace = async_trace("async_phi1_l3_chir_k3", 3, n)
        frames = [
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("G", "W"))]),          # (a)
            cfg([((0, n - 2), ("G",)), ((0, n - 1), ("W",)), ((1, n - 1), ("B",))]),  # (c)
            cfg([((0, n - 1), ("W",)), ((1, n - 1), ("B", "G"))]),          # (e)
            cfg([((1, n - 2), ("B",)), ((1, n - 1), ("B", "W"))]),          # (h)
        ]
        assert find_subtrace(trace, frames) is not None
