"""The spec module: one spelling of every store key, validated wire forms.

The load-bearing property is key *identity*: the key a payload parses to
must equal the key the library route builds internally — otherwise the
HTTP cache and the library cache silently fork.  These tests pin that by
round-tripping specs through both routes and comparing the stored bytes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms import registry
from repro.core.grid import Grid
from repro.checking.model_checker import check_terminating_exploration
from repro.engine.campaign import (
    CampaignTask,
    exhaustive_check_tasks,
    grid_sweep_tasks,
    task_store_key,
)
from repro.engine.journal import content_key
from repro.engine.sharded import explore_sharded
from repro.engine.spec import (
    CheckSpec,
    SpecError,
    campaign_id,
    canonical_json,
    check_store_key,
    check_task_key,
    explore_store_key,
    parse_campaign,
    parse_check_spec,
    parse_task,
    result_payload,
    walk_task_key,
)
from repro.engine.store import VerdictStore

ALGORITHM = "fsync_phi2_l2_chir_k2"


def spec_payload(**overrides):
    payload = {"algorithm": ALGORITHM, "m": 3, "n": 3, "model": "FSYNC", "reduction": "grid+color"}
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------------
# Key identity across routes
# ---------------------------------------------------------------------------
class TestKeyIdentity:
    def test_parsed_check_key_is_a_store_hit_for_the_library_route(self):
        """A check cached via the library is warm for the parsed HTTP key."""
        store = VerdictStore()
        algorithm = registry.get(ALGORITHM)
        check_terminating_exploration(
            algorithm, Grid(3, 3), model="FSYNC", reduction="grid+color", store=store
        )
        assert store.stats["misses"] >= 1
        spec = parse_check_spec(spec_payload())
        assert store.get(spec.check_key()) is not None
        assert store.stats["hits"] == 1

    def test_parsed_explore_key_is_a_store_hit_for_the_library_route(self):
        store = VerdictStore()
        algorithm = registry.get(ALGORITHM)
        explore_sharded(algorithm, Grid(3, 3), "FSYNC", reduction="grid+color", store=store)
        spec = parse_check_spec(spec_payload())
        assert store.get(spec.explore_key()) is not None

    def test_key_builders_normalize_spec_spellings(self):
        """Spelling variants of one spec address one key."""
        canonical = check_store_key(ALGORITHM, 3, 3, "FSYNC", "grid+color")
        assert check_store_key(ALGORITHM, 3, 3, "FSYNC", "color+grid") == canonical
        assert check_store_key(ALGORITHM, 3, 3, "FSYNC", "grid+color", "object") == canonical
        assert parse_check_spec(spec_payload(reduction="color+grid")).check_key() == canonical

    def test_task_store_key_delegates_to_the_shared_builders(self):
        walk = CampaignTask(algorithm=ALGORITHM, m=3, n=3, model="SSYNC", seed=7, tie_break="first")
        assert task_store_key(walk) == walk_task_key(
            ALGORITHM, 3, 3, "SSYNC", 7, "first", walk.max_steps
        )
        check = CampaignTask(
            algorithm=ALGORITHM, m=3, n=3, model="FSYNC", kind="check", reduction="grid"
        )
        assert task_store_key(check) == check_task_key(
            ALGORITHM, 3, 3, "FSYNC", "grid", check.max_states, check.kernel
        )

    def test_walk_key_normalizes_default_seed_like_execution(self):
        explicit = walk_task_key(ALGORITHM, 3, 3, "SSYNC", 0, "error", None)
        assert walk_task_key(ALGORITHM, 3, 3, "SSYNC", None, "error", None) == explicit

    def test_max_states_is_part_of_the_key(self):
        roomy = check_store_key(ALGORITHM, 3, 3, "FSYNC", "grid", max_states=200_000)
        tight = check_store_key(ALGORITHM, 3, 3, "FSYNC", "grid", max_states=50)
        assert roomy != tight


# ---------------------------------------------------------------------------
# Validation: SpecError names the offending field
# ---------------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        ("payload", "field"),
        [
            ("not an object", "body"),
            ({}, "algorithm"),
            ({"algorithm": "no_such_algorithm", "m": 3, "n": 3}, "algorithm"),
            (spec_payload(m="three"), "m"),
            (spec_payload(m=True), "m"),
            (spec_payload(m=0), "m"),
            (spec_payload(n=None), "n"),
            (spec_payload(m=1, n=1), "grid"),
            (spec_payload(model="WARP"), "model"),
            (spec_payload(reduction="grid+magic"), "reduction"),
            (spec_payload(kernel="simd"), "kernel"),
            (spec_payload(max_states=0), "max_states"),
            (spec_payload(max_states=2.5), "max_states"),
        ],
    )
    def test_bad_check_specs_name_their_field(self, payload, field):
        with pytest.raises(SpecError) as excinfo:
            parse_check_spec(payload)
        assert excinfo.value.field == field
        assert excinfo.value.as_dict()["field"] == field

    def test_valid_spec_is_normalized(self):
        spec = parse_check_spec(spec_payload(model="fsync", reduction="color+grid"))
        assert spec.model == "FSYNC"
        assert spec.reduction == "grid+color"
        assert spec.max_states == 200_000
        assert isinstance(spec, CheckSpec)

    @pytest.mark.parametrize(
        ("payload", "field"),
        [
            ({"algorithm": ALGORITHM, "campaign": "moon_shot"}, "campaign"),
            ({"algorithm": ALGORITHM, "sizes": [[3]]}, "sizes"),
            ({"algorithm": ALGORITHM, "sizes": "3x3"}, "sizes"),
            ({"algorithm": ALGORITHM, "campaign": "stress_test", "models": ["WARP"]}, "models"),
            ({"algorithm": ALGORITHM, "campaign": "stress_test", "seeds": ["a"]}, "seeds"),
            ({"algorithm": ALGORITHM, "tasks": []}, "tasks"),
            ({"algorithm": ALGORITHM, "tasks": ["walk"]}, "tasks"),
            ({"algorithm": ALGORITHM, "tasks": [{"m": 3, "n": 3, "kind": "fly"}]}, "kind"),
            (
                {"algorithm": ALGORITHM, "tasks": [{"m": 3, "n": 3, "tie_break": "coin"}]},
                "tie_break",
            ),
        ],
    )
    def test_bad_campaigns_name_their_field(self, payload, field):
        with pytest.raises(SpecError) as excinfo:
            parse_campaign(payload)
        assert excinfo.value.field == field

    def test_task_entries_inherit_the_campaign_algorithm(self):
        task = parse_task({"m": 3, "n": 3, "kind": "check"}, ALGORITHM)
        assert task.algorithm == ALGORITHM
        assert task.kind == "check"


# ---------------------------------------------------------------------------
# Campaign resolution and ids
# ---------------------------------------------------------------------------
class TestCampaigns:
    def test_named_campaign_matches_the_library_builder(self):
        """An HTTP grid_sweep resolves to the library's own task list."""
        algorithm = registry.get(ALGORITHM)
        name, tasks = parse_campaign(
            {"algorithm": ALGORITHM, "campaign": "grid_sweep", "sizes": [[2, 3], [3, 3]]}
        )
        assert name == ALGORITHM
        assert tasks == grid_sweep_tasks(algorithm, sizes=[(2, 3), (3, 3)], model="FSYNC")

    def test_exhaustive_sweep_matches_the_library_builder(self):
        algorithm = registry.get(ALGORITHM)
        _, tasks = parse_campaign(
            {
                "algorithm": ALGORITHM,
                "campaign": "exhaustive_sweep",
                "sizes": [[3, 3]],
                "reduction": "grid+color",
            }
        )
        assert tasks == exhaustive_check_tasks(
            algorithm, sizes=[(3, 3)], model="FSYNC", reduction="grid+color"
        )

    def test_campaign_id_is_content_addressed(self):
        """Equal submissions (across processes/restarts) share one id."""
        _, tasks_a = parse_campaign({"algorithm": ALGORITHM, "sizes": [[2, 3], [3, 3]]})
        _, tasks_b = parse_campaign({"algorithm": ALGORITHM, "sizes": [[2, 3], [3, 3]]})
        assert campaign_id(ALGORITHM, tasks_a) == campaign_id(ALGORITHM, tasks_b)
        _, other = parse_campaign({"algorithm": ALGORITHM, "sizes": [[3, 3]]})
        assert campaign_id(ALGORITHM, other) != campaign_id(ALGORITHM, tasks_a)
        assert campaign_id(ALGORITHM, tasks_a) == content_key(
            ("campaign", ALGORITHM, tuple(tasks_a))
        )[:16]


# ---------------------------------------------------------------------------
# Wire forms
# ---------------------------------------------------------------------------
class TestWireForms:
    def test_result_payload_splits_fields_by_compare(self):
        result = check_terminating_exploration(
            registry.get(ALGORITHM), Grid(3, 3), model="FSYNC", reduction="grid"
        )
        payload = result_payload(result)
        compare_fields = {f.name for f in dataclasses.fields(result) if f.compare}
        assert set(payload["verdict"]) == compare_fields | {"ok"}
        assert set(payload["observability"]) == {
            f.name for f in dataclasses.fields(result) if not f.compare
        }
        assert payload["verdict"]["ok"] is True

    def test_verdict_half_is_route_independent(self):
        """Cold vs store-warm results serialize to identical verdict bytes."""
        store = VerdictStore()
        algorithm = registry.get(ALGORITHM)
        kwargs = dict(model="FSYNC", reduction="grid+color")
        cold = check_terminating_exploration(algorithm, Grid(3, 3), store=store, **kwargs)
        warm = check_terminating_exploration(algorithm, Grid(3, 3), store=store, **kwargs)
        assert warm.store_stats["outcome"] == "hit"
        assert canonical_json(result_payload(cold)["verdict"]) == canonical_json(
            result_payload(warm)["verdict"]
        )

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'
