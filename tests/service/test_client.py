"""The CLI client: scripting exit codes, payload building, streaming.

``main(argv)`` is exercised in-process against a live threaded server —
real HTTP requests, capturable stdout, no subprocess overhead.  (The
service smoke run, ``make serve-smoke``, covers the same client as a real
subprocess.)
"""

from __future__ import annotations

import json

import pytest

from repro.service.client import (
    EXIT_OK,
    EXIT_REJECTED,
    EXIT_UNAVAILABLE,
    EXIT_VERDICT_FAILED,
    ClientError,
    ServiceClient,
    main,
)

ALGORITHM = "fsync_phi2_l2_chir_k2"


def run_cli(harness, *argv: str) -> int:
    return main(["--url", harness.url, *argv])


def check_args(*extra: str):
    return ["check", "--algorithm", ALGORITHM, "--grid", "3x3", "--reduction", "grid+color", *extra]


class TestExitCodes:
    def test_passing_check_exits_zero_with_the_verdict_on_stdout(self, harness, capsys):
        assert run_cli(harness, *check_args()) == EXIT_OK
        body = json.loads(capsys.readouterr().out)
        assert body["verdict"]["ok"] is True
        assert body["verdict"]["algorithm"] == ALGORITHM

    def test_failing_verdict_exits_one(self, harness, capsys):
        # The FSYNC algorithm does not terminate under SSYNC: a *successful*
        # request whose verdict is negative — exit 1, not an error code.
        assert run_cli(harness, *check_args("--model", "SSYNC")) == EXIT_VERDICT_FAILED
        assert json.loads(capsys.readouterr().out)["verdict"]["ok"] is False

    def test_rejected_spec_exits_two_and_names_the_field(self, harness, capsys):
        assert run_cli(harness, *check_args("--model", "WARP")) == EXIT_REJECTED
        assert "model" in capsys.readouterr().err

    def test_unreachable_service_exits_three(self, capsys):
        assert main(["--url", "http://127.0.0.1:1", "--retries", "0", "health"]) == EXIT_UNAVAILABLE
        assert "unreachable" in capsys.readouterr().err


class TestCampaignWorkflow:
    def test_submit_tail_await_round_trip(self, harness, capsys):
        submit = [
            "submit", "--algorithm", ALGORITHM,
            "--campaign", "grid_sweep", "--sizes", "2x3,3x3", "--id-only",
        ]
        assert run_cli(harness, *submit) == EXIT_OK
        run_id = capsys.readouterr().out.strip()
        assert len(run_id) == 16

        assert run_cli(harness, "tail", run_id) == EXIT_OK
        events = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [e["event"] for e in events].count("task") == 2
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True

        assert run_cli(harness, "await", run_id) == EXIT_OK
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done" and status["completed"] == 2

    def test_submit_accepts_a_raw_json_spec(self, harness, capsys):
        spec = json.dumps(
            {"algorithm": ALGORITHM, "campaign": "grid_sweep", "sizes": [[3, 3]]}
        )
        assert run_cli(harness, "submit", "--spec", spec) == EXIT_OK
        body = json.loads(capsys.readouterr().out)
        assert body["total"] == 1

    def test_submit_without_algorithm_or_spec_is_a_usage_error(self, harness, capsys):
        assert run_cli(harness, "submit") == EXIT_REJECTED
        assert "--algorithm" in capsys.readouterr().err

    def test_malformed_spec_json_is_a_usage_error(self, harness, capsys):
        assert run_cli(harness, "submit", "--spec", "{nope") == EXIT_REJECTED
        assert "valid JSON" in capsys.readouterr().err

    def test_await_unknown_campaign_exits_two(self, harness, capsys):
        assert run_cli(harness, "await", "feedfacefeedface") == EXIT_REJECTED


class TestUtilityCommands:
    def test_health_and_stats(self, harness, capsys):
        assert run_cli(harness, "health") == EXIT_OK
        assert json.loads(capsys.readouterr().out)["ok"] is True
        assert run_cli(harness, "stats") == EXIT_OK
        assert "store" in json.loads(capsys.readouterr().out)

    def test_explore_prints_the_summary(self, harness, capsys):
        argv = ["explore", "--algorithm", ALGORITHM, "--grid", "3x3", "--reduction", "grid+color"]
        assert run_cli(harness, *argv) == EXIT_OK
        assert json.loads(capsys.readouterr().out)["verdict"]["num_states"] > 0

    def test_bad_grid_spelling_is_an_argparse_error(self, harness):
        with pytest.raises(SystemExit) as excinfo:
            run_cli(harness, "check", "--algorithm", ALGORITHM, "--grid", "wide")
        assert excinfo.value.code == 2


class TestServiceClientRetry:
    def test_429_is_retried_after_the_advertised_delay(self, harness_factory):
        limited = harness_factory(rate=2.0, burst=1)
        client = ServiceClient(limited.url, retries=3)
        client.stats()  # spends the single-token burst
        # The next call is rejected with Retry-After: 1, slept through, and
        # then succeeds — no ClientError surfaces.
        assert "store" in client.stats()
        assert limited.service.limiter.stats["rejected"] >= 1

    def test_retries_exhausted_surfaces_the_429(self, harness_factory):
        limited = harness_factory(rate=0.001, burst=1)
        client = ServiceClient(limited.url, retries=0)
        client.stats()
        with pytest.raises(ClientError) as excinfo:
            client.stats()
        assert excinfo.value.exit_code == EXIT_REJECTED
        assert "429" in str(excinfo.value)
