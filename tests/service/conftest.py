"""Service-test fixtures: an in-process HTTP server on a real socket.

The service tests exercise the real network boundary — actual loopback
sockets, actual ``urllib`` requests — but keep the service object
in-process so tests can inspect its store counters and monkeypatch engine
internals (the coalescing test gates :func:`_route_exploration`, which
only works when handler threads share this process's module state).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.store import VerdictStore
from repro.service import VerificationService, start_in_thread


class ServiceHarness:
    """One live server plus raw-HTTP helpers returning ``(status, body)``."""

    def __init__(self, service: VerificationService, server) -> None:
        self.service = service
        self.server = server
        self.url = server.url

    def request(self, path: str, payload=None, headers=None, timeout: float = 120.0):
        merged = {"Content-Type": "application/json"}
        merged.update(headers or {})
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, headers=merged, method="POST" if data else "GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.load(response), dict(response.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8")), dict(exc.headers)

    def post(self, path: str, payload, **kwargs):
        return self.request(path, payload, **kwargs)

    def get(self, path: str, **kwargs):
        return self.request(path, **kwargs)

    def get_raw(self, path: str, timeout: float = 120.0) -> str:
        with urllib.request.urlopen(self.url + path, timeout=timeout) as response:
            return response.read().decode("utf-8")


def make_harness(tmp_path=None, **service_kwargs) -> ServiceHarness:
    if "store" not in service_kwargs:
        service_kwargs["store"] = VerdictStore(tmp_path / "store") if tmp_path else VerdictStore()
    if tmp_path is not None and "journal_dir" not in service_kwargs:
        service_kwargs["journal_dir"] = tmp_path / "journals"
    store = service_kwargs.pop("store")
    service = VerificationService(store, **service_kwargs)
    server, _ = start_in_thread(service)
    return ServiceHarness(service, server)


@pytest.fixture
def harness_factory(tmp_path):
    """Build servers with custom service kwargs; all torn down at test end."""
    built = []

    def build(**service_kwargs) -> ServiceHarness:
        h = make_harness(tmp_path, **service_kwargs)
        built.append(h)
        return h

    try:
        yield build
    finally:
        for h in built:
            h.server.shutdown()
            h.service.close()


@pytest.fixture
def harness(harness_factory):
    """A served :class:`VerificationService` over a fresh store + journal."""
    return harness_factory()
