"""The HTTP service: parity with the library, limits, coalescing, resume.

The acceptance bar: a ``POST /v1/check`` verdict is byte-identical
(modulo the ``compare=False`` observability channels) to
``check_terminating_exploration`` on both the cold and warm paths; a
killed server restarted on the same journal resumes a resubmitted
campaign without recomputing its completed tasks.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.algorithms import registry
from repro.checking.model_checker import check_terminating_exploration
from repro.core.grid import Grid
from repro.engine.spec import canonical_json, result_payload
from repro.engine.store import VerdictStore

ALGORITHM = "fsync_phi2_l2_chir_k2"
SPEC = {"algorithm": ALGORITHM, "m": 3, "n": 3, "model": "FSYNC", "reduction": "grid+color"}


def library_verdict_json(**overrides) -> str:
    """The serial library route's verdict, canonically serialized."""
    params = dict(SPEC, **overrides)
    result = check_terminating_exploration(
        registry.get(params["algorithm"]),
        Grid(params["m"], params["n"]),
        model=params["model"],
        reduction=params["reduction"],
    )
    return canonical_json(result_payload(result)["verdict"])


# ---------------------------------------------------------------------------
# Single-shot endpoints
# ---------------------------------------------------------------------------
class TestCheck:
    def test_cold_and_warm_verdicts_match_the_library_byte_for_byte(self, harness):
        expected = library_verdict_json()
        code, cold, _ = harness.post("/v1/check", SPEC)
        assert code == 200
        assert cold["observability"]["store_stats"]["outcome"] == "miss"
        assert canonical_json(cold["verdict"]) == expected

        code, warm, _ = harness.post("/v1/check", SPEC)
        assert code == 200
        assert warm["observability"]["store_stats"]["outcome"] == "hit"
        assert canonical_json(warm["verdict"]) == expected
        assert harness.service.store.stats["hits"] >= 1

    def test_failing_verdict_travels_whole(self, harness):
        code, body, _ = harness.post("/v1/check", dict(SPEC, model="SSYNC"))
        assert code == 200
        assert body["verdict"]["ok"] is False
        assert body["verdict"]["counterexample"]
        assert canonical_json(body["verdict"]) == library_verdict_json(model="SSYNC")

    def test_response_echoes_the_normalized_spec(self, harness):
        code, body, _ = harness.post("/v1/check", dict(SPEC, model="fsync", reduction="color+grid"))
        assert code == 200
        assert body["spec"]["model"] == "FSYNC"
        assert body["spec"]["reduction"] == "grid+color"
        assert body["elapsed_s"] >= 0

    def test_http_check_warms_the_library_route_and_vice_versa(self, harness):
        """One store, one key: either route's verdict is warm for the other."""
        harness.post("/v1/check", SPEC)
        result = check_terminating_exploration(
            registry.get(ALGORITHM),
            Grid(3, 3),
            model="FSYNC",
            reduction="grid+color",
            store=harness.service.store,
        )
        assert result.store_stats["outcome"] == "hit"

    def test_budget_trip_is_a_422_naming_max_states(self, harness):
        code, body, _ = harness.post("/v1/check", dict(SPEC, max_states=2))
        assert code == 422
        assert body["error"]["field"] == "max_states"


class TestExplore:
    def test_explore_summarizes_and_caches(self, harness):
        code, cold, _ = harness.post("/v1/explore", SPEC)
        assert code == 200
        assert cold["verdict"]["num_states"] > 0
        assert cold["verdict"]["terminal_states"] >= 1
        code, warm, _ = harness.post("/v1/explore", SPEC)
        assert warm["observability"]["store_stats"]["outcome"] == "hit"
        assert warm["verdict"] == cold["verdict"]


class TestValidationAndErrors:
    @pytest.mark.parametrize(
        ("payload", "field"),
        [
            ({}, "algorithm"),
            (dict(SPEC, algorithm="nope"), "algorithm"),
            (dict(SPEC, model="WARP"), "model"),
            (dict(SPEC, m=0), "m"),
            (dict(SPEC, reduction="grid+magic"), "reduction"),
        ],
    )
    def test_bad_specs_are_400s_naming_the_field(self, harness, payload, field):
        code, body, _ = harness.post("/v1/check", payload)
        assert code == 400
        assert body["error"]["field"] == field

    def test_non_json_body_is_a_400(self, harness):
        request = urllib.request.Request(
            harness.url + "/v1/check", data=b"not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["field"] == "body"

    def test_unknown_endpoints_are_404s(self, harness):
        code, _, _ = harness.get("/v1/unknown")
        assert code == 404
        code, _, _ = harness.get("/v1/campaigns/ffffffffffffffff")
        assert code == 404


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------
class TestRateLimiting:
    @pytest.fixture
    def limited(self, harness_factory):
        return harness_factory(rate=0.001, burst=2)

    def test_burst_exhaustion_is_a_429_with_retry_after(self, limited):
        for _ in range(2):
            code, _, _ = limited.get("/v1/stats")
            assert code == 200
        code, body, headers = limited.get("/v1/stats")
        assert code == 429
        assert int(headers["Retry-After"]) >= 1
        assert "rate limit" in body["error"]["message"]
        assert limited.service.limiter.stats["rejected"] >= 1

    def test_clients_are_limited_independently(self, limited):
        for _ in range(2):
            assert limited.get("/v1/stats", headers={"X-Client-Id": "alice"})[0] == 200
        assert limited.get("/v1/stats", headers={"X-Client-Id": "alice"})[0] == 429
        assert limited.get("/v1/stats", headers={"X-Client-Id": "bob"})[0] == 200

    def test_healthz_is_never_limited(self, limited):
        for _ in range(5):
            assert limited.get("/healthz")[0] == 200


# ---------------------------------------------------------------------------
# Coalescing through HTTP
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_simultaneous_checks_for_one_spec_compute_once(self, harness, monkeypatch):
        """Two concurrent HTTP requests rendezvous in the store's singleflight."""
        from repro.engine import sharded as sharded_module

        routed = sharded_module._route_exploration
        started, release = threading.Event(), threading.Event()
        calls = []

        def gated_route(*args, **kwargs):
            calls.append(1)
            started.set()
            assert release.wait(timeout=60)
            return routed(*args, **kwargs)

        monkeypatch.setattr(sharded_module, "_route_exploration", gated_route)
        responses = {}

        def post(slot):
            responses[slot] = harness.post("/v1/check", SPEC)

        leader = threading.Thread(target=post, args=("leader",))
        leader.start()
        assert started.wait(timeout=60)
        follower = threading.Thread(target=post, args=("follower",))
        follower.start()
        store = harness.service.store
        for _ in range(60_000):
            if store.coalesced:
                break
            threading.Event().wait(0.001)
        assert store.stats["coalesced"] >= 1
        release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)
        assert len(calls) == 1  # exactly one exploration for two requests
        verdicts = {slot: canonical_json(body["verdict"]) for slot, (_, body, _) in responses.items()}
        assert verdicts["leader"] == verdicts["follower"]
        outcomes = {
            body["observability"]["store_stats"]["outcome"] for _, body, _ in responses.values()
        }
        assert outcomes == {"miss", "coalesced"}


# ---------------------------------------------------------------------------
# Campaigns over HTTP
# ---------------------------------------------------------------------------
CAMPAIGN = {
    "algorithm": ALGORITHM,
    "campaign": "grid_sweep",
    "sizes": [[2, 3], [3, 3]],
    "model": "FSYNC",
}


def await_campaign(harness, run_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, status, _ = harness.get(f"/v1/campaigns/{run_id}")
        assert code == 200
        if status["state"] != "running":
            return status
        time.sleep(0.02)
    raise AssertionError(f"campaign {run_id} still running after {timeout}s")


class TestCampaigns:
    def test_submit_run_stream_and_idempotent_resubmit(self, harness):
        code, submitted, _ = harness.post("/v1/campaigns", CAMPAIGN)
        assert code == 202
        run_id = submitted["id"]
        status = await_campaign(harness, run_id)
        assert status["state"] == "done"
        assert status["ok"] is True
        assert status["completed"] == status["total"] == 2

        raw = harness.get_raw(f"/v1/campaigns/{run_id}/events")
        events = [json.loads(line) for line in raw.splitlines() if line.strip()]
        kinds = [event["event"] for event in events]
        assert kinds.count("task") == 2 and kinds[-1] == "done"
        assert all(event["ok"] for event in events if event["event"] == "task")

        # Identical resubmission: same id, already-finished status, 200.
        code, again, _ = harness.post("/v1/campaigns", CAMPAIGN)
        assert code == 200
        assert again["id"] == run_id and again["state"] == "done"

    def test_event_stream_cursor_resumes_mid_stream(self, harness):
        _, submitted, _ = harness.post("/v1/campaigns", CAMPAIGN)
        await_campaign(harness, submitted["id"])
        raw = harness.get_raw(f"/v1/campaigns/{submitted['id']}/events?since=1")
        events = [json.loads(line) for line in raw.splitlines() if line.strip()]
        assert events[0]["seq"] == 1
        assert events[-1]["event"] == "done"

    def test_late_subscriber_to_finished_run_still_gets_done(self, harness):
        _, submitted, _ = harness.post("/v1/campaigns", CAMPAIGN)
        await_campaign(harness, submitted["id"])
        # Cursor beyond every recorded event: the stream must still close
        # with a terminal snapshot rather than hang.
        raw = harness.get_raw(f"/v1/campaigns/{submitted['id']}/events?since=999")
        events = [json.loads(line) for line in raw.splitlines() if line.strip()]
        assert events and events[-1]["event"] == "done"

    def test_explicit_task_list_campaign(self, harness):
        payload = {
            "algorithm": ALGORITHM,
            "tasks": [
                {"m": 3, "n": 3, "model": "FSYNC", "kind": "check", "reduction": "grid+color"},
                {"m": 2, "n": 3, "model": "SSYNC", "seed": 3, "tie_break": "first"},
            ],
        }
        _, submitted, _ = harness.post("/v1/campaigns", payload)
        status = await_campaign(harness, submitted["id"])
        assert status["state"] == "done" and status["completed"] == 2

    def test_stats_counts_requests_and_campaigns(self, harness):
        harness.post("/v1/check", SPEC)
        _, submitted, _ = harness.post("/v1/campaigns", CAMPAIGN)
        await_campaign(harness, submitted["id"])
        code, stats, _ = harness.get("/v1/stats")
        assert code == 200
        assert stats["service"]["requests"]["POST /v1/check"] == 1
        assert stats["service"]["campaigns"]["done"] == 1
        assert stats["store"]["misses"] >= 1
        assert stats["backend"]["kind"] == "serial"
        assert stats["rate_limiter"]["rate"] is None


# ---------------------------------------------------------------------------
# Kill -9 the server mid-campaign; restart on the same journal; resume.
# ---------------------------------------------------------------------------
SLOW_CAMPAIGN = {
    "algorithm": ALGORITHM,
    "campaign": "grid_sweep",
    "sizes": [[2, 3], [2, 4], [2, 5], [3, 3]],
    "model": "FSYNC",
}


def start_server(tmp_path: Path, *extra: str) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    port_file = tmp_path / f"port-{len(list(tmp_path.glob('port-*')))}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--host", "127.0.0.1", "--port", "0",
            "--journal", str(tmp_path / "journals"),
            "--port-file", str(port_file),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    proc.port_file = port_file  # type: ignore[attr-defined]
    return proc


def server_url(proc, timeout=60.0) -> str:
    deadline = time.monotonic() + timeout
    port_file = proc.port_file
    while time.monotonic() < deadline:
        assert proc.poll() is None, "server subprocess died during startup"
        if port_file.exists() and port_file.read_text().strip():
            return f"http://127.0.0.1:{port_file.read_text().strip()}"
        time.sleep(0.05)
    raise AssertionError("server did not publish its port in time")


def http_json(url, path, payload=None, timeout=60.0):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


class TestKillResume:
    def test_killed_server_resumes_campaign_from_its_journal(self, tmp_path):
        # Wave delay throttles the serial run to ~1 task per 0.4s so the
        # kill lands mid-campaign deterministically.
        first = start_server(tmp_path, "--wave-delay", "0.4")
        try:
            url = server_url(first)
            submitted = http_json(url, "/v1/campaigns", SLOW_CAMPAIGN)
            run_id = submitted["id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = http_json(url, f"/v1/campaigns/{run_id}")
                if 1 <= status["completed"] < status["total"]:
                    break
                assert status["state"] == "running", f"finished too fast: {status}"
                time.sleep(0.05)
            else:
                raise AssertionError("campaign never reached a partial state")
            completed_before_kill = status["completed"]
            os.kill(first.pid, signal.SIGKILL)
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()

        second = start_server(tmp_path)
        try:
            url = server_url(second)
            resubmitted = http_json(url, "/v1/campaigns", SLOW_CAMPAIGN)
            assert resubmitted["id"] == run_id  # content-addressed: same run
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status = http_json(url, f"/v1/campaigns/{run_id}")
                if status["state"] != "running":
                    break
                time.sleep(0.1)
            assert status["state"] == "done" and status["ok"] is True
            assert status["completed"] == status["total"] == 4
            # The journaled verdicts were replayed, not recomputed.
            assert status["resumed"] >= completed_before_kill >= 1
            with urllib.request.urlopen(
                url + f"/v1/campaigns/{run_id}/events", timeout=60
            ) as response:
                events = [json.loads(line) for line in response if line.strip()]
            resumed_events = [e for e in events if e["event"] == "task" and e["resumed"]]
            fresh_events = [e for e in events if e["event"] == "task" and not e["resumed"]]
            assert len(resumed_events) == status["resumed"]
            assert len(resumed_events) + len(fresh_events) == 4
            assert all(event["ok"] for event in resumed_events + fresh_events)
        finally:
            second.terminate()
            try:
                second.wait(timeout=15)
            except subprocess.TimeoutExpired:
                second.kill()
