"""Tests for the world container and the rule-matching engine."""

from __future__ import annotations

import pytest

from repro.core import (
    AlgorithmError,
    Algorithm,
    ConfigurationError,
    EMPTY,
    G,
    Grid,
    IllegalMoveError,
    Synchrony,
    W,
    World,
    occ,
)
from repro.core.rules import Guard, Rule


def tiny_algorithm(chirality=True):
    """A minimal legal algorithm used to exercise the engine."""
    rules = (
        Rule("R1", W, Guard.build(1, W=occ(G), E=EMPTY), W, "E"),
        Rule("R2", G, Guard.build(1, E=occ(W)), G, "E"),
    )
    return Algorithm(
        name="tiny",
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W),
        chirality=chirality,
        k=2,
        rules=rules,
        initial_placement=lambda m, n: [((0, 0), G), ((0, 1), W)],
        min_m=1,
        min_n=2,
    )


class TestWorld:
    def test_from_placement(self):
        world = World.from_placement(Grid(2, 3), [((0, 0), G), ((0, 1), W)])
        assert world.k == 2
        assert world.robot(0).color == G
        assert world.robots_at((0, 1))[0].color == W

    def test_placement_off_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            World.from_placement(Grid(2, 2), [((5, 5), G)])

    def test_move_and_set_color(self):
        world = World.from_placement(Grid(2, 3), [((0, 0), G)])
        world.move(0, (0, 1))
        world.set_color(0, W)
        assert world.robot(0).pos == (0, 1) and world.robot(0).color == W

    def test_illegal_move_raises(self):
        world = World.from_placement(Grid(2, 2), [((0, 0), G)])
        with pytest.raises(IllegalMoveError):
            world.move(0, (-1, 0))

    def test_clone_is_independent(self):
        world = World.from_placement(Grid(2, 2), [((0, 0), G)])
        copy = world.clone()
        copy.move(0, (0, 1))
        assert world.robot(0).pos == (0, 0)

    def test_configuration_view(self):
        world = World.from_placement(Grid(2, 2), [((0, 0), G), ((0, 0), W)])
        assert world.configuration().colors_at((0, 0)) == (G, W)


class TestAlgorithmValidation:
    def test_ell_and_summary(self):
        algorithm = tiny_algorithm()
        assert algorithm.ell == 2
        assert "phi=1" in algorithm.summary()

    def test_rule_color_must_be_in_palette(self):
        with pytest.raises(AlgorithmError):
            Algorithm(
                name="bad",
                synchrony=Synchrony.FSYNC,
                phi=1,
                colors=(G,),
                chirality=True,
                k=1,
                rules=(Rule("R1", W, Guard.build(1), W, None),),
                initial_placement=lambda m, n: [((0, 0), G)],
            )

    def test_duplicate_rule_names_rejected(self):
        rule = Rule("R1", G, Guard.build(1), G, None)
        with pytest.raises(AlgorithmError):
            Algorithm(
                name="bad",
                synchrony=Synchrony.FSYNC,
                phi=1,
                colors=(G,),
                chirality=True,
                k=1,
                rules=(rule, rule),
                initial_placement=lambda m, n: [((0, 0), G)],
            )

    def test_phi_mismatch_rejected(self):
        with pytest.raises(AlgorithmError):
            Algorithm(
                name="bad",
                synchrony=Synchrony.FSYNC,
                phi=2,
                colors=(G,),
                chirality=True,
                k=1,
                rules=(Rule("R1", G, Guard.build(1), G, None),),
                initial_placement=lambda m, n: [((0, 0), G)],
            )

    def test_placement_size_checked(self):
        algorithm = tiny_algorithm()
        with pytest.raises(AlgorithmError):
            Algorithm(
                name="bad-k",
                synchrony=Synchrony.FSYNC,
                phi=1,
                colors=(G, W),
                chirality=True,
                k=3,
                rules=algorithm.rules,
                initial_placement=lambda m, n: [((0, 0), G)],
            ).placement(3, 3)

    def test_supports_grid(self):
        algorithm = tiny_algorithm()
        assert algorithm.supports_grid(1, 2)
        assert not algorithm.supports_grid(1, 1)

    def test_rule_named(self):
        algorithm = tiny_algorithm()
        assert algorithm.rule_named("R2").self_color == G
        with pytest.raises(KeyError):
            algorithm.rule_named("R99")

    def test_synchrony_subsumption(self):
        assert Synchrony.subsumes("ASYNC", "FSYNC")
        assert Synchrony.subsumes("ASYNC", "SSYNC")
        assert not Synchrony.subsumes("FSYNC", "SSYNC")


class TestMatchingEngine:
    def test_enabled_robots_initial(self):
        algorithm = tiny_algorithm()
        world = algorithm.initial_world(Grid(2, 3))
        enabled = algorithm.enabled_robots(world)
        assert {robot.color for robot in enabled} == {G, W}

    def test_matches_report_rule_and_symmetry(self):
        algorithm = tiny_algorithm()
        world = algorithm.initial_world(Grid(2, 3))
        matches = algorithm.matches_for_robot(world, world.robot(1))
        assert matches and matches[0].rule.name == "R1"
        assert matches[0].action.world_move == (0, 1)

    def test_terminal_detection(self):
        algorithm = tiny_algorithm()
        world = World.from_placement(Grid(2, 3), [((0, 0), G), ((1, 2), W)])
        assert algorithm.is_terminal(world)

    def test_distinct_actions_deduplicates(self):
        algorithm = tiny_algorithm()
        world = algorithm.initial_world(Grid(2, 3))
        matches = algorithm.matches_for_robot(world, world.robot(0))
        actions = algorithm.distinct_actions(matches)
        assert len(actions) == len({(a.new_color, a.world_move) for a in actions})

    def test_no_chirality_allows_mirror_matches(self):
        # An "L" shaped guard (G ahead, W to the left) only matches the mirror
        # image (G ahead, W to the right) when reflections are allowed, i.e.
        # when robots do not share a common chirality.
        from repro.core.rules import Guard, Rule
        from repro.core import symmetries_for

        rule = Rule("L", W, Guard.build(1, N=occ(G), W=occ(W)), W, "N")
        world = World.from_placement(
            Grid(3, 3), [((1, 1), W), ((0, 1), G), ((1, 2), W)]
        )
        snapshot = world.snapshot((1, 1), 1)
        chiral_matches = [s for s in symmetries_for(True) if rule.matches(snapshot, s)]
        mirrored_matches = [s for s in symmetries_for(False) if rule.matches(snapshot, s)]
        assert not chiral_matches
        assert mirrored_matches and all(not s.is_rotation for s in mirrored_matches)
