"""Tests for the grid substrate (paper Section 2.1 and Figure 1)."""

from __future__ import annotations

import pytest

from repro.core import EAST, NORTH, SOUTH, WEST, Grid, GridError
from repro.core.grid import opposite


class TestConstruction:
    def test_dimensions(self):
        grid = Grid(3, 5)
        assert grid.m == 3 and grid.n == 5
        assert grid.num_nodes == 15

    def test_num_edges(self):
        assert Grid(2, 2).num_edges == 4
        assert Grid(3, 3).num_edges == 12
        assert Grid(1, 5).num_edges == 4

    @pytest.mark.parametrize("m,n", [(0, 3), (3, 0), (-1, 2)])
    def test_invalid_dimensions(self, m, n):
        with pytest.raises(GridError):
            Grid(m, n)


class TestTopology:
    def test_contains(self):
        grid = Grid(2, 3)
        assert grid.contains((0, 0)) and grid.contains((1, 2))
        assert not grid.contains((2, 0)) and not grid.contains((0, 3))
        assert not grid.contains((-1, 0))

    def test_nodes_count_and_order(self):
        grid = Grid(2, 3)
        nodes = list(grid.nodes())
        assert len(nodes) == 6
        assert nodes[0] == (0, 0) and nodes[-1] == (1, 2)

    def test_neighbors_of_corner(self):
        grid = Grid(3, 3)
        assert set(grid.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_neighbors_of_center(self):
        grid = Grid(3, 3)
        assert set(grid.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_degree(self):
        grid = Grid(3, 4)
        assert grid.degree((0, 0)) == 2
        assert grid.degree((0, 1)) == 3
        assert grid.degree((1, 1)) == 4

    def test_step_and_directions(self):
        grid = Grid(3, 3)
        assert grid.step((1, 1), NORTH) == (0, 1)
        assert grid.step((1, 1), SOUTH) == (2, 1)
        assert grid.step((1, 1), EAST) == (1, 2)
        assert grid.step((1, 1), WEST) == (1, 0)

    def test_opposite(self):
        assert opposite(NORTH) == SOUTH
        assert opposite(EAST) == WEST

    def test_require_raises(self):
        with pytest.raises(GridError):
            Grid(2, 2).require((5, 5))

    def test_distance_is_manhattan(self):
        assert Grid.distance((0, 0), (2, 3)) == 5
        assert Grid.distance((1, 1), (1, 1)) == 0


class TestNodeClasses:
    def test_end_nodes_are_boundary(self):
        grid = Grid(4, 5)
        for node in grid.nodes():
            expected = node[0] in (0, 3) or node[1] in (0, 4)
            assert grid.is_end_node(node) == expected

    def test_inner_nodes_require_distance_three(self):
        grid = Grid(9, 9)
        assert grid.is_inner_node((4, 4))
        assert grid.is_inner_node((3, 3))
        assert not grid.is_inner_node((2, 4))
        assert not grid.is_inner_node((4, 2))

    def test_nine_by_nine_has_nine_inner_nodes(self):
        # The impossibility proof (Section 3) uses m, n >= 9 so that the grid
        # has at least nine inner nodes.
        assert len(Grid(9, 9).inner_nodes()) == 9

    def test_small_grids_have_no_inner_nodes(self):
        assert Grid(5, 5).inner_nodes() == []
        assert Grid(6, 8).inner_nodes() == []

    def test_boundary_distance(self):
        grid = Grid(7, 9)
        assert grid.boundary_distance((0, 4)) == 0
        assert grid.boundary_distance((3, 4)) == 3

    def test_corners(self):
        assert Grid(3, 4).corners() == [(0, 0), (0, 3), (2, 0), (2, 3)]
        assert Grid(1, 1).corners() == [(0, 0)]


class TestBallAndRoute:
    def test_ball_radius_one_interior(self):
        grid = Grid(5, 5)
        assert len(grid.ball((2, 2), 1)) == 5

    def test_ball_radius_two_clipped_at_corner(self):
        grid = Grid(5, 5)
        assert len(grid.ball((0, 0), 2)) == 6

    def test_boustrophedon_covers_all_nodes_once(self):
        grid = Grid(4, 3)
        route = grid.boustrophedon_order()
        assert len(route) == grid.num_nodes
        assert len(set(route)) == grid.num_nodes

    def test_boustrophedon_alternates_direction(self):
        route = Grid(3, 3).boustrophedon_order()
        assert route[:3] == [(0, 0), (0, 1), (0, 2)]
        assert route[3:6] == [(1, 2), (1, 1), (1, 0)]
        assert route[6:] == [(2, 0), (2, 1), (2, 2)]

    def test_boustrophedon_consecutive_nodes_adjacent(self):
        route = Grid(5, 6).boustrophedon_order()
        for first, second in zip(route, route[1:]):
            assert Grid.distance(first, second) == 1
