"""Tests for the guard/rule DSL (paper Section 2.4 and Figure 2)."""

from __future__ import annotations

import pytest

from repro.core import (
    ANY,
    B,
    EMPTY,
    FREE,
    G,
    Grid,
    GuardError,
    IDENTITY,
    Robot,
    RuleError,
    W,
    WALL,
    occ,
    snapshot_contents,
)
from repro.core.rules import CellKind, CellSpec, Guard, Rule, guard_to_art, parse_guard_art
from repro.core.views import ROT180


class TestCellSpecs:
    def test_empty_matches_only_empty(self):
        assert EMPTY.matches(())
        assert not EMPTY.matches(None)
        assert not EMPTY.matches((G,))

    def test_wall_matches_only_missing(self):
        assert WALL.matches(None)
        assert not WALL.matches(())

    def test_free_matches_empty_or_missing(self):
        assert FREE.matches(()) and FREE.matches(None)
        assert not FREE.matches((W,))

    def test_any_matches_everything(self):
        assert ANY.matches(None) and ANY.matches(()) and ANY.matches((G, W))

    def test_occ_is_exact_multiset(self):
        spec = occ(W, G)
        assert spec.matches((G, W))
        assert not spec.matches((G,))
        assert not spec.matches((G, G, W))
        assert not spec.matches(None)

    def test_occ_requires_colors(self):
        with pytest.raises(GuardError):
            CellSpec(CellKind.OCCUPIED)

    def test_non_occ_rejects_colors(self):
        with pytest.raises(GuardError):
            CellSpec(CellKind.EMPTY, (G,))


class TestGuardConstruction:
    def test_named_cells(self):
        guard = Guard.build(1, W=occ(G), E=EMPTY)
        assert guard.spec_at((0, -1)) == occ(G)
        assert guard.spec_at((0, 1)) == EMPTY
        assert guard.spec_at((1, 0)) == FREE  # default

    def test_unknown_cell_name(self):
        with pytest.raises(GuardError):
            Guard.build(1, Q=EMPTY)

    def test_offset_outside_ball(self):
        with pytest.raises(GuardError):
            Guard.build(1, EE=EMPTY)

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(GuardError):
            Guard(phi=1, cells=(((0, 1), EMPTY), ((0, 1), WALL)))

    def test_invalid_phi(self):
        with pytest.raises(GuardError):
            Guard.build(3, N=EMPTY)

    def test_occupied_offsets(self):
        guard = Guard.build(2, W=occ(G), EE=occ(W), S=EMPTY)
        assert set(guard.occupied_offsets()) == {(0, -1), (0, 2)}


class TestGuardMatching:
    def _snapshot(self):
        grid = Grid(3, 3)
        robots = [Robot(0, (1, 1), W), Robot(1, (1, 0), G)]
        return snapshot_contents(grid, robots, (1, 1), 1)

    def test_identity_match(self):
        guard = Guard.build(1, W=occ(G), E=EMPTY)
        assert guard.matches(self._snapshot(), IDENTITY, center_default=occ(W))

    def test_rotated_match(self):
        # Under a 180-degree rotation the guard's "west" cell points east.
        guard = Guard.build(1, E=occ(G), W=EMPTY)
        assert guard.matches(self._snapshot(), ROT180, center_default=occ(W))
        assert not guard.matches(self._snapshot(), IDENTITY, center_default=occ(W))

    def test_default_gray_rejects_occupied(self):
        guard = Guard.build(1, E=EMPTY)
        # West neighbour hosts a robot, and the default is gray (empty or wall).
        assert not guard.matches(self._snapshot(), IDENTITY, center_default=occ(W))


class TestRule:
    def test_action_and_movement_mapping(self):
        rule = Rule("R1", W, Guard.build(1, W=occ(G), E=EMPTY), W, "E")
        assert rule.world_move(IDENTITY) == (0, 1)
        assert rule.world_move(ROT180) == (0, -1)
        assert rule.action_label() == "W,->"

    def test_idle_rule(self):
        rule = Rule("R8", G, Guard.build(1, N=occ(W)), B, None)
        assert rule.world_move(IDENTITY) is None
        assert rule.action_label() == "B,Idle"

    def test_invalid_movement(self):
        with pytest.raises(RuleError):
            Rule("R1", W, Guard.build(1), W, "NE")

    def test_center_spec_defaults_to_alone(self):
        rule = Rule("R1", W, Guard.build(1, W=occ(G)), W, "E")
        assert rule.center_spec() == occ(W)

    def test_center_spec_explicit_stack(self):
        rule = Rule("R5", G, Guard.build(1, C=occ(G, W)), G, "S")
        assert rule.center_spec() == occ(G, W)

    def test_rule_matching_uses_center(self):
        grid = Grid(2, 2)
        robots = [Robot(0, (0, 0), G), Robot(1, (0, 0), W)]
        snapshot = snapshot_contents(grid, robots, (0, 0), 1)
        alone = Rule("Ra", G, Guard.build(1), G, None)
        stacked = Rule("Rb", G, Guard.build(1, C=occ(G, W)), G, None)
        assert not alone.matches(snapshot, IDENTITY)
        assert stacked.matches(snapshot, IDENTITY)


class TestGuardArt:
    def test_parse_round_trip(self):
        art = """
        _ o _
        G * o
        _ . _
        """
        guard = parse_guard_art(1, art)
        assert guard.spec_at((0, -1)) == occ(G)
        assert guard.spec_at((-1, 0)) == EMPTY
        assert guard.spec_at((1, 0)) == FREE
        rendered = guard_to_art(guard)
        assert parse_guard_art(1, rendered) == guard

    def test_parse_phi2_with_walls_and_stacks(self):
        art = """
        _ _ . _ _
        _ . o . _
        . GW * # .
        _ . . . _
        _ _ . _ _
        """
        guard = parse_guard_art(2, art)
        assert guard.spec_at((0, -1)) == occ(G, W)
        assert guard.spec_at((0, 1)) == WALL
        assert guard.spec_at((-1, 0)) == EMPTY

    def test_bad_shape_rejected(self):
        with pytest.raises(GuardError):
            parse_guard_art(1, "o o\no o")

    def test_misplaced_underscore_rejected(self):
        with pytest.raises(GuardError):
            parse_guard_art(1, """
            _ _ _
            G * o
            _ . _
            """)
