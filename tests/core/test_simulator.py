"""Tests for the FSYNC/SSYNC/ASYNC execution engines."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import (
    FullActivation,
    Grid,
    RandomAsync,
    RandomSubset,
    SequentialAsync,
    SingleRandom,
    SingleSequential,
    TieBreak,
    run,
    run_async,
    run_fsync,
    run_ssync,
)
from repro.core.errors import SchedulerError, SimulationError
from repro.core.scheduler import SsyncScheduler


class TestFsyncEngine:
    def test_quickstart_execution(self, algorithm1):
        result = run_fsync(algorithm1, Grid(4, 5))
        assert result.is_terminating_exploration
        assert result.termination_reason == "terminal"
        assert result.trace[0] == result.initial
        assert result.trace[-1] == result.final

    def test_round_counts_and_moves(self, algorithm1):
        result = run_fsync(algorithm1, Grid(2, 3))
        assert result.steps == 4
        assert result.total_moves >= result.grid.num_nodes - algorithm1.k

    def test_max_steps_reports_nontermination(self, algorithm1):
        result = run_fsync(algorithm1, Grid(6, 7), max_steps=3)
        assert not result.terminated
        assert result.termination_reason == "max_steps"

    def test_events_reference_rules(self, algorithm1):
        result = run_fsync(algorithm1, Grid(3, 4))
        assert all(event.rule.startswith("R") for event in result.events)
        census = result.rule_census()
        assert census["R1"] > 0 and census["R2"] > 0

    def test_invalid_tie_break_rejected(self, algorithm1):
        with pytest.raises(SimulationError):
            run_fsync(algorithm1, Grid(3, 4), tie_break="whatever")

    def test_record_trace_false_still_reports_result(self, algorithm1):
        result = run_fsync(algorithm1, Grid(3, 4), record_trace=False)
        assert result.is_terminating_exploration
        assert len(result.trace) <= 1 + 1


class TestSsyncEngine:
    @pytest.mark.parametrize("scheduler_factory", [
        lambda: FullActivation(),
        lambda: SingleSequential(),
        lambda: SingleRandom(seed=3),
        lambda: RandomSubset(seed=3),
    ])
    def test_async_algorithm_under_ssync_schedulers(self, scheduler_factory):
        algorithm = get("async_phi2_l3_chir_k2")
        result = run_ssync(algorithm, Grid(3, 4), scheduler=scheduler_factory())
        assert result.is_terminating_exploration

    def test_full_activation_equals_fsync(self, algorithm1):
        ssync = run_ssync(algorithm1, Grid(4, 5), scheduler=FullActivation(), tie_break=TieBreak.ERROR)
        fsync = run_fsync(algorithm1, Grid(4, 5))
        assert ssync.steps == fsync.steps
        assert ssync.final == fsync.final

    def test_bad_scheduler_selection_rejected(self, algorithm1):
        class Broken(SsyncScheduler):
            def select(self, round_index, enabled):
                return []

        with pytest.raises(SchedulerError):
            run_ssync(algorithm1, Grid(3, 4), scheduler=Broken())


class TestAsyncEngine:
    def test_sequential_async_matches_paper_figures(self):
        algorithm = get("async_phi2_l3_chir_k2")
        result = run_async(algorithm, Grid(3, 4), scheduler=SequentialAsync())
        assert result.is_terminating_exploration

    @pytest.mark.parametrize("seed", range(5))
    def test_random_interleavings(self, seed):
        algorithm = get("async_phi1_l3_chir_k3")
        result = run_async(algorithm, Grid(3, 4), scheduler=RandomAsync(seed=seed))
        assert result.is_terminating_exploration

    def test_phases_are_recorded(self):
        algorithm = get("async_phi2_l3_chir_k2")
        result = run_async(algorithm, Grid(2, 3), scheduler=SequentialAsync())
        phases = {event.phase for event in result.events}
        assert phases == {"look", "compute", "move"}

    def test_color_change_visible_before_move(self):
        # Rule R4 of Algorithm 6 recolors G to B during Compute; the trace must
        # contain the intermediate configuration where the robot is already B
        # but has not moved yet (Figure 12(c)).
        algorithm = get("async_phi2_l3_chir_k2")
        result = run_async(algorithm, Grid(2, 4), scheduler=SequentialAsync())
        intermediates = [
            config
            for config in result.trace
            if any(colors == ("B",) for _node, colors in config)
            and any(colors == ("W",) for _node, colors in config)
        ]
        assert intermediates, "expected the B-recolored intermediate configuration in the trace"


class TestDispatcher:
    @pytest.mark.parametrize("model", ["FSYNC", "SSYNC", "ASYNC"])
    def test_run_dispatch(self, model):
        algorithm = get("async_phi2_l3_chir_k2")
        result = run(algorithm, Grid(2, 4), model)
        assert result.model == model
        assert result.is_terminating_exploration

    def test_unknown_model(self, algorithm1):
        with pytest.raises(SimulationError):
            run(algorithm1, Grid(2, 3), "HYPERSYNC")
