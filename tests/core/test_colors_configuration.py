"""Tests for color multisets and configurations (paper Section 2.2)."""

from __future__ import annotations

import pytest

from repro.core import B, Configuration, G, Grid, Robot, W, multiset
from repro.core.colors import multiset_remove, multiset_union, validate_color
from repro.core.errors import ConfigurationError


class TestColors:
    def test_multiset_is_sorted(self):
        assert multiset(W, G) == (G, W)
        assert multiset() == ()

    def test_multiset_keeps_multiplicity(self):
        assert multiset(G, G, W) == (G, G, W)

    def test_union_and_remove(self):
        assert multiset_union((G,), (W, G)) == (G, G, W)
        assert multiset_remove((G, G, W), G) == (G, W)

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            multiset_remove((G,), B)

    @pytest.mark.parametrize("bad", ["", None, 3])
    def test_validate_color_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_color(bad)


class TestConfiguration:
    def test_from_robots_groups_by_node(self):
        robots = [Robot(0, (0, 0), G), Robot(1, (0, 1), W), Robot(2, (0, 0), W)]
        config = Configuration.from_robots(robots)
        assert config.colors_at((0, 0)) == (G, W)
        assert config.colors_at((0, 1)) == (W,)
        assert config.colors_at((1, 1)) == ()

    def test_from_pairs_merges_duplicates(self):
        config = Configuration.from_pairs([((0, 0), (G,)), ((0, 0), (W,))])
        assert config.colors_at((0, 0)) == (G, W)

    def test_empty_entries_dropped(self):
        config = Configuration.from_mapping({(0, 0): (), (0, 1): (G,)})
        assert config.occupied_nodes() == ((0, 1),)

    def test_equality_is_anonymous(self):
        first = Configuration.from_robots([Robot(0, (0, 0), G), Robot(1, (1, 1), W)])
        second = Configuration.from_robots([Robot(7, (1, 1), W), Robot(3, (0, 0), G)])
        assert first == second
        assert hash(first) == hash(second)

    def test_robot_count_and_census(self):
        config = Configuration.from_pairs([((0, 0), (G, W)), ((2, 2), (W,))])
        assert config.robot_count == 3
        assert config.color_census() == {G: 1, W: 2}

    def test_contains_and_len(self):
        config = Configuration.from_pairs([((0, 0), (G,)), ((1, 0), (W,))])
        assert (0, 0) in config and (5, 5) not in config
        assert len(config) == 2

    def test_matches_pairs_helper(self):
        config = Configuration.from_pairs([((1, 2), (G, W))])
        assert config.matches_pairs([((1, 2), (W, G))])
        assert not config.matches_pairs([((1, 2), (G,))])

    def test_validate_on_grid(self):
        config = Configuration.from_pairs([((5, 5), (G,))])
        with pytest.raises(ConfigurationError):
            config.validate_on(Grid(2, 2))

    def test_str_uses_paper_notation(self):
        config = Configuration.from_pairs([((0, 1), (G, W))])
        assert str(config) == "{(v[0,1], {G,W})}"
