"""Property-based tests (hypothesis) for the core data structures."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algorithms import get
from repro.core import (
    ALL_SYMMETRIES,
    Configuration,
    DEFAULT_PALETTE,
    Grid,
    Robot,
    ball_offsets,
    multiset,
    run_fsync,
    run_ssync,
    snapshot_contents,
)
from repro.core.scheduler import RandomSubset

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
grids = st.tuples(st.integers(2, 6), st.integers(2, 6)).map(lambda mn: Grid(*mn))
colors = st.sampled_from(DEFAULT_PALETTE)
offsets = st.tuples(st.integers(-2, 2), st.integers(-2, 2))


@st.composite
def populated_grids(draw, max_robots=5):
    grid = draw(grids)
    count = draw(st.integers(1, max_robots))
    robots = []
    for rid in range(count):
        i = draw(st.integers(0, grid.m - 1))
        j = draw(st.integers(0, grid.n - 1))
        robots.append(Robot(rid=rid, pos=(i, j), color=draw(colors)))
    return grid, robots


# ---------------------------------------------------------------------------
# Grid properties
# ---------------------------------------------------------------------------
@given(grids)
def test_boustrophedon_is_a_hamiltonian_path(grid):
    route = grid.boustrophedon_order()
    assert sorted(route) == sorted(grid.nodes())
    assert all(Grid.distance(a, b) == 1 for a, b in zip(route, route[1:]))


@given(grids, st.data())
def test_neighbors_are_symmetric(grid, data):
    node = data.draw(st.sampled_from(list(grid.nodes())))
    for neighbor in grid.neighbors(node):
        assert node in grid.neighbors(neighbor)


@given(grids, st.data())
def test_boundary_distance_matches_definition(grid, data):
    node = data.draw(st.sampled_from(list(grid.nodes())))
    expected = min(Grid.distance(node, end) for end in grid.end_nodes())
    assert grid.boundary_distance(node) == expected


# ---------------------------------------------------------------------------
# Symmetry group properties
# ---------------------------------------------------------------------------
@given(st.sampled_from(ALL_SYMMETRIES), st.sampled_from(ALL_SYMMETRIES), offsets)
def test_composition_is_the_group_action(first, second, offset):
    assert first.compose(second).apply(offset) == first.apply(second.apply(offset))


@given(st.sampled_from(ALL_SYMMETRIES), st.integers(1, 2))
def test_symmetries_permute_the_visibility_ball(symmetry, phi):
    ball = set(ball_offsets(phi))
    assert {symmetry.apply(offset) for offset in ball} == ball


@given(st.sampled_from(ALL_SYMMETRIES))
def test_symmetry_is_invertible(symmetry):
    images = {symmetry.apply(offset) for offset in ball_offsets(2)}
    assert len(images) == len(ball_offsets(2))


# ---------------------------------------------------------------------------
# Configurations and snapshots
# ---------------------------------------------------------------------------
@given(populated_grids())
def test_configuration_preserves_robot_count(populated):
    _grid, robots = populated
    assert Configuration.from_robots(robots).robot_count == len(robots)


@given(populated_grids())
def test_configuration_is_permutation_invariant(populated):
    _grid, robots = populated
    assert Configuration.from_robots(robots) == Configuration.from_robots(list(reversed(robots)))


@given(populated_grids(), st.integers(1, 2), st.data())
def test_snapshot_center_contains_observer(populated, phi, data):
    grid, robots = populated
    observer = data.draw(st.sampled_from(robots))
    snapshot = snapshot_contents(grid, robots, observer.pos, phi)
    assert observer.color in snapshot[(0, 0)]
    assert set(snapshot) == set(ball_offsets(phi))


@given(populated_grids(), st.data())
def test_snapshot_cells_reflect_grid_membership(populated, data):
    grid, robots = populated
    observer = data.draw(st.sampled_from(robots))
    snapshot = snapshot_contents(grid, robots, observer.pos, 2)
    for offset, content in snapshot.items():
        node = (observer.pos[0] + offset[0], observer.pos[1] + offset[1])
        assert (content is None) == (not grid.contains(node))


@given(st.lists(colors, max_size=5))
def test_multiset_is_order_invariant(items):
    assert multiset(*items) == multiset(*reversed(items))


# ---------------------------------------------------------------------------
# Simulator invariants on a real algorithm
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(3, 7))
def test_fsync_execution_invariants(m, n):
    algorithm = get("fsync_phi2_l2_chir_k2")
    result = run_fsync(algorithm, Grid(m, n))
    # Robot count is conserved in every recorded configuration.
    assert all(config.robot_count == algorithm.k for config in result.trace)
    # The execution is a terminating exploration and visits exactly the grid.
    assert result.is_terminating_exploration
    assert result.visited <= set(Grid(m, n).nodes())
    # Every event moves a robot to an adjacent node (or keeps it idle).
    assert all(Grid.distance(e.old_pos, e.new_pos) <= 1 for e in result.events)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5), st.integers(3, 6), st.integers(0, 1000))
def test_ssync_random_schedules_preserve_robots(m, n, seed):
    algorithm = get("async_phi2_l3_chir_k2")
    result = run_ssync(algorithm, Grid(m, n), scheduler=RandomSubset(seed=seed))
    assert result.final.robot_count == algorithm.k
    assert result.is_terminating_exploration
