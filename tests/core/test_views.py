"""Tests for views, visibility balls and the symmetry group (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.core import (
    ALL_SYMMETRIES,
    B,
    G,
    Grid,
    IDENTITY,
    REFLECTIONS,
    ROTATIONS,
    Robot,
    W,
    ball_offsets,
    snapshot_contents,
    symmetries_for,
    view_tuple,
)


class TestBallOffsets:
    def test_phi1_has_five_cells(self):
        assert len(ball_offsets(1)) == 5
        assert (0, 0) in ball_offsets(1)

    def test_phi2_has_thirteen_cells(self):
        # The paper's phi = 2 view lists 13 multisets (V_{2,nu}).
        assert len(ball_offsets(2)) == 13

    def test_offsets_within_distance(self):
        for phi in (1, 2, 3):
            assert all(abs(di) + abs(dj) <= phi for di, dj in ball_offsets(phi))

    def test_negative_phi_rejected(self):
        with pytest.raises(ValueError):
            ball_offsets(-1)


class TestSymmetryGroup:
    def test_counts(self):
        assert len(ROTATIONS) == 4
        assert len(REFLECTIONS) == 4
        assert len(ALL_SYMMETRIES) == 8

    def test_rotations_preserve_orientation(self):
        assert all(symmetry.determinant == 1 for symmetry in ROTATIONS)
        assert all(symmetry.determinant == -1 for symmetry in REFLECTIONS)

    def test_symmetries_for_chirality(self):
        assert symmetries_for(True) == ROTATIONS
        assert symmetries_for(False) == ALL_SYMMETRIES

    def test_group_closure(self):
        matrices = {symmetry.matrix() for symmetry in ALL_SYMMETRIES}
        for first in ALL_SYMMETRIES:
            for second in ALL_SYMMETRIES:
                assert first.compose(second).matrix() in matrices

    def test_symmetries_are_distinct(self):
        assert len({symmetry.matrix() for symmetry in ALL_SYMMETRIES}) == 8

    def test_apply_preserves_distance(self):
        for symmetry in ALL_SYMMETRIES:
            for offset in ball_offsets(2):
                image = symmetry.apply(offset)
                assert abs(image[0]) + abs(image[1]) == abs(offset[0]) + abs(offset[1])

    def test_identity_fixes_offsets(self):
        for offset in ball_offsets(2):
            assert IDENTITY.apply(offset) == offset


class TestSnapshots:
    def test_walls_and_empty_cells(self):
        grid = Grid(2, 3)
        snapshot = snapshot_contents(grid, [], (0, 0), 1)
        assert snapshot[(-1, 0)] is None  # north of the top row: the paper's bottom
        assert snapshot[(0, -1)] is None
        assert snapshot[(0, 1)] == ()
        assert snapshot[(0, 0)] == ()

    def test_includes_observer_and_neighbors(self):
        grid = Grid(3, 3)
        robots = [Robot(0, (1, 1), G), Robot(1, (1, 2), W), Robot(2, (0, 1), B)]
        snapshot = snapshot_contents(grid, robots, (1, 1), 1)
        assert snapshot[(0, 0)] == (G,)
        assert snapshot[(0, 1)] == (W,)
        assert snapshot[(-1, 0)] == (B,)

    def test_respects_visibility_radius(self):
        grid = Grid(1, 5)
        robots = [Robot(0, (0, 0), G), Robot(1, (0, 2), W)]
        snapshot = snapshot_contents(grid, robots, (0, 0), 1)
        assert (0, 2) not in snapshot

    def test_stacked_robots_form_multiset(self):
        grid = Grid(2, 2)
        robots = [Robot(0, (0, 0), G), Robot(1, (0, 0), W)]
        snapshot = snapshot_contents(grid, robots, (0, 1), 1)
        assert snapshot[(0, -1)] == (G, W)


class TestPaperViews:
    def test_rotated_views_form_the_paper_family(self):
        # Section 2.2: with a common chirality a robot obtains four views that
        # are the rotations of one another; without it, eight.
        grid = Grid(3, 3)
        robots = [Robot(0, (1, 1), G), Robot(1, (0, 1), W), Robot(2, (1, 2), B)]
        snapshot = snapshot_contents(grid, robots, (1, 1), 1)
        rotated = {view_tuple(snapshot, G, symmetry, 1) for symmetry in ROTATIONS}
        everything = {view_tuple(snapshot, G, symmetry, 1) for symmetry in ALL_SYMMETRIES}
        assert len(rotated) == 4
        assert len(everything) == 8
        assert rotated < everything

    def test_view_starts_with_observer_color_and_own_cell(self):
        grid = Grid(3, 3)
        robots = [Robot(0, (1, 1), G)]
        snapshot = snapshot_contents(grid, robots, (1, 1), 1)
        view = view_tuple(snapshot, G, IDENTITY, 1)
        assert view[0] == G
        assert view[3] == (G,)  # M_{i,j} contains the observer itself

    def test_phi2_view_has_fourteen_entries(self):
        grid = Grid(5, 5)
        snapshot = snapshot_contents(grid, [Robot(0, (2, 2), G)], (2, 2), 2)
        assert len(view_tuple(snapshot, G, IDENTITY, 2)) == 14
