"""Tests for ASCII rendering, figure helpers and the verification campaigns."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import Configuration, Grid, run_fsync
from repro.core.errors import VerificationError
from repro.verification import (
    grid_sweep,
    stress_test,
    verify_algorithm,
    verify_terminating_exploration,
)
from repro.viz import render_configuration, render_trace, render_world
from repro.viz.figures import FigureFrame, find_index, find_subtrace, render_figure_sequence


class TestAsciiRendering:
    def test_render_configuration_shows_colors_and_empty_cells(self):
        grid = Grid(2, 3)
        config = Configuration.from_pairs([((0, 0), ("G",)), ((0, 1), ("G", "W"))])
        text = render_configuration(grid, config)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "GW" in lines[0] and "G" in lines[0]
        assert set(lines[1].split()) == {"."}

    def test_render_with_visited_markers(self):
        grid = Grid(1, 3)
        config = Configuration.from_pairs([((0, 2), ("W",))])
        text = render_configuration(grid, config, visited={(0, 0)})
        assert text.split() == ["*", ".", "W"]

    def test_render_world_and_trace(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        world = algorithm.initial_world(Grid(2, 3))
        assert "G" in render_world(world)
        result = run_fsync(algorithm, Grid(2, 3))
        rendered = render_trace(Grid(2, 3), result.trace, limit=2)
        assert "[0]" in rendered and "more configurations" in rendered


class TestFigureHelpers:
    def test_find_index_and_subtrace(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        result = run_fsync(algorithm, Grid(3, 4))
        target = result.trace[2]
        assert find_index(result.trace, lambda c: c == target) == 2
        assert find_subtrace(result.trace, [result.trace[1], result.trace[3]]) == 1
        missing = Configuration.from_pairs([((0, 0), ("B",))])
        assert find_subtrace(result.trace, [missing]) is None

    def test_render_figure_sequence(self):
        grid = Grid(2, 3)
        frames = [
            FigureFrame("Fig. X(a)", Configuration.from_pairs([((0, 0), ("G",))])),
            FigureFrame("Fig. X(b)", Configuration.from_pairs([((0, 1), ("G",))])),
        ]
        text = render_figure_sequence(grid, frames)
        assert "Fig. X(a)" in text and "Fig. X(b)" in text


class TestVerificationCampaigns:
    def test_single_verification_report(self):
        report = verify_terminating_exploration(get("fsync_phi2_l2_chir_k2"), 4, 5)
        assert report.ok and report.reason == "ok"

    def test_failed_verification_reports_reason(self):
        report = verify_terminating_exploration(
            get("fsync_phi2_l2_chir_k2"), 6, 7, max_steps=2
        )
        assert not report.ok and "terminate" in report.reason

    def test_grid_sweep_and_raise_on_failure(self):
        report = grid_sweep(get("fsync_phi1_l2_chir_k3"))
        assert report.ok
        report.raise_on_failure()  # must not raise
        assert "verification runs succeeded" in report.summary()

    def test_sweep_failure_raises(self):
        report = grid_sweep(get("fsync_phi2_l2_chir_k2"), model="SSYNC", sizes=[(4, 4)], seed=1)
        if not report.ok:
            with pytest.raises(VerificationError):
                report.raise_on_failure()

    def test_stress_test_for_async_algorithm(self):
        report = stress_test(
            get("async_phi2_l3_chir_k2"), sizes=[(3, 4)], seeds=(0, 1, 2), models=("SSYNC", "ASYNC")
        )
        assert report.ok and len(report.reports) == 6

    def test_verify_algorithm_dispatches_on_synchrony(self):
        fsync_report = verify_algorithm(get("fsync_phi2_l2_chir_k2"), sizes=[(3, 4), (4, 5)])
        async_report = verify_algorithm(get("async_phi2_l3_chir_k2"), sizes=[(3, 4)], seeds=(0, 1))
        assert fsync_report.ok and async_report.ok
        assert all(r.model == "FSYNC" for r in fsync_report.reports)
        assert {r.model for r in async_report.reports} == {"FSYNC", "SSYNC", "ASYNC"}
