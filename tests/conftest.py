"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import core
from repro.algorithms import all_algorithms, get


@pytest.fixture(scope="session")
def algorithms():
    """All registered algorithms keyed by name."""
    return all_algorithms()


@pytest.fixture(scope="session")
def fsync_algorithms(algorithms):
    """The eight FSYNC rows of Table 1."""
    return [a for a in algorithms.values() if a.synchrony == "FSYNC"]


@pytest.fixture(scope="session")
def async_algorithms(algorithms):
    """The SSYNC/ASYNC rows of Table 1."""
    return [a for a in algorithms.values() if a.synchrony == "ASYNC"]


@pytest.fixture
def small_grid():
    return core.Grid(3, 4)


@pytest.fixture
def algorithm1():
    """Algorithm 1 of the paper (the quickstart algorithm)."""
    return get("fsync_phi2_l2_chir_k2")


def pytest_addoption(parser):
    parser.addoption(
        "--thorough",
        action="store_true",
        default=False,
        help="run the larger verification sweeps (slower)",
    )


@pytest.fixture(scope="session")
def thorough(request):
    return request.config.getoption("--thorough")
