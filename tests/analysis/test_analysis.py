"""Tests for the analysis subpackage (Table 1, route, metrics, scaling)."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.analysis import (
    build_table1,
    collect_metrics,
    follows_boustrophedon_route,
    render_table1,
    round_complexity_sweep,
    route_deviation,
)
from repro.analysis.scaling import fit_linear_in_nodes
from repro.analysis.table1 import PAPER_TABLE1
from repro.core import Grid, run_fsync


class TestMetrics:
    def test_collect_metrics_basic(self):
        result = run_fsync(get("fsync_phi2_l2_chir_k2"), Grid(4, 5))
        metrics = collect_metrics(result)
        assert metrics.coverage == 1.0
        assert metrics.terminated
        assert metrics.moves > 0
        assert 0 < metrics.moves_per_node < 5

    def test_metrics_as_dict(self):
        result = run_fsync(get("fsync_phi1_l2_chir_k3"), Grid(3, 4))
        record = collect_metrics(result).as_dict()
        assert record["algorithm"] == "fsync_phi1_l2_chir_k3"
        assert record["m"] == 3 and record["n"] == 4


class TestRoute:
    @pytest.mark.parametrize(
        "name",
        [
            "fsync_phi2_l2_chir_k2",
            "fsync_phi1_l3_chir_k2",
            "fsync_phi1_l2_chir_k3",
            "async_phi2_l3_chir_k2",
            "async_phi1_l3_chir_k3",
        ],
    )
    def test_algorithms_follow_the_figure3_route(self, name):
        algorithm = get(name)
        result = run_fsync(algorithm, Grid(6, max(5, algorithm.min_n)), tie_break="first")
        assert follows_boustrophedon_route(result)

    def test_two_row_band_deviations_detected(self):
        # The deviation detector must flag a first-visit order that jumps two
        # rows ahead while earlier rows are incomplete.
        result = run_fsync(get("fsync_phi2_l2_chir_k2"), Grid(5, 5), tie_break="first")
        assert route_deviation(result, band=1) != [] or route_deviation(result, band=2) == []
        assert route_deviation(result, band=2) == []

    def test_incomplete_execution_does_not_follow_route(self):
        result = run_fsync(get("fsync_phi2_l2_chir_k2"), Grid(6, 6), max_steps=3)
        assert not follows_boustrophedon_route(result)


class TestScaling:
    def test_sweep_produces_points_and_linear_fit(self):
        algorithm = get("fsync_phi2_l2_chir_k2")
        points = round_complexity_sweep(algorithm, sizes=[(4, 5), (6, 7), (8, 9)])
        assert len(points) == 3
        slope = fit_linear_in_nodes(points, field="moves")
        assert 1.0 < slope < 4.0  # Theta(m*n) total moves with a small constant

    def test_sweep_skips_unsupported_sizes(self):
        algorithm = get("fsync_phi2_l2_nochir_k3")  # requires n >= 4 in this encoding
        points = round_complexity_sweep(algorithm, sizes=[(3, 3), (4, 5)])
        assert [(p.m, p.n) for p in points] == [(4, 5)]


class TestTable1:
    def test_paper_table_has_fourteen_rows(self):
        assert len(PAPER_TABLE1) == 14

    def test_build_table1_quick(self):
        rows = build_table1(quick=True)
        assert len(rows) == 14
        reproduced = [row for row in rows if row.algorithm is not None]
        assert len(reproduced) >= 13
        for row in reproduced:
            assert row.measured_k == row.paper_upper
            assert row.verified, f"row {row.synchrony} phi={row.phi} ell={row.ell} failed verification"
            assert row.measured_k >= row.lower_bound
            if row.model_checked is not None:
                assert row.model_checked

    def test_render_table1(self):
        rows = build_table1(quick=True)
        text = render_table1(rows)
        assert "Synchrony" in text
        assert "FSYNC" in text and "ASYNC" in text
        assert text.count("\n") >= 14
