"""Tests for the algorithm registry and the Table 1 metadata of every algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms import find, get, names, table1_rows
from repro.algorithms.derive import replace_color_with_pair
from repro.core import B, G, W
from repro.core.errors import AlgorithmError

#: (name, synchrony, phi, ell, chirality, k, optimal, paper section)
EXPECTED_SPECS = [
    ("fsync_phi2_l2_chir_k2", "FSYNC", 2, 2, True, 2, True, "4.2.1"),
    ("fsync_phi2_l2_nochir_k3", "FSYNC", 2, 2, False, 3, False, "4.2.2"),
    ("fsync_phi2_l1_chir_k3", "FSYNC", 2, 1, True, 3, True, "4.2.3"),
    ("fsync_phi2_l1_nochir_k4", "FSYNC", 2, 1, False, 4, False, "4.2.4"),
    ("fsync_phi1_l3_chir_k2", "FSYNC", 1, 3, True, 2, True, "4.2.5"),
    ("fsync_phi1_l3_nochir_k4", "FSYNC", 1, 3, False, 4, False, "4.2.6"),
    ("fsync_phi1_l2_chir_k3", "FSYNC", 1, 2, True, 3, True, "4.2.7"),
    ("fsync_phi1_l2_nochir_k5", "FSYNC", 1, 2, False, 5, False, "4.2.8"),
    ("async_phi2_l3_chir_k2", "ASYNC", 2, 3, True, 2, True, "4.3.1"),
    ("async_phi2_l3_nochir_k3", "ASYNC", 2, 3, False, 3, False, "4.3.2"),
    ("async_phi2_l2_chir_k3", "ASYNC", 2, 2, True, 3, False, "4.3.3"),
    ("async_phi2_l2_nochir_k4", "ASYNC", 2, 2, False, 4, False, "4.3.4"),
    ("async_phi1_l3_chir_k3", "ASYNC", 1, 3, True, 3, True, "4.3.5"),
]


class TestRegistry:
    def test_names_sorted_and_unique(self):
        listed = names()
        assert listed == sorted(listed)
        assert len(listed) == len(set(listed))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("does_not_exist")

    def test_find_by_table1_coordinates(self):
        algorithm = find("FSYNC", 2, 2, True)
        assert algorithm.name == "fsync_phi2_l2_chir_k2"

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            find("FSYNC", 1, 1, True)

    def test_table1_rows_are_unique_rows(self):
        rows = table1_rows()
        keys = {(a.synchrony, a.phi, a.ell, a.chirality) for a in rows}
        assert len(keys) == len(rows)

    def test_at_least_thirteen_rows_registered(self):
        assert len(table1_rows()) >= 13


@pytest.mark.parametrize("name,synchrony,phi,ell,chirality,k,optimal,section", EXPECTED_SPECS)
class TestTable1Metadata:
    def test_spec_matches_paper(self, name, synchrony, phi, ell, chirality, k, optimal, section):
        algorithm = get(name)
        assert algorithm.synchrony == synchrony
        assert algorithm.phi == phi
        assert algorithm.ell == ell
        assert algorithm.chirality == chirality
        assert algorithm.k == k
        assert algorithm.optimal == optimal
        assert algorithm.paper_section == section

    def test_initial_placement_matches_k(self, name, synchrony, phi, ell, chirality, k, optimal, section):
        algorithm = get(name)
        placement = algorithm.placement(max(algorithm.min_m, 3), max(algorithm.min_n, 4))
        assert len(placement) == k
        assert all(color in algorithm.colors for _node, color in placement)

    def test_rules_use_declared_visibility(self, name, synchrony, phi, ell, chirality, k, optimal, section):
        algorithm = get(name)
        assert all(rule.phi == phi for rule in algorithm.rules)

    def test_color_count_is_ell(self, name, synchrony, phi, ell, chirality, k, optimal, section):
        algorithm = get(name)
        assert len(algorithm.colors) == ell


class TestDerivation:
    def test_pair_construction_doubles_the_removed_robot(self):
        source = get("fsync_phi2_l2_chir_k2")
        derived = get("fsync_phi2_l1_chir_k3")
        assert derived.k == source.k + 1
        assert derived.colors == (G,)
        census = {}
        for _node, color in derived.placement(3, 4):
            census[color] = census.get(color, 0) + 1
        assert census == {G: 3}

    def test_pair_construction_rewrites_guards(self):
        derived = get("fsync_phi2_l1_chir_k3")
        # Rule R1 was executed by the W robot: its derived version is executed
        # by a G robot stacked with another G.
        rule = derived.rule_named("R1")
        assert rule.self_color == G
        assert rule.center_spec().colors == (G, G)

    def test_pair_construction_rejects_color_changing_algorithms(self):
        source = get("fsync_phi1_l3_chir_k2")  # recolors W robots
        with pytest.raises(AlgorithmError):
            replace_color_with_pair(source, removed=W, replacement=G, name="x", paper_section="-")

    def test_pair_construction_rejects_unknown_colors(self):
        source = get("fsync_phi2_l2_chir_k2")
        with pytest.raises(AlgorithmError):
            replace_color_with_pair(source, removed=B, replacement=G, name="x", paper_section="-")
