"""Integration tests: every Table 1 algorithm achieves terminating exploration.

These are the executable counterparts of the paper's per-algorithm
correctness claims.  FSYNC algorithms are checked by deterministic sweeps
over grid sizes (both parities of each dimension, thin and square grids);
the SSYNC/ASYNC algorithms are additionally checked under randomized
semi-synchronous and asynchronous schedules.
"""

from __future__ import annotations

import pytest

from repro.algorithms import all_algorithms, get
from repro.core import Grid, RandomAsync, RandomSubset, SingleSequential, TieBreak, run_async, run_fsync, run_ssync

ALL_NAMES = sorted(all_algorithms())
ASYNC_NAMES = [name for name in ALL_NAMES if name.startswith("async")]


def sizes_for(algorithm, extra=()):
    base = [
        (algorithm.min_m, algorithm.min_n),
        (algorithm.min_m, algorithm.min_n + 1),
        (algorithm.min_m + 1, algorithm.min_n),
        (algorithm.min_m + 1, algorithm.min_n + 1),
        (2, max(algorithm.min_n, 7)),
        (7, algorithm.min_n),
        (5, 6),
        (6, 5),
        (8, 9),
        (9, 8),
    ]
    base.extend(extra)
    return sorted({(m, n) for m, n in base if m >= algorithm.min_m and n >= algorithm.min_n})


@pytest.mark.parametrize("name", ALL_NAMES)
class TestFsyncSweep:
    """Every algorithm must work under FSYNC (the strongest scheduler)."""

    def test_terminating_exploration_across_grid_sizes(self, name):
        algorithm = get(name)
        for m, n in sizes_for(algorithm):
            result = run_fsync(algorithm, Grid(m, n), tie_break=TieBreak.ERROR)
            assert result.is_terminating_exploration, (
                f"{name} failed on {m}x{n}: {result.summary()}"
            )

    def test_every_rule_can_fire_on_some_grid(self, name):
        algorithm = get(name)
        fired = set()
        for m, n in sizes_for(algorithm):
            result = run_fsync(algorithm, Grid(m, n), tie_break=TieBreak.FIRST)
            fired.update(result.rule_census())
        unused = {rule.name for rule in algorithm.rules} - fired
        assert not unused, f"{name}: rules never exercised by the FSYNC sweep: {sorted(unused)}"

    def test_behaviour_is_deterministic_along_fsync_executions(self, name):
        # tie_break=ERROR raises if two matching views ever disagree on the
        # action, so a completed run certifies per-configuration determinism.
        algorithm = get(name)
        result = run_fsync(
            algorithm, Grid(algorithm.min_m + 3, algorithm.min_n + 2), tie_break=TieBreak.ERROR
        )
        assert result.terminated

    def test_moves_scale_linearly_with_nodes(self, name):
        algorithm = get(name)
        small = run_fsync(algorithm, Grid(4, max(algorithm.min_n, 4)), tie_break=TieBreak.FIRST)
        large = run_fsync(algorithm, Grid(8, max(algorithm.min_n, 4) * 2), tie_break=TieBreak.FIRST)
        ratio = large.total_moves / max(small.total_moves, 1)
        node_ratio = large.grid.num_nodes / small.grid.num_nodes
        assert ratio < 3.5 * node_ratio


@pytest.mark.parametrize("name", ASYNC_NAMES)
class TestSsyncAndAsync:
    """The Section 4.3 algorithms must survive adversarial-ish schedules."""

    def test_random_ssync_schedules(self, name):
        algorithm = get(name)
        for m, n in [(algorithm.min_m, algorithm.min_n), (3, algorithm.min_n + 1), (4, 5), (5, 4)]:
            if m < algorithm.min_m or n < algorithm.min_n:
                continue
            for seed in range(6):
                result = run_ssync(
                    algorithm, Grid(m, n), scheduler=RandomSubset(seed=seed), tie_break=TieBreak.ERROR
                )
                assert result.is_terminating_exploration, f"{name} SSYNC seed {seed} on {m}x{n}"

    def test_sequential_ssync_schedule(self, name):
        algorithm = get(name)
        result = run_ssync(algorithm, Grid(4, max(4, algorithm.min_n)), scheduler=SingleSequential())
        assert result.is_terminating_exploration

    def test_random_async_interleavings(self, name):
        algorithm = get(name)
        for m, n in [(algorithm.min_m, algorithm.min_n), (3, algorithm.min_n + 1), (4, 5)]:
            if m < algorithm.min_m or n < algorithm.min_n:
                continue
            for seed in range(6):
                result = run_async(
                    algorithm, Grid(m, n), scheduler=RandomAsync(seed=seed), tie_break=TieBreak.ERROR
                )
                assert result.is_terminating_exploration, f"{name} ASYNC seed {seed} on {m}x{n}"

    def test_large_grid_async(self, name):
        algorithm = get(name)
        result = run_async(algorithm, Grid(6, 7), scheduler=RandomAsync(seed=42))
        assert result.is_terminating_exploration


@pytest.mark.parametrize("name", ALL_NAMES)
def test_final_configuration_is_terminal(name):
    """Definition 1 requires a suffix with no enabled robot; re-check explicitly."""
    algorithm = get(name)
    grid = Grid(algorithm.min_m + 2, algorithm.min_n + 1)
    result = run_fsync(algorithm, grid, tie_break=TieBreak.FIRST)
    assert result.terminated
    world = algorithm.initial_world(grid)
    # Rebuild the final world from the final configuration and confirm no rule matches.
    from repro.core.world import World

    placement = []
    for node, colors in result.final:
        for color in colors:
            placement.append((node, color))
    final_world = World.from_placement(grid, placement)
    assert algorithm.is_terminal(final_world)
