"""Checks of the exact configurations the paper states in Section 4.

For each algorithm the paper spells out the initial configuration and the
terminal configuration(s) for odd and even ``m``.  These tests run the
algorithms and compare against those explicit configurations (using the
paper's coordinates anchored at the northwest corner).
"""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import Configuration, Grid, TieBreak, run_fsync


def final_config(name, m, n, tie_break=TieBreak.FIRST):
    algorithm = get(name)
    result = run_fsync(algorithm, Grid(m, n), tie_break=tie_break)
    assert result.is_terminating_exploration
    return result.final


class TestAlgorithm1Endings:
    """Section 4.2.1, 'End of exploration'."""

    def test_odd_m_ends_in_southeast_corner(self):
        m, n = 5, 6
        expected = Configuration.from_pairs([((m - 1, n - 2), ("G",)), ((m - 1, n - 1), ("W",))])
        assert final_config("fsync_phi2_l2_chir_k2", m, n) == expected

    def test_even_m_ends_stacked_on_second_column(self):
        m, n = 4, 6
        expected = Configuration.from_pairs([((m - 1, 1), ("G", "W"))])
        assert final_config("fsync_phi2_l2_chir_k2", m, n) == expected


class TestAlgorithm3Endings:
    """Section 4.2.5, 'End of exploration'."""

    def test_odd_m_ends_stacked_in_southeast_corner(self):
        m, n = 5, 5
        expected = Configuration.from_pairs([((m - 1, n - 1), ("G", "W"))])
        assert final_config("fsync_phi1_l3_chir_k2", m, n) == expected

    def test_even_m_ends_stacked_in_southwest_corner(self):
        m, n = 4, 5
        expected = Configuration.from_pairs([((m - 1, 0), ("G", "B"))])
        assert final_config("fsync_phi1_l3_chir_k2", m, n) == expected


class TestAlgorithm5Endings:
    """Section 4.2.7, 'End of exploration'."""

    def test_odd_m_ends_with_three_robots_in_southwest_corner(self):
        m, n = 5, 4
        expected = Configuration.from_pairs([((m - 1, 0), ("G", "G", "W"))])
        assert final_config("fsync_phi1_l2_chir_k3", m, n) == expected

    def test_even_m_ends_with_three_robots_in_southeast_corner(self):
        m, n = 4, 5
        expected = Configuration.from_pairs([((m - 1, n - 1), ("G", "W", "W"))])
        assert final_config("fsync_phi1_l2_chir_k3", m, n) == expected


class TestAlgorithm4Endings:
    """Section 4.2.6, 'End of exploration' (m odd case spelled out)."""

    def test_odd_m_ending(self):
        m, n = 5, 5
        expected = Configuration.from_pairs(
            [((m - 2, 0), ("G",)), ((m - 1, 0), ("W", "W", "B"))]
        )
        assert final_config("fsync_phi1_l3_nochir_k4", m, n) == expected


class TestAlgorithm6Endings:
    """Section 4.3.1, 'End of exploration'."""

    def test_odd_m_ends_in_southeast_corner(self):
        m, n = 5, 6
        expected = Configuration.from_pairs([((m - 1, n - 2), ("G",)), ((m - 1, n - 1), ("W",))])
        assert final_config("async_phi2_l3_chir_k2", m, n) == expected

    def test_even_m_ends_in_southwest_corner(self):
        m, n = 4, 6
        expected = Configuration.from_pairs([((m - 1, 0), ("B",)), ((m - 1, 1), ("W",))])
        assert final_config("async_phi2_l3_chir_k2", m, n) == expected


class TestAlgorithm7Endings:
    """Section 4.3.2, 'End of exploration' (m odd case spelled out)."""

    def test_odd_m_ending(self):
        m, n = 5, 6
        expected = Configuration.from_pairs(
            [((m - 2, 1), ("G",)), ((m - 1, 0), ("W",)), ((m - 1, 1), ("B",))]
        )
        assert final_config("async_phi2_l3_nochir_k3", m, n) == expected


class TestAlgorithm10Endings:
    """Section 4.3.5, 'End of exploration'."""

    def test_odd_m_ends_stacked_in_southeast_corner(self):
        m, n = 5, 5
        expected = Configuration.from_pairs([((m - 1, n - 2), ("G",)), ((m - 1, n - 1), ("G", "W"))])
        assert final_config("async_phi1_l3_chir_k3", m, n) == expected

    def test_even_m_ends_at_the_west_end(self):
        m, n = 4, 5
        expected = Configuration.from_pairs([((m - 1, 0), ("W", "B")), ((m - 1, 1), ("W",))])
        assert final_config("async_phi1_l3_chir_k3", m, n) == expected


@pytest.mark.parametrize(
    "name,placement",
    [
        ("fsync_phi2_l2_chir_k2", [((0, 0), ("G",)), ((0, 1), ("W",))]),
        ("fsync_phi2_l2_nochir_k3", [((0, 0), ("G",)), ((0, 1), ("G",)), ((1, 0), ("W",))]),
        ("fsync_phi1_l3_chir_k2", [((0, 0), ("G",)), ((0, 1), ("W",))]),
        (
            "fsync_phi1_l3_nochir_k4",
            [((0, 0), ("G",)), ((0, 1), ("W",)), ((1, 0), ("B",)), ((1, 1), ("W",))],
        ),
        ("fsync_phi1_l2_chir_k3", [((0, 0), ("G",)), ((0, 1), ("G",)), ((1, 0), ("W",))]),
        ("async_phi2_l3_chir_k2", [((0, 0), ("G",)), ((0, 1), ("W",))]),
        ("async_phi2_l3_nochir_k3", [((0, 0), ("G",)), ((0, 1), ("W",)), ((1, 0), ("B",))]),
        ("async_phi2_l2_chir_k3", [((0, 0), ("G",)), ((0, 1), ("W",)), ((1, 0), ("G",))]),
        (
            "async_phi2_l2_nochir_k4",
            [((0, 0), ("G",)), ((0, 1), ("W",)), ((0, 2), ("W",)), ((1, 0), ("W",))],
        ),
        ("async_phi1_l3_chir_k3", [((0, 0), ("G",)), ((0, 1), ("W",)), ((0, 2), ("W",))]),
    ],
)
def test_initial_configurations_match_the_paper(name, placement):
    algorithm = get(name)
    world = algorithm.initial_world(Grid(max(3, algorithm.min_m), max(4, algorithm.min_n)))
    assert world.configuration() == Configuration.from_pairs(placement)
