"""Tests for the Theorem 1 machinery (Section 3)."""

from __future__ import annotations

import pytest

from repro.algorithms import get
from repro.core import Grid
from repro.impossibility import (
    adversary_prevents_node,
    candidate_two_robot_algorithms,
    demonstrate_theorem1,
    refute_terminating_exploration,
)


class TestCandidates:
    def test_candidate_library_contents(self):
        candidates = candidate_two_robot_algorithms()
        assert len(candidates) >= 3
        assert all(algorithm.k == 2 and algorithm.phi == 1 for algorithm in candidates.values())
        assert "fsync_phi1_l3_chir_k2" in candidates


class TestRefuter:
    @pytest.mark.parametrize("name", sorted(candidate_two_robot_algorithms()))
    def test_every_two_robot_candidate_is_refuted_under_ssync(self, name):
        algorithm = candidate_two_robot_algorithms()[name]
        witness = refute_terminating_exploration(algorithm, Grid(4, 4), model="SSYNC")
        assert witness is not None, f"{name} unexpectedly survived the SSYNC adversary"
        assert witness.kind in ("terminal", "cycle")

    def test_paper_upper_bound_algorithm_survives(self):
        # Three robots suffice (Table 1, phi=1 SSYNC/ASYNC row): the refuter
        # must NOT find a counterexample for the paper's k=3 algorithm.
        algorithm = get("async_phi1_l3_chir_k3")
        assert refute_terminating_exploration(algorithm, Grid(3, 4), model="SSYNC") is None

    def test_node_already_occupied_returns_none(self):
        algorithm = get("fsync_phi1_l3_chir_k2")
        assert adversary_prevents_node(algorithm, Grid(3, 4), (0, 0), model="SSYNC") is None

    def test_witness_mentions_a_never_visited_node(self):
        algorithm = candidate_two_robot_algorithms()["candidate_chaser_phi1_k2"]
        witness = refute_terminating_exploration(algorithm, Grid(3, 3), model="SSYNC")
        assert witness is not None
        assert Grid(3, 3).contains(witness.node)

    def test_refutation_also_holds_in_async(self):
        # Executions of SSYNC exist in ASYNC, so the ASYNC adversary also wins.
        algorithm = get("fsync_phi1_l3_chir_k2")
        witness = refute_terminating_exploration(algorithm, Grid(3, 3), model="ASYNC")
        assert witness is not None


class TestDemonstration:
    def test_demonstration_report(self):
        report = demonstrate_theorem1(3, 4)
        assert report.all_candidates_refuted
        assert report.control_survives
        text = str(report)
        assert "Theorem 1" in text and "adversary" in text

    def test_grid_inner_node_premise(self):
        # The proof's premise: grids with m, n >= 9 contain at least nine inner
        # nodes (so the adversary's confinement wastes only a few of them).
        assert len(Grid(9, 9).inner_nodes()) >= 9
        assert len(Grid(10, 12).inner_nodes()) >= 9
