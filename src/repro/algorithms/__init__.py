"""The paper's fourteen terminating grid exploration algorithms.

Each ``algNN_*`` module encodes one algorithm of Section 4 as an executable
rule set; :mod:`repro.algorithms.registry` exposes them by name and by
Table 1 coordinates; :mod:`repro.algorithms.derive` implements the paper's
"replace one color by a stack of two robots" construction used for the
single-color variants (Sections 4.2.3, 4.2.4 and 4.2.8).
"""

from .registry import all_algorithms, find, get, names, table1_rows

__all__ = ["all_algorithms", "find", "get", "names", "table1_rows"]
