"""Algorithm 4 — FSYNC, phi = 1, ell = 3, no common chirality, k = 4 (Section 4.2.6).

Without chirality and with visibility one, four robots travel as a 2x2
block whose corner colors encode the travel direction:

* **Proceeding east** (R1-R4, northwest-anchored): ``G`` northwest, ``W``
  northeast, ``B`` southwest, ``W`` southeast; all four step east every
  round.
* **Turning west** (R5-R10, Figure 9): at the east border the two robots
  hugging the wall drop one row while the other column slides east,
  briefly forming a ``{B, W}`` stack; the stack then splits and the block
  reassembles one row further south as the mirror image of the eastward
  block, which (matching being closed under reflection) reuses the same
  rules for the westward sweep.
* **End of exploration**: the sweep ends with three robots stacked on a
  southern corner (``{W, W, B}``) and the last ``G`` just above it; the
  configuration matches no guard.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import B, G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 4 of the paper."""
    rules = (
        # ---- proceeding (drawn for the eastward direction) ----------------------
        # R1: northeast W steps east (G behind it, the other W below it).
        Rule("R1", W, Guard.build(1, W=occ(G), S=occ(W), E=EMPTY), W, "E"),
        # R2: northwest G steps east (W ahead, B below); at the border the same
        #     rule slides G onto the node the W is leaving.
        Rule("R2", G, Guard.build(1, E=occ(W), S=occ(B)), G, "E"),
        # R3: southeast W steps east (B behind it, the other W above it).
        Rule("R3", W, Guard.build(1, W=occ(B), N=occ(W), E=EMPTY), W, "E"),
        # R4: southwest B steps east (G above, W ahead); at the border the same
        #     rule slides B onto the node the W is leaving.
        Rule("R4", B, Guard.build(1, N=occ(G), E=occ(W)), B, "E"),
        # ---- turning (Figure 9) ---------------------------------------------------
        # R5: at the border the northeast W drops onto the node of the
        #     southeast W (which drops simultaneously via R6); the same rule
        #     closes the terminal {W, W, B} stack at the end of exploration.
        Rule("R5", W, Guard.build(1, W=occ(G), S=occ(W), E=WALL), W, "S"),
        # R6: the southeast W drops one row along the border.
        Rule("R6", W, Guard.build(1, W=occ(B), N=occ(W), E=WALL, S=EMPTY), W, "S"),
        # R7: the W of the {B, W} stack heads away from the border, back over
        #     the row just explored.
        Rule("R7", W, Guard.build(1, C=occ(B, W), N=occ(G), S=occ(W), E=WALL, W=EMPTY), W, "W"),
        # R8: the W below the stack also heads away from the border.
        Rule("R8", W, Guard.build(1, N=occ(B, W), E=WALL, W=EMPTY), W, "W"),
        # R9: the B of the {B, W} stack continues south along the border.
        Rule("R9", B, Guard.build(1, C=occ(B, W), N=occ(G), S=occ(W), E=WALL), B, "S"),
        # R10: the G drops onto the node the stack is vacating, completing the
        #      mirrored block for the return sweep.
        Rule("R10", G, Guard.build(1, S=occ(B, W), E=WALL, W=EMPTY), G, "S"),
    )
    return Algorithm(
        name="fsync_phi1_l3_nochir_k4",
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W, B),
        chirality=False,
        k=4,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W), ((1, 0), B), ((1, 1), W)),
        min_m=2,
        min_n=3,
        paper_section="4.2.6",
        description="Algorithm 4: FSYNC, phi=1, three colors, no chirality, four robots",
        optimal=False,
    )


#: Algorithm 4 of the paper, ready to simulate.
ALGORITHM = build()
