"""Algorithm 7 — ASYNC, phi = 2, ell = 3, no common chirality, k = 3 (Section 4.3.2).

Three robots, three colors, visibility two, no chirality, correct under the
asynchronous scheduler.  As in Algorithm 6, at most one robot is enabled at
any reachable configuration, so Look/Compute/Move interleavings cannot
create stale-snapshot hazards, and the color-change intermediates of rules
R5 and R7 enable no rule (Figure 14).

* **Proceeding east** (R1-R3): ``W`` leads on the sweep row, ``G`` trails,
  ``B`` rides one row below the trailing ``G``; the three robots cycle
  B -> W -> G, each moving one step east.
* **Turning west** (R4-R7, Figure 14): at the east border ``B`` drops
  south, ``G`` recolors to ``W`` and drops south, ``B`` tucks back under
  the border column, and finally the old leader recolors to ``G`` and
  drops south, yielding the mirror formation one row down.
* **End of exploration** (R8): when the sweep ends against the last row the
  leading ``W`` steps onto the one unvisited corner node and everything
  halts.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import B, G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 7 of the paper."""
    rules = (
        # ---- proceeding east (one robot enabled at a time) ----------------------
        # R1: B, sitting below the trailing G with the leader W on its
        #     diagonal, hops east under the leader.
        Rule("R1", B, Guard.build(2, N=occ(G), NE=occ(W), E=EMPTY, EE=EMPTY), B, "E"),
        # R2: the leader W, with G behind and B now below it, steps east.
        Rule("R2", W, Guard.build(2, W=occ(G), S=occ(B), E=EMPTY), W, "E"),
        # R3: the trailing G, with the leader two ahead and B on its forward
        #     diagonal, closes the gap.
        Rule("R3", G, Guard.build(2, EE=occ(W), SE=occ(B), E=EMPTY), G, "E"),
        # ---- turning west (Figure 14) ---------------------------------------------
        # R4: at the east border (wall two cells ahead of B) B drops south.
        Rule("R4", B, Guard.build(2, N=occ(G), NE=occ(W), EE=WALL, S=EMPTY), B, "S"),
        # R5: the trailing G, with B now two rows below it, recolors to W and
        #     drops south.
        Rule("R5", G, Guard.build(2, E=occ(W), EE=WALL, S=EMPTY, SS=occ(B)), W, "S"),
        # R6: B hops east into the border column, under the descending pair.
        #     The two-cells-behind constraint keeps the reflection from
        #     reading the move as "away from the border".
        Rule("R6", B, Guard.build(2, N=occ(W), E=EMPTY, EE=WALL, WW=EMPTY), B, "E"),
        # R7: the old leader, with the new W on its rear diagonal and B two
        #     rows below, recolors to G and drops south, completing the
        #     mirrored formation.
        Rule("R7", W, Guard.build(2, SW=occ(W), SS=occ(B), E=WALL, S=EMPTY), G, "S"),
        # ---- end of exploration -----------------------------------------------------
        # R8: the sweep has reached the far corner of the second-to-last row;
        #     the leading W steps onto the unvisited corner node below it.
        Rule("R8", W, Guard.build(2, E=occ(G), SE=occ(B), W=WALL, S=EMPTY, SS=WALL), W, "S"),
    )
    return Algorithm(
        name="async_phi2_l3_nochir_k3",
        synchrony=Synchrony.ASYNC,
        phi=2,
        colors=(G, W, B),
        chirality=False,
        k=3,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W), ((1, 0), B)),
        min_m=2,
        # Reproduction note: the paper claims n >= 3, but on a 3-column grid
        # the B robot's view while re-entering the border column is
        # reflection-symmetric (both side walls two cells away), so without a
        # common chirality no guard can orient the move.  We claim n >= 4 and
        # record the gap in EXPERIMENTS.md.
        min_n=4,
        paper_section="4.3.2",
        description="Algorithm 7: ASYNC, phi=2, three colors, no chirality, three robots",
        optimal=False,
    )


#: Algorithm 7 of the paper, ready to simulate.
ALGORITHM = build()
