"""The paper's color-elimination construction (Sections 4.2.3, 4.2.4, 4.2.8).

Several of the paper's algorithms never change colors and never let robots
of two different colors share a node.  For those, one color can be removed
by *representing a robot of that color with a stack of two robots of
another color*: every guard cell that required ``{X}`` now requires
``{Y, Y}``, every rule executed by the ``X`` robot is executed (in FSYNC,
simultaneously) by both robots of the stack, and the initial configuration
places two ``Y`` robots where the ``X`` robot used to start.

:func:`replace_color_with_pair` performs that transformation mechanically
on an :class:`~repro.core.algorithm.Algorithm`, which is exactly how the
paper obtains

* Section 4.2.3 (phi = 2, one color, chirality, k = 3) from Algorithm 1,
* Section 4.2.4 (phi = 2, one color, no chirality, k = 4) from Algorithm 2,
* Section 4.2.8 (phi = 1, two colors, no chirality, k = 5) from Algorithm 4.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.algorithm import Algorithm
from ..core.colors import Color
from ..core.errors import AlgorithmError
from ..core.rules import CellKind, CellSpec, Guard, Rule, occ

__all__ = ["replace_color_with_pair"]


def _transform_multiset(colors: Sequence[Color], removed: Color, replacement: Color) -> Tuple[Color, ...]:
    """Replace every occurrence of ``removed`` by two ``replacement`` robots."""
    result = []
    for color in colors:
        if color == removed:
            result.extend([replacement, replacement])
        else:
            result.append(color)
    return tuple(sorted(result))


def _transform_spec(spec: CellSpec, removed: Color, replacement: Color) -> CellSpec:
    if spec.kind is not CellKind.OCCUPIED:
        return spec
    return occ(*_transform_multiset(spec.colors, removed, replacement))


def _transform_rule(rule: Rule, removed: Color, replacement: Color) -> Rule:
    """Transform one rule of the source algorithm."""
    cells = {}
    for offset, spec in rule.guard.as_dict().items():
        cells[offset] = _transform_spec(spec, removed, replacement)
    executed_by_pair = rule.self_color == removed
    if executed_by_pair and (0, 0) not in cells:
        # The paper's default centre ("the robot is alone") becomes "the two
        # robots of the stack are alone together".
        cells[(0, 0)] = occ(replacement, replacement)
    guard = Guard.from_mapping(rule.guard.phi, cells, default=rule.guard.default)
    return Rule(
        name=rule.name,
        self_color=replacement if executed_by_pair else rule.self_color,
        guard=guard,
        new_color=replacement if rule.new_color == removed else rule.new_color,
        move=rule.move,
    )


def replace_color_with_pair(
    source: Algorithm,
    removed: Color,
    replacement: Color,
    name: str,
    paper_section: str,
    description: str = "",
    optimal: bool = False,
    synchrony: Optional[str] = None,
) -> Algorithm:
    """Derive a new algorithm by representing every ``removed``-colored robot
    with a stack of two ``replacement``-colored robots.

    The construction is only sound for algorithms that (as the paper notes
    for Algorithms 1, 2 and 4) never change the ``removed`` color and never
    stack a ``removed`` robot with a differently-colored robot; validity is
    re-established empirically by the verification suite, not assumed.
    """
    if removed not in source.colors:
        raise AlgorithmError(f"{source.name} has no color {removed!r} to remove")
    if replacement not in source.colors:
        raise AlgorithmError(f"replacement color {replacement!r} not in {source.name}'s palette")
    if removed == replacement:
        raise AlgorithmError("removed and replacement colors must differ")
    for rule in source.rules:
        if rule.self_color == removed and rule.new_color != removed:
            raise AlgorithmError(
                f"{source.name}: rule {rule.name} changes the color {removed!r};"
                " the pair construction does not apply"
            )

    removed_count = sum(1 for _node, color in source.placement(source.min_m, source.min_n) if color == removed)

    def initial_placement(m: int, n: int):
        placement = []
        for node, color in source.initial_placement(m, n):
            if color == removed:
                placement.append((node, replacement))
                placement.append((node, replacement))
            else:
                placement.append((node, color))
        return placement

    return Algorithm(
        name=name,
        synchrony=synchrony if synchrony is not None else source.synchrony,
        phi=source.phi,
        colors=tuple(color for color in source.colors if color != removed),
        chirality=source.chirality,
        k=source.k + removed_count,
        rules=tuple(_transform_rule(rule, removed, replacement) for rule in source.rules),
        initial_placement=initial_placement,
        min_m=source.min_m,
        min_n=source.min_n,
        paper_section=paper_section,
        description=description or (
            f"Derived from {source.name} by replacing color {removed} with a pair of {replacement} robots"
        ),
        optimal=optimal,
    )
