"""Algorithm 9 — ASYNC, phi = 2, ell = 2, no common chirality, k = 4 (Section 4.3.4).

Four robots, two colors, no chirality.  A single ``G`` anchors a three-``W``
convoy: two ``W`` robots ahead of the ``G`` on the sweep row and one ``W``
below it.  The convoy advances one robot at a time (R1-R4, Figure 17), so
at most one robot is enabled at any reachable configuration and the
algorithm is asynchronous-safe; at the border an eight-step pivot
(R5-R10 followed by R4, Figure 18) rebuilds the mirror convoy one row
further south, and reflection-closed matching lets the same rules drive
both sweep directions.

The end of exploration (Section 4.3.4) finishes with the four robots on
four distinct nodes of the two last rows after a final R5 step.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 9 of the paper."""
    rules = (
        # ---- proceeding east (Figure 17) ----------------------------------------
        # R1: the W below the G hops east first.
        Rule("R1", W, Guard.build(2, N=occ(G), NE=occ(W), E=EMPTY), W, "E"),
        # R2: the leading W extends the convoy eastward.
        Rule("R2", W, Guard.build(2, W=occ(W), WW=occ(G), SW=occ(W), E=EMPTY), W, "E"),
        # R3: the W next to the G follows, re-opening the gap behind the leader.
        Rule("R3", W, Guard.build(2, W=occ(G), S=occ(W), EE=occ(W), E=EMPTY), W, "E"),
        # R4: the G closes the convoy (the same rule, matched under a rotation,
        #     performs the final step of the border pivot in Figure 18(g)-(h)).
        Rule("R4", G, Guard.build(2, EE=occ(W), SE=occ(W), E=EMPTY), G, "E"),
        # ---- turning west (Figure 18) ----------------------------------------------
        # R5: the W at the border drops south (also the final move of the
        #     exploration, stepping onto the last unvisited corner node).
        Rule("R5", W, Guard.build(2, W=occ(W), WW=occ(G), SW=occ(W), E=WALL, S=EMPTY), W, "S"),
        # R6: the W left on the sweep row recolors to G while idle.
        Rule("R6", W, Guard.build(2, W=occ(G), S=occ(W), SE=occ(W), EE=WALL), G, None),
        # R7: the original G, now west of the new G, drops south.
        Rule("R7", G, Guard.build(2, E=occ(G), SE=occ(W), S=EMPTY), G, "S"),
        # R8: the new G slides into the border column.
        Rule("R8", G, Guard.build(2, S=occ(W), SW=occ(G), SE=occ(W), E=EMPTY, EE=WALL), G, "E"),
        # R9: the G that dropped in R7 recolors back to W while idle.
        Rule("R9", G, Guard.build(2, E=occ(W), EE=occ(W), N=EMPTY, NE=EMPTY), W, None),
        # R10: the W in the border column drops south, handing the convoy to
        #      the mirrored formation.
        Rule("R10", W, Guard.build(2, W=occ(W), WW=occ(W), N=occ(G), E=WALL, S=EMPTY), W, "S"),
    )
    return Algorithm(
        name="async_phi2_l2_nochir_k4",
        synchrony=Synchrony.ASYNC,
        phi=2,
        colors=(G, W),
        chirality=False,
        k=4,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W), ((0, 2), W), ((1, 0), W)),
        min_m=2,
        min_n=4,
        paper_section="4.3.4",
        description="Algorithm 9: ASYNC, phi=2, two colors, no chirality, four robots",
        optimal=False,
    )


#: Algorithm 9 of the paper, ready to simulate.
ALGORITHM = build()
