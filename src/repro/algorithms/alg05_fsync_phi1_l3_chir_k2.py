"""Algorithm 3 — FSYNC, phi = 1, ell = 3, common chirality, k = 2 (Section 4.2.5).

Optimal in the number of robots.  Two robots with colors from
``{G, W, B}`` sweep the boustrophedon route with visibility one:

* **Proceeding east** (R1, R2): ``G`` behind, ``W`` ahead, both step east.
* **Turning west** (R3-R5, Figure 7): at the east border ``W`` turns into a
  ``G`` and drops south while the old ``G`` closes in; chirality then lets
  the two (now identically colored) robots tell "north of the pair" from
  "south of the pair", the southern one recolors to ``B`` and heads west
  (R4) while the northern one drops onto the vacated node (R5).
* **Proceeding west** (R6, R7): ``B`` ahead (west), ``G`` behind, adjacent.
* **Turning east** (R8-R10, Figure 8): at the west border ``B`` drops
  south, recolors to ``W`` and steps east (R9) while ``G`` follows south
  (R10), restoring the proceeding-east formation.
* **End of exploration**: with ``m`` odd the trailing ``G`` stacks onto the
  ``W`` in the southeast corner; with ``m`` even it stacks onto the ``B``
  in the southwest corner.  Both stacks are terminal.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import B, G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 3 of the paper."""
    rules = (
        # ---- proceeding east -------------------------------------------------
        # R1: leading W steps east while G sits right behind it.
        Rule("R1", W, Guard.build(1, W=occ(G), E=EMPTY), W, "E"),
        # R2: trailing G follows the W east (also used to stack at the very end).
        Rule("R2", G, Guard.build(1, E=occ(W)), G, "E"),
        # ---- turning west (Figure 7) ------------------------------------------
        # R3: at the east border W recolors to G and drops south.
        Rule("R3", W, Guard.build(1, W=occ(G), E=WALL, S=EMPTY), G, "S"),
        # R4: the southern robot of the vertical G/G pair at the east border
        #     recolors to B and heads west (chirality tells it from R5's robot).
        Rule("R4", G, Guard.build(1, N=occ(G), E=WALL, W=EMPTY), B, "W"),
        # R5: the northern robot of the same pair drops onto the vacated node.
        Rule("R5", G, Guard.build(1, S=occ(G), E=WALL, W=EMPTY), G, "S"),
        # ---- proceeding west -------------------------------------------------
        # R6: leading B steps west while G sits right behind it.  The row just
        #     explored (north) is known to be empty; constraining it prevents a
        #     rotated match along the west wall during the eastward turn.
        Rule("R6", B, Guard.build(1, E=occ(G), W=EMPTY, N=EMPTY), B, "W"),
        # R7: trailing G follows the B west (also used to stack at the very
        #     end).  The empty-north constraint separates it from R10, which
        #     handles the G against the west wall during the eastward turn.
        Rule("R7", G, Guard.build(1, W=occ(B), N=EMPTY), G, "W"),
        # ---- turning east (Figure 8) ------------------------------------------
        # R8: at the west border B drops south.  The empty-north constraint
        #     pins the orientation in the southwest corner, where both the
        #     west and the south cells are walls and a rotated match would
        #     otherwise send B east instead of south.
        Rule("R8", B, Guard.build(1, E=occ(G), W=WALL, S=EMPTY, N=EMPTY), B, "S"),
        # R9: B, now below the G and hugging the west wall, recolors to W and
        #     steps east to become the new leader of the eastward sweep.
        Rule("R9", B, Guard.build(1, N=occ(G), W=WALL, E=EMPTY), W, "E"),
        # R10: G follows the departing B south along the west wall.
        Rule("R10", G, Guard.build(1, S=occ(B), W=WALL), G, "S"),
    )
    return Algorithm(
        name="fsync_phi1_l3_chir_k2",
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W, B),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W)),
        min_m=2,
        min_n=3,
        paper_section="4.2.5",
        description="Algorithm 3: FSYNC, phi=1, three colors, common chirality, two robots",
        optimal=True,
    )


#: Algorithm 3 of the paper, ready to simulate.
ALGORITHM = build()
