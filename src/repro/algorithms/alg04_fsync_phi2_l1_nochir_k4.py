"""Section 4.2.4 — FSYNC, phi = 2, ell = 1, no common chirality, k = 4.

Obtained from Algorithm 2 by the paper's color-elimination construction:
the single ``W`` robot is represented by a stack of two ``G`` robots, so
only one color remains.  See :mod:`repro.algorithms.derive`.
"""

from __future__ import annotations

from ..core.colors import G, W
from . import alg02_fsync_phi2_l2_nochir_k3 as _source
from .derive import replace_color_with_pair

__all__ = ["ALGORITHM", "build"]


def build():
    """Construct the Section 4.2.4 algorithm from Algorithm 2."""
    return replace_color_with_pair(
        _source.ALGORITHM,
        removed=W,
        replacement=G,
        name="fsync_phi2_l1_nochir_k4",
        paper_section="4.2.4",
        description=(
            "Section 4.2.4: FSYNC, phi=2, one color, no chirality, four robots"
            " (Algorithm 2 with the W robot replaced by a pair of G robots)"
        ),
        optimal=False,
    )


#: The Section 4.2.4 algorithm, ready to simulate.
ALGORITHM = build()
