"""Algorithm 10 — ASYNC, phi = 1, ell = 3, common chirality, k = 3 (Section 4.3.5).

Optimal in the number of robots.  Visibility one forces the three robots to
travel *through* each other: the rear robot climbs onto its neighbour,
recolors, and hops off ahead — the ring-exploration gait of Ooshita &
Tixeuil adapted to a single grid row (Figure 19).  One full row is swept
per pass; the pivot at each border (Figures 20-21) drops the convoy one
row and swaps the roles of the colors (``G`` pushes ``W``/``W`` eastward,
``W`` pushes ``B``/``B`` westward).

At most one robot is enabled at any reachable configuration and every
color-change intermediate enables no rule, which is exactly the paper's
argument for ASYNC correctness.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import B, G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 10 of the paper."""
    rules = (
        # ---- proceeding east (Figure 19) -----------------------------------------
        # R1: the trailing G climbs onto the W ahead of it (the gray default on
        #     the remaining cells rejects any third robot nearby, which is what
        #     keeps the rule quiet during the border pivots).
        Rule("R1", G, Guard.build(1, E=occ(W)), G, "E"),
        # R2: the W sharing a node with the G recolors to G and hops onto the
        #     next W.
        Rule("R2", W, Guard.build(1, C=occ(G, W), E=occ(W)), G, "E"),
        # R3: the G sharing a node with a W (and seeing the other G behind)
        #     recolors to W and hops ahead, re-extending the convoy.
        Rule("R3", G, Guard.build(1, C=occ(G, W), W=occ(G), E=EMPTY), W, "E"),
        # ---- turning west (Figure 20) ------------------------------------------------
        # R4: at the east border the stacked G recolors to B and drops south.
        Rule("R4", G, Guard.build(1, C=occ(G, W), W=occ(G), E=WALL, S=EMPTY), B, "S"),
        # R5: the stacked G (its partner W now alone against the border, the
        #     new B below) drops south onto the B.
        Rule("R5", G, Guard.build(1, C=occ(G, W), S=occ(B), E=WALL), G, "S"),
        # R6: the G stacked with the B recolors to B and heads west.
        Rule("R6", G, Guard.build(1, C=occ(G, B), N=occ(W), E=WALL, W=EMPTY), B, "W"),
        # R7: a W moves onto the single B next to it (used both to close the
        #     westward turn and as the westward analogue of R1).
        Rule("R7", W, Guard.build(1, W=occ(B)), W, "W"),
        # ---- proceeding west (westward analogues of R2 and R3) ----------------------
        # R8: the B sharing a node with the W recolors to W and hops onto the
        #     next B.
        Rule("R8", B, Guard.build(1, C=occ(B, W), W=occ(B)), W, "W"),
        # R9: the W sharing a node with a B (the other W behind it) recolors
        #     to B and hops ahead.
        Rule("R9", W, Guard.build(1, C=occ(B, W), E=occ(W), W=EMPTY), B, "W"),
        # ---- turning east (Figure 21) -------------------------------------------------
        # R10: at the west border the stacked W recolors to G and drops south.
        Rule("R10", W, Guard.build(1, C=occ(B, W), E=occ(W), W=WALL, S=EMPTY), G, "S"),
        # R11: the stacked W (its partner B now alone against the border, the
        #      new G below) recolors to B and drops south onto the G.  The
        #      empty-north constraint pins the rotation so the rule stays
        #      disabled in the color-change intermediate of R4 at the
        #      northeast corner, where two walls meet.
        Rule("R11", W, Guard.build(1, C=occ(B, W), S=occ(G), W=WALL, N=EMPTY), B, "S"),
        # R12: the B stacked with the G recolors to G and heads east.
        Rule("R12", B, Guard.build(1, C=occ(G, B), N=occ(B), W=WALL, E=EMPTY), G, "E"),
        # R13: the lone B at the border drops south onto the G below it.
        Rule("R13", B, Guard.build(1, S=occ(G), W=WALL, E=EMPTY, N=EMPTY), B, "S"),
        # R14: the B stacked with that G hops east onto the other G.
        Rule("R14", B, Guard.build(1, C=occ(G, B), E=occ(G), W=WALL, N=EMPTY), B, "E"),
        # R15: the B stacked with the eastern G recolors to W, recreating the
        #      eastward convoy (Figure 19(d)).
        Rule("R15", B, Guard.build(1, C=occ(G, B), W=occ(G), E=EMPTY), W, None),
    )
    return Algorithm(
        name="async_phi1_l3_chir_k3",
        synchrony=Synchrony.ASYNC,
        phi=1,
        colors=(G, W, B),
        chirality=True,
        k=3,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W), ((0, 2), W)),
        min_m=2,
        min_n=3,
        paper_section="4.3.5",
        description="Algorithm 10: ASYNC, phi=1, three colors, common chirality, three robots",
        optimal=True,
    )


#: Algorithm 10 of the paper, ready to simulate.
ALGORITHM = build()
