"""Algorithm 5 — FSYNC, phi = 1, ell = 2, common chirality, k = 3 (Section 4.2.7).

Optimal in the number of robots.  Three robots with colors from ``{G, W}``
sweep the grid; the third robot trails one row below so that two colors
suffice with visibility one.

Formations (northwest-anchored coordinates, see Figures 10-11):

* **Proceeding east** (R1-R3): two ``G`` robots adjacent on row ``r`` and a
  ``W`` robot below the western ``G``; all three step east every round.
* **Turning west** (R4-R7, Figure 10): at the east border the eastern ``G``
  drops south onto the node the ``W`` is entering, forming a ``{G, W}``
  stack; the stack then splits (``G`` continues south, ``W`` heads west)
  while the remaining ``G`` recolors to ``W`` and drops south.
* **Proceeding west** (R8-R10): two ``W`` robots adjacent on row ``r + 1``
  and a ``G`` robot below the eastern ``W`` — the mirror formation, which
  chirality distinguishes from the eastward one.
* **Turning east** (R11-R14, Figure 11): the symmetric turn at the west
  border, producing the eastward formation two rows further south.
* **End of exploration**: the three robots finish stacked on a southern
  corner node (``{G, G, W}`` with ``m`` odd, ``{G, W, W}`` with ``m``
  even); the stacks match no guard, so the configuration is terminal.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 5 of the paper."""
    rules = (
        # ---- proceeding east -------------------------------------------------
        # R1: the eastern G of the pair steps east.
        Rule("R1", G, Guard.build(1, W=occ(G), E=EMPTY), G, "E"),
        # R2: the western G (recognised by the W below it) steps east.
        Rule("R2", G, Guard.build(1, E=occ(G), S=occ(W)), G, "E"),
        # R3: the trailing W steps east, staying below the western G.
        Rule("R3", W, Guard.build(1, N=occ(G), E=EMPTY), W, "E"),
        # ---- turning west (Figure 10) ------------------------------------------
        # R4: at the east border the eastern G drops south (onto the node the
        #     W is simultaneously entering).
        Rule("R4", G, Guard.build(1, W=occ(G), E=WALL, S=EMPTY), G, "S"),
        # R5: the G of the {G, W} stack at the east border continues south.
        Rule("R5", G, Guard.build(1, C=occ(G, W), N=occ(G), E=WALL, S=EMPTY), G, "S"),
        # R6: the W of the same stack heads west, becoming the western robot
        #     of the westward formation.
        Rule("R6", W, Guard.build(1, C=occ(G, W), N=occ(G), E=WALL, S=EMPTY, W=EMPTY), W, "W"),
        # R7: the G still on the northern row recolors to W and drops south
        #     (also closes the {G, W, W} terminal stack when m is even).
        Rule("R7", G, Guard.build(1, S=occ(G, W), E=WALL), W, "S"),
        # ---- proceeding west -------------------------------------------------
        # R8: the western W of the pair steps west.
        Rule("R8", W, Guard.build(1, E=occ(W), W=EMPTY), W, "W"),
        # R9: the eastern W (recognised by the G below it) steps west.
        Rule("R9", W, Guard.build(1, W=occ(W), S=occ(G)), W, "W"),
        # R10: the trailing G steps west, staying below the eastern W.
        Rule("R10", G, Guard.build(1, N=occ(W), W=EMPTY), G, "W"),
        # ---- turning east (Figure 11) -------------------------------------------
        # R11: at the west border the western W drops south (onto the node the
        #      G is simultaneously entering).
        Rule("R11", W, Guard.build(1, E=occ(W), W=WALL, S=EMPTY), W, "S"),
        # R12: the W of the {G, W} stack at the west border continues south.
        Rule("R12", W, Guard.build(1, C=occ(G, W), N=occ(W), W=WALL, S=EMPTY), W, "S"),
        # R13: the G of the same stack heads east, becoming the eastern robot
        #      of the eastward formation.
        Rule("R13", G, Guard.build(1, C=occ(G, W), N=occ(W), W=WALL, S=EMPTY, E=EMPTY), G, "E"),
        # R14: the W still on the northern row recolors to G and drops south
        #      (also closes the {G, G, W} terminal stack when m is odd).
        Rule("R14", W, Guard.build(1, S=occ(G, W), W=WALL), G, "S"),
    )
    return Algorithm(
        name="fsync_phi1_l2_chir_k3",
        synchrony=Synchrony.FSYNC,
        phi=1,
        colors=(G, W),
        chirality=True,
        k=3,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), G), ((1, 0), W)),
        min_m=2,
        min_n=3,
        paper_section="4.2.7",
        description="Algorithm 5: FSYNC, phi=1, two colors, common chirality, three robots",
        optimal=True,
    )


#: Algorithm 5 of the paper, ready to simulate.
ALGORITHM = build()
