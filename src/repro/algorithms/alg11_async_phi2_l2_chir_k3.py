"""Algorithm 8 — ASYNC, phi = 2, ell = 2, common chirality, k = 3 (Section 4.3.3).

Two colors only, so the travel direction is encoded in the *shape* of the
three-robot formation rather than in the palette.  At most one robot is
enabled at any reachable configuration, which is what makes the algorithm
asynchronous-safe.

* **Proceeding east** (R1-R3, northwest-anchored): a ``G`` on the sweep
  row, the ``W`` leader ahead of it, and a second ``G`` one row below the
  first; the three robots cycle W, north-G, south-G.
* **Turning west** (R4-R8, Figure 15): at the east border the ``W`` drops
  south, the southern ``G`` recolors to ``W``, the northern ``G`` slides
  into the border column and the two ``W`` robots and the ``G`` reassemble
  one row further south in the westward formation.
* **Proceeding west** (R9-R11): the ``W`` leader on the sweep row, the
  ``G`` behind it and the second ``W`` below the ``G``.
* **Turning east** (R12-R16, Figure 16): the symmetric pivot at the west
  border, including the idle recoloring (R13) that converts the westward
  formation back into the eastward one.
* **End of exploration**: with ``m`` even the last eastward sweep ends in
  the southeast corner right after R4; with ``m`` odd the last westward
  sweep ends in the southwest corner right after R12 (Section 4.3.3).
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 8 of the paper."""
    rules = (
        # ---- proceeding east -------------------------------------------------
        # R1: the W leader steps east (north G behind it, south G on its rear
        #     diagonal).
        Rule("R1", W, Guard.build(2, W=occ(G), SW=occ(G), E=EMPTY), W, "E"),
        # R2: the north G follows once the leader is two cells ahead.
        Rule("R2", G, Guard.build(2, EE=occ(W), S=occ(G), E=EMPTY), G, "E"),
        # R3: the south G closes the formation (the vacated node above it and
        #     the north G on its forward diagonal identify it).
        Rule("R3", G, Guard.build(2, NE=occ(G), N=EMPTY, E=EMPTY), G, "E"),
        # ---- turning west (Figure 15) ------------------------------------------
        # R4: at the east border the W drops south.
        Rule("R4", W, Guard.build(2, W=occ(G), SW=occ(G), E=WALL, S=EMPTY), W, "S"),
        # R5: the south G, squeezed between the north G and the W against the
        #     border, recolors to W without moving.
        Rule("R5", G, Guard.build(2, N=occ(G), E=occ(W), EE=WALL, S=EMPTY), W, None),
        # R6: the north G slides into the border column over the two W robots.
        Rule("R6", G, Guard.build(2, S=occ(W), SE=occ(W), E=EMPTY, EE=WALL), G, "E"),
        # R7: the W beside the border drops south.
        Rule("R7", W, Guard.build(2, W=occ(W), N=occ(G), E=WALL, S=EMPTY), W, "S"),
        # R8: the G in the border column drops south, completing the westward
        #     formation one row down.
        Rule("R8", G, Guard.build(2, SW=occ(W), SS=occ(W), E=WALL, S=EMPTY), G, "S"),
        # ---- proceeding west -------------------------------------------------
        # R9: the W leader steps west (G behind it, the other W on its rear
        #     diagonal).
        Rule("R9", W, Guard.build(2, E=occ(G), SE=occ(W), W=EMPTY), W, "W"),
        # R10: the G follows once the leader is two cells ahead.
        Rule("R10", G, Guard.build(2, WW=occ(W), S=occ(W), W=EMPTY), G, "W"),
        # R11: the trailing W closes the formation.
        Rule("R11", W, Guard.build(2, NW=occ(G), N=EMPTY, W=EMPTY), W, "W"),
        # ---- turning east (Figure 16) -------------------------------------------
        # R12: at the west border the W leader drops south (also the final
        #      move of the exploration when m is odd).
        Rule("R12", W, Guard.build(2, E=occ(G), SE=occ(W), W=WALL, S=EMPTY), W, "S"),
        # R13: that W recolors to G while idle, seeding the eastward pair.
        Rule("R13", W, Guard.build(2, E=occ(W), NE=occ(G), W=WALL, N=EMPTY, S=EMPTY), G, None),
        # R14: the G on the sweep row slides into the border column above the
        #      new G.
        Rule("R14", G, Guard.build(2, S=occ(W), SW=occ(G), W=EMPTY, WW=WALL), G, "W"),
        # R15: the southern G drops one row along the border.
        Rule("R15", G, Guard.build(2, N=occ(G), E=occ(W), W=WALL, S=EMPTY), G, "S"),
        # R16: the northern G drops onto the vacated node, completing the
        #      eastward formation.
        Rule("R16", G, Guard.build(2, SS=occ(G), SE=occ(W), S=EMPTY, W=WALL), G, "S"),
    )
    return Algorithm(
        name="async_phi2_l2_chir_k3",
        synchrony=Synchrony.ASYNC,
        phi=2,
        colors=(G, W),
        chirality=True,
        k=3,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W), ((1, 0), G)),
        min_m=2,
        min_n=3,
        paper_section="4.3.3",
        description="Algorithm 8: ASYNC, phi=2, two colors, common chirality, three robots",
        optimal=False,
    )


#: Algorithm 8 of the paper, ready to simulate.
ALGORITHM = build()
