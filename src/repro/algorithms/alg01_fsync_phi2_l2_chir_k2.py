"""Algorithm 1 — FSYNC, phi = 2, ell = 2, common chirality, k = 2 (Section 4.2.1).

Optimal in the number of robots (the lower bound of two is from Bramas et
al. [5]).  Two robots with colors ``G`` and ``W`` sweep the grid along the
boustrophedon route of Figure 3:

* **Proceeding east** (rules R1, R2): the robots travel adjacent, ``G``
  behind (west) and ``W`` ahead (east), both stepping east every round.
* **Turning west** (rules R3-R5, Figure 4): at the east border ``G`` drops
  one row south, then ``W`` drops south while ``G`` steps west, producing
  the proceeding-west formation.
* **Proceeding west** (rules R6, R7): the robots travel at distance two,
  ``G`` ahead (west) and ``W`` behind (east), both stepping west every
  round.
* **Turning east** (rules R8, R9, Figure 5): at the west border ``G`` drops
  south while ``W`` closes in, then ``W`` drops south, restoring the
  proceeding-east formation one row further south.
* **End of exploration**: with ``m`` odd the robots stop in the southeast
  corner; with ``m`` even rule R10 makes them merge on ``v_{m-1,1}``
  (Section 4.2.1, "End of exploration").

Guards below are transcriptions of the paper's rule figures: each names
only the cells the figure draws as occupied, white (must be empty) or black
(must be off-grid); all remaining cells are gray (empty or off-grid), the
library default.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 1."""
    rules = (
        # ---- proceeding east -------------------------------------------------
        # R1: the leading W robot steps east, keeping G adjacent behind it.
        Rule("R1", W, Guard.build(2, W=occ(G), E=EMPTY), W, "E"),
        # R2: the trailing G robot follows W east while the row continues.
        Rule("R2", G, Guard.build(2, E=occ(W), EE=EMPTY), G, "E"),
        # ---- turning west (Figure 4) ----------------------------------------
        # R3: at the east border (wall beyond W) G starts the turn by moving south.
        Rule("R3", G, Guard.build(2, E=occ(W), EE=WALL, S=EMPTY), G, "S"),
        # R4: W, hugging the east wall with G on its southwest diagonal, drops south.
        Rule("R4", W, Guard.build(2, SW=occ(G), E=WALL, S=EMPTY), W, "S"),
        # R5: G, one row below with W on its northeast diagonal and the wall
        #     two cells east, heads west to open the proceeding-west formation.
        Rule("R5", G, Guard.build(2, NE=occ(W), EE=WALL, W=EMPTY), G, "W"),
        # ---- proceeding west -------------------------------------------------
        # R6: the leading G robot steps west with W two cells behind.
        Rule("R6", G, Guard.build(2, EE=occ(W), W=EMPTY), G, "W"),
        # R7: the trailing W robot steps west with G two cells ahead.
        Rule("R7", W, Guard.build(2, WW=occ(G), W=EMPTY), W, "W"),
        # ---- turning east (Figure 5) -----------------------------------------
        # R8: at the west border G starts the turn by moving south.
        Rule("R8", G, Guard.build(2, EE=occ(W), W=WALL, S=EMPTY), G, "S"),
        # R9: W, with G on its southwest diagonal and the wall two cells west,
        #     drops south to restore the proceeding-east formation.
        Rule("R9", W, Guard.build(2, SW=occ(G), WW=WALL, S=EMPTY), W, "S"),
        # ---- end of exploration (m even) --------------------------------------
        # R10: in the southwest corner of the last row G steps east onto the
        #      node W is about to reach, producing the terminal {G, W} stack.
        Rule("R10", G, Guard.build(2, EE=occ(W), W=WALL, S=WALL, E=EMPTY), G, "E"),
    )
    return Algorithm(
        name="fsync_phi2_l2_chir_k2",
        synchrony=Synchrony.FSYNC,
        phi=2,
        colors=(G, W),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W)),
        min_m=2,
        min_n=3,
        paper_section="4.2.1",
        description="Algorithm 1: FSYNC, phi=2, two colors, common chirality, two robots",
        optimal=True,
    )


#: Algorithm 1, ready to simulate.
ALGORITHM = build()
