"""Shared helpers for the algorithm modules.

Every algorithm module of this package encodes one of the paper's fourteen
terminating-exploration algorithms as a :class:`~repro.core.algorithm.Algorithm`
instance named ``ALGORITHM``.  Initial configurations are anchored at the
northwest corner of the grid exactly as in the paper (``v_{0,0}``,
``v_{0,1}``, ...).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from ..core.colors import Color
from ..core.grid import Node

__all__ = ["placement", "Placement"]

#: An initial placement: list of ``(node, color)`` pairs.
Placement = List[Tuple[Node, Color]]


def placement(*entries: Tuple[Node, Color]) -> Callable[[int, int], Placement]:
    """Build an initial-placement function from fixed ``(node, color)`` entries.

    The paper's initial configurations do not depend on the grid size (they
    always sit in the northwest corner), so most algorithms can use this
    constant placement helper.
    """

    fixed: Placement = [(node, color) for node, color in entries]

    def _place(m: int, n: int) -> Placement:
        return list(fixed)

    return _place
