"""Section 4.2.3 — FSYNC, phi = 2, ell = 1, common chirality, k = 3.

Optimal in the number of robots.  Obtained from Algorithm 1 by the paper's
color-elimination construction: the single ``W`` robot is represented by a
stack of two ``G`` robots, so only one color remains.  See
:mod:`repro.algorithms.derive`.
"""

from __future__ import annotations

from ..core.colors import G, W
from . import alg01_fsync_phi2_l2_chir_k2 as _source
from .derive import replace_color_with_pair

__all__ = ["ALGORITHM", "build"]


def build():
    """Construct the Section 4.2.3 algorithm from Algorithm 1."""
    return replace_color_with_pair(
        _source.ALGORITHM,
        removed=W,
        replacement=G,
        name="fsync_phi2_l1_chir_k3",
        paper_section="4.2.3",
        description=(
            "Section 4.2.3: FSYNC, phi=2, one color, common chirality, three robots"
            " (Algorithm 1 with the W robot replaced by a pair of G robots)"
        ),
        optimal=True,
    )


#: The Section 4.2.3 algorithm, ready to simulate.
ALGORITHM = build()
