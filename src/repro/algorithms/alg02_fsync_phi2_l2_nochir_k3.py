"""Algorithm 2 — FSYNC, phi = 2, ell = 2, no common chirality, k = 3 (Section 4.2.2).

Without a common chirality the robots cannot tell a right turn from a left
turn, so the formation itself must encode the travel direction: two ``G``
robots ride on the sweep row and a single ``W`` robot rides one row below
the trailing ``G``.  The mirror image of the formation is used for the
opposite direction, and because matching is performed up to reflection the
same eight rules serve both directions (Section 4.2.2, Figure 6).

* **Proceeding** (R1-R3): all three robots step toward the leading ``G``.
* **Turning** (R4-R7, Figure 6): at the border the trailing column (the
  ``G``/``W`` pair) drops one row, then the leading ``G`` drops and the
  ``W`` slides under it, producing the mirrored formation one row south.
* **End of exploration** (R8): when the sweep ends on the last row the
  trailing ``G`` steps onto the single unvisited corner node and the
  configuration becomes terminal with the robots on three distinct nodes.
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 2 of the paper."""
    rules = (
        # ---- proceeding (drawn for the eastward direction) ---------------------
        # R1: the leading G steps forward; the trailing G and the W below it
        #     are visible behind.
        Rule("R1", G, Guard.build(2, W=occ(G), SW=occ(W), E=EMPTY), G, "E"),
        # R2: the trailing G steps forward while the row continues (two free
        #     cells ahead of the pair).
        Rule("R2", G, Guard.build(2, E=occ(G), S=occ(W), EE=EMPTY), G, "E"),
        # R3: the W steps forward underneath the trailing G.
        Rule("R3", W, Guard.build(2, N=occ(G), NE=occ(G), E=EMPTY, EE=EMPTY), W, "E"),
        # ---- turning (Figure 6) -------------------------------------------------
        # R4: at the border the trailing G drops south (the W below follows
        #     simultaneously via R5); requires two free rows below so that the
        #     end-of-exploration configuration stays terminal.
        Rule("R4", G, Guard.build(2, E=occ(G), S=occ(W), EE=WALL, SS=EMPTY), G, "S"),
        # R5: the W below the trailing G drops south together with it.
        Rule("R5", W, Guard.build(2, N=occ(G), NE=occ(G), EE=WALL, S=EMPTY), W, "S"),
        # R6: the leading G, with the trailing G on its rear diagonal and the W
        #     already two rows below it along the border, drops south.
        #     Reproduction note: the paper fires R6 and R7 in the same round;
        #     at the very first turn (top row) the leading G's view is then
        #     symmetric under a reflection, so without chirality the adversary
        #     could send it west instead of south.  Requiring the W to be
        #     visible two cells south (i.e. sequencing R7 one round before R6)
        #     pins the orientation and preserves the figure's outcome.
        Rule("R6", G, Guard.build(2, SW=occ(G), SS=occ(W), E=WALL, S=EMPTY, W=EMPTY), G, "S"),
        # R7: the W slides under the (old) leading G, completing the mirrored
        #     formation for the return sweep.
        Rule(
            "R7",
            W,
            Guard.build(2, N=occ(G), NW=EMPTY, NE=EMPTY, W=EMPTY, E=EMPTY, EE=WALL),
            W,
            "E",
        ),
        # ---- end of exploration ---------------------------------------------------
        # R8: the sweep has reached the far corner of the last row; the
        #     trailing G steps onto the single unvisited corner node.
        Rule("R8", G, Guard.build(2, E=occ(G), SE=occ(W), W=WALL, S=EMPTY, SS=WALL), G, "S"),
    )
    return Algorithm(
        name="fsync_phi2_l2_nochir_k3",
        synchrony=Synchrony.FSYNC,
        phi=2,
        colors=(G, W),
        chirality=False,
        k=3,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), G), ((1, 0), W)),
        min_m=2,
        # Reproduction note: the paper claims n >= 3, but on a 3-column grid
        # the W robot's view during the turn is reflection-symmetric (both
        # side walls are two cells away), so without a common chirality no
        # guard can tell east from west at that moment.  We therefore claim
        # the encoding for n >= 4 and record the gap in EXPERIMENTS.md.
        min_n=4,
        paper_section="4.2.2",
        description="Algorithm 2: FSYNC, phi=2, two colors, no chirality, three robots",
        optimal=False,
    )


#: Algorithm 2 of the paper, ready to simulate.
ALGORITHM = build()
