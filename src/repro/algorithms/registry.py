"""Registry of the paper's fourteen terminating-exploration algorithms.

Algorithms are looked up either by module name (e.g.
``"fsync_phi2_l2_chir_k2"``) or by their Table 1 coordinates through
:func:`find` (synchrony, phi, number of colors, chirality).

The registry discovers every ``alg*`` module of :mod:`repro.algorithms`
automatically, so adding an algorithm module is all that is needed to make
it available to the benchmarks, the verification campaigns and the Table 1
builder.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Dict, List, Optional

from ..core.algorithm import Algorithm
from ..core.errors import AlgorithmError

__all__ = ["all_algorithms", "get", "find", "names", "table1_rows"]

_CACHE: Optional[Dict[str, Algorithm]] = None


def _discover() -> Dict[str, Algorithm]:
    """Import every ``alg*`` module of the package and collect its ``ALGORITHM``."""
    from .. import algorithms as package

    found: Dict[str, Algorithm] = {}
    for module_info in pkgutil.iter_modules(package.__path__):
        if not module_info.name.startswith("alg"):
            continue
        module = importlib.import_module(f"{package.__name__}.{module_info.name}")
        algorithm = getattr(module, "ALGORITHM", None)
        if algorithm is None:
            raise AlgorithmError(
                f"algorithm module {module_info.name} does not define ALGORITHM"
            )
        if algorithm.name in found:
            raise AlgorithmError(f"duplicate algorithm name {algorithm.name!r}")
        found[algorithm.name] = algorithm
    return found


def all_algorithms(refresh: bool = False) -> Dict[str, Algorithm]:
    """All registered algorithms, keyed by name."""
    global _CACHE
    if _CACHE is None or refresh:
        _CACHE = _discover()
    return dict(_CACHE)


def names() -> List[str]:
    """Sorted names of all registered algorithms."""
    return sorted(all_algorithms())


def get(name: str) -> Algorithm:
    """Look an algorithm up by name."""
    algorithms = all_algorithms()
    try:
        return algorithms[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(algorithms))}"
        ) from exc


def find(synchrony: str, phi: int, ell: int, chirality: bool) -> Algorithm:
    """Look an algorithm up by its Table 1 coordinates.

    ``synchrony`` is ``"FSYNC"`` or ``"ASYNC"`` (the paper's SSYNC/ASYNC
    rows are served by the same ASYNC algorithms).
    """
    matches = [
        algorithm
        for algorithm in all_algorithms().values()
        if algorithm.synchrony == synchrony
        and algorithm.phi == phi
        and algorithm.ell == ell
        and algorithm.chirality == chirality
    ]
    if not matches:
        raise KeyError(
            f"no algorithm registered for synchrony={synchrony}, phi={phi},"
            f" ell={ell}, chirality={chirality}"
        )
    if len(matches) > 1:
        raise AlgorithmError(
            f"multiple algorithms registered for synchrony={synchrony}, phi={phi},"
            f" ell={ell}, chirality={chirality}"
        )
    return matches[0]


def table1_rows() -> List[Algorithm]:
    """All algorithms ordered as the rows of the paper's Table 1."""
    order = [
        ("FSYNC", 2, 2, True),
        ("FSYNC", 2, 2, False),
        ("FSYNC", 2, 1, True),
        ("FSYNC", 2, 1, False),
        ("FSYNC", 1, 3, True),
        ("FSYNC", 1, 3, False),
        ("FSYNC", 1, 2, True),
        ("FSYNC", 1, 2, False),
        ("ASYNC", 2, 3, True),
        ("ASYNC", 2, 3, False),
        ("ASYNC", 2, 2, True),
        ("ASYNC", 2, 2, False),
        ("ASYNC", 1, 3, True),
        ("ASYNC", 1, 3, False),
    ]
    rows = []
    for synchrony, phi, ell, chirality in order:
        try:
            rows.append(find(synchrony, phi, ell, chirality))
        except KeyError:
            continue
    return rows
