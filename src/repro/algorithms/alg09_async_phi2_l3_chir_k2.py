"""Algorithm 6 — ASYNC, phi = 2, ell = 3, common chirality, k = 2 (Section 4.3.1).

Optimal in the number of robots, and correct under the asynchronous
scheduler (hence also SSYNC and FSYNC).  Asynchrony is handled by keeping
*at most one robot enabled at any reachable configuration*: the robots take
turns, so no stale-snapshot hazard can arise, and the intermediate
configurations created by the color changes of rules R4 and R8 enable no
rule (Figures 12-13).

* **Proceeding east** (R1, R2): ``W`` leads; the two robots alternate
  single steps, the gap between them oscillating between one and two.
* **Turning west** (R3, R4, Figure 12): at the east border ``W`` drops
  south, then ``G`` recolors to ``B`` and drops south beside it.
* **Proceeding west** (R5, R6): ``B`` leads, ``W`` trails.
* **Turning east** (R7-R9, Figure 13): at the west border ``B`` drops
  south, recolors to ``G`` while idle, and only then does ``W`` drop south
  — the idle recoloring is what prevents the pair from immediately reading
  itself as a westward formation again.
* **End of exploration**: on the last row the sweep simply runs out of
  enabled rules in the corner (southeast when ``m`` is odd, southwest when
  ``m`` is even).
"""

from __future__ import annotations

from ..core.algorithm import Algorithm, Synchrony
from ..core.colors import B, G, W
from ..core.rules import EMPTY, Guard, Rule, WALL, occ
from ._base import placement

__all__ = ["ALGORITHM", "build"]


def build() -> Algorithm:
    """Construct Algorithm 6 of the paper."""
    rules = (
        # ---- proceeding east -------------------------------------------------
        # R1: W steps east when G is right behind it.
        Rule("R1", W, Guard.build(2, W=occ(G), E=EMPTY), W, "E"),
        # R2: G steps east when W is two cells ahead.
        Rule("R2", G, Guard.build(2, EE=occ(W), E=EMPTY), G, "E"),
        # ---- turning west (Figure 12) ------------------------------------------
        # R3: at the east border W drops south.
        Rule("R3", W, Guard.build(2, W=occ(G), E=WALL, S=EMPTY), W, "S"),
        # R4: G, seeing W on its southeast diagonal against the border,
        #     recolors to B and drops south (intermediate configuration
        #     enables nothing).
        Rule("R4", G, Guard.build(2, SE=occ(W), EE=WALL, S=EMPTY), B, "S"),
        # ---- proceeding west -------------------------------------------------
        # R5: B steps west when W is right behind it.
        Rule("R5", B, Guard.build(2, E=occ(W), W=EMPTY), B, "W"),
        # R6: W steps west when B is two cells ahead.
        Rule("R6", W, Guard.build(2, WW=occ(B), W=EMPTY), W, "W"),
        # ---- turning east (Figure 13) -------------------------------------------
        # R7: at the west border B drops south.
        Rule("R7", B, Guard.build(2, E=occ(W), W=WALL, S=EMPTY), B, "S"),
        # R8: B, now below-left of the W, recolors to G without moving; only
        #     after this does the W see a proceeding-east pattern.
        Rule("R8", B, Guard.build(2, NE=occ(W), W=WALL, N=EMPTY), G, None),
        # R9: W drops south next to the recolored G, restoring the eastward
        #     formation one row further south.  The empty-north constraint
        #     pins the rotation so the rule cannot fire (rotated) right after
        #     the westward turn, where the wall lies north instead of west.
        Rule("R9", W, Guard.build(2, SW=occ(G), WW=WALL, S=EMPTY, N=EMPTY), W, "S"),
    )
    return Algorithm(
        name="async_phi2_l3_chir_k2",
        synchrony=Synchrony.ASYNC,
        phi=2,
        colors=(G, W, B),
        chirality=True,
        k=2,
        rules=rules,
        initial_placement=placement(((0, 0), G), ((0, 1), W)),
        min_m=2,
        min_n=3,
        paper_section="4.3.1",
        description="Algorithm 6: ASYNC, phi=2, three colors, common chirality, two robots",
        optimal=True,
    )


#: Algorithm 6 of the paper, ready to simulate.
ALGORITHM = build()
