"""Section 4.2.8 — FSYNC, phi = 1, ell = 2, no common chirality, k = 5.

Obtained from Algorithm 4 by the paper's color-elimination construction:
the single ``B`` robot is represented by a stack of two ``G`` robots, so
only the colors ``G`` and ``W`` remain.  See
:mod:`repro.algorithms.derive`.
"""

from __future__ import annotations

from ..core.colors import B, G
from . import alg06_fsync_phi1_l3_nochir_k4 as _source
from .derive import replace_color_with_pair

__all__ = ["ALGORITHM", "build"]


def build():
    """Construct the Section 4.2.8 algorithm from Algorithm 4."""
    return replace_color_with_pair(
        _source.ALGORITHM,
        removed=B,
        replacement=G,
        name="fsync_phi1_l2_nochir_k5",
        paper_section="4.2.8",
        description=(
            "Section 4.2.8: FSYNC, phi=1, two colors, no chirality, five robots"
            " (Algorithm 4 with the B robot replaced by a pair of G robots)"
        ),
        optimal=False,
    )


#: The Section 4.2.8 algorithm, ready to simulate.
ALGORITHM = build()
