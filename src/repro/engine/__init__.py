"""The unified transition-system kernel.

``repro.engine`` is the one place the Look-Compute-Move semantics of the
paper are implemented; every other layer consumes it:

* :mod:`repro.engine.states` — canonical, hashable scheduler states;
* :mod:`repro.engine.matcher` — memoized snapshot/rule-match computation;
* :mod:`repro.engine.transition` — the :class:`TransitionSystem` protocol
  and the authoritative FSYNC/SSYNC/ASYNC successor generator;
* :mod:`repro.engine.packed` — the packed successor kernel: states as
  flat integer tuples, table-driven expansion, an order of magnitude more
  serial states/s, parity-gated against the object kernel (selected by a
  ``kernel=`` spec on the exploration entry points);
* :mod:`repro.engine.profile` — opt-in (``REPRO_PROFILE=1``) per-phase
  wall-clock split attached to ``Exploration.profile``;
* :mod:`repro.engine.symmetry` — the grid-automorphism group (rotations
  and, for chirality-free algorithms, reflections);
* :mod:`repro.engine.reduction` — the composable reduction subsystem:
  grid-symmetry quotient x detected color-permutation symmetry x ASYNC
  partial-order reduction, selected by a ``reduction=`` spec;
* :mod:`repro.engine.explorer` — frontier search, interning, cycle and
  coverage analyses (the model checker's substrate);
* :mod:`repro.engine.sharded` — hash-partitioned parallel exploration over
  a process pool, merge-identical to the serial explorer;
* :mod:`repro.engine.pool` — the persistent :class:`ExplorationPool`:
  long-lived workers with surviving matcher caches, adaptive
  serial/sharded routing;
* :mod:`repro.engine.backend` — the :class:`ExecutionBackend` protocol
  (serial / pooled / distributed execution of campaign tasks and
  exploration shards, all result-identical);
* :mod:`repro.engine.distributed` — TCP worker daemons and the
  length-prefixed-pickle coordinator (:class:`DistributedBackend`) that
  fans the same payloads out beyond one machine, including stateful
  shard sessions (:class:`ShardSession`) with resident worker frontiers
  and delta-only wave exchange;
* :mod:`repro.engine.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan`) for chaos-testing the distributed stack;
* :mod:`repro.engine.journal` — the durable, resumable campaign verdict
  journal (:class:`CampaignJournal`) and the checkpointed shard-snapshot
  store (:class:`ShardSnapshotStore`) session recovery restores from;
* :mod:`repro.engine.store` — the persistent content-addressed
  :class:`VerdictStore`: explorations, check results and campaign
  reports cached on disk by content hash, with in-flight request
  coalescing;
* :mod:`repro.engine.spec` — work-item spec parsing/validation, the one
  spelling of every verdict-store key, and the canonical JSON wire forms
  the HTTP service (:mod:`repro.service`) exchanges;
* :mod:`repro.engine.walk` — the lazy single-path simulator;
* :mod:`repro.engine.suites` — shared grid-size suites;
* :mod:`repro.engine.campaign` — batched serial/parallel campaign runner.

See ``docs/architecture.md`` for the full layering diagram.
"""

from .campaign import (
    CampaignTask,
    GridSweepReport,
    ParallelCampaignEngine,
    VerificationReport,
    check_one,
    derive_seed,
    execute_tasks,
    exhaustive_check_tasks,
    grid_sweep_tasks,
    run_task,
    stress_test_tasks,
    task_store_key,
    verify_one,
)
from .backend import (
    ExecutionBackend,
    FallbackBackend,
    FleetLostError,
    NoWorkersError,
    PoisonedItemError,
    PoolBackend,
    SerialBackend,
    ShardSession,
    backend_cache,
)
from .explorer import Exploration, explore, guaranteed_nodes, has_cycle, topological_order
from .faults import Fault, FaultInjected, FaultPlan
from .journal import CampaignJournal, ShardSnapshotStore
from .matcher import LocalMatcher, MatcherCache, MatcherStats
from .packed import (
    HAS_NUMPY,
    KERNELS,
    PackedSpace,
    PackedTransitionSystem,
    build_transition_system,
    normalize_kernel,
)
from .pool import (
    PACKED_SERIAL_FACTOR,
    SERIAL_THRESHOLD,
    ExplorationPool,
    default_workers,
    estimate_states,
    process_cache,
)
from .profile import PROFILE_ENV, KernelProfile, profiling_enabled
from .reduction import (
    ColorPermutation,
    ProductWitness,
    Reduction,
    ReductionPipeline,
    apriori_reduction_factor,
    detect_color_permutations,
    normalize_reduction,
    resolve_reduction,
    transform_state_colors,
)
from .sharded import explore_sharded
from .spec import (
    CheckSpec,
    SpecError,
    campaign_id,
    canonical_json,
    check_store_key,
    explore_store_key,
    exploration_payload,
    parse_campaign,
    parse_check_spec,
    parse_task,
    result_payload,
)
from .store import VerdictStore
from .states import (
    AsyncRobotState,
    FrozenSnapshot,
    SchedulerState,
    freeze_snapshot,
    initial_state,
    thaw_snapshot,
    world_from_state,
)
from .suites import (
    REDUCTION_BENCH_CASE,
    default_grid_suite,
    reduction_parity_suite,
    scaling_suite,
)
from .symmetry import GridSymmetry, canonicalize, grid_symmetries, transform_state
from .transition import MODELS, AlgorithmTransitionSystem, TransitionSystem
from .walk import TieBreak, default_step_budget, run, run_async, run_fsync, run_ssync

#: Lazily re-exported from :mod:`repro.engine.distributed` (PEP 562): the
#: daemon CLI runs ``python -m repro.engine.distributed``, and importing
#: that module eagerly here would make ``runpy`` execute it twice.
_DISTRIBUTED_EXPORTS = frozenset(
    {"DistributedBackend", "WorkerDaemon", "WorkerStatus", "run_worker", "send_message", "recv_message"}
)


def __getattr__(name):
    if name in _DISTRIBUTED_EXPORTS:
        from . import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # states
    "AsyncRobotState",
    "SchedulerState",
    "FrozenSnapshot",
    "initial_state",
    "world_from_state",
    "freeze_snapshot",
    "thaw_snapshot",
    # matcher / transition
    "LocalMatcher",
    "MatcherCache",
    "MatcherStats",
    "MODELS",
    "TransitionSystem",
    "AlgorithmTransitionSystem",
    # symmetry
    "GridSymmetry",
    "grid_symmetries",
    "transform_state",
    "canonicalize",
    # reduction
    "Reduction",
    "ReductionPipeline",
    "ColorPermutation",
    "ProductWitness",
    "detect_color_permutations",
    "transform_state_colors",
    "normalize_reduction",
    "resolve_reduction",
    "apriori_reduction_factor",
    # packed kernel
    "KERNELS",
    "HAS_NUMPY",
    "PackedSpace",
    "PackedTransitionSystem",
    "build_transition_system",
    "normalize_kernel",
    # profiling
    "PROFILE_ENV",
    "KernelProfile",
    "profiling_enabled",
    # explorer
    "Exploration",
    "explore",
    "explore_sharded",
    # pool
    "ExplorationPool",
    "SERIAL_THRESHOLD",
    "PACKED_SERIAL_FACTOR",
    "default_workers",
    "estimate_states",
    "process_cache",
    # backends
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "DistributedBackend",
    "FallbackBackend",
    "ShardSession",
    "WorkerDaemon",
    "WorkerStatus",
    "backend_cache",
    "run_worker",
    "send_message",
    "recv_message",
    # resilience
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "CampaignJournal",
    "ShardSnapshotStore",
    "VerdictStore",
    "FleetLostError",
    "NoWorkersError",
    "PoisonedItemError",
    "has_cycle",
    "topological_order",
    "guaranteed_nodes",
    # walk
    "TieBreak",
    "default_step_budget",
    "run",
    "run_fsync",
    "run_ssync",
    "run_async",
    # suites
    "default_grid_suite",
    "scaling_suite",
    "reduction_parity_suite",
    "REDUCTION_BENCH_CASE",
    # campaign
    "VerificationReport",
    "GridSweepReport",
    "CampaignTask",
    "verify_one",
    "check_one",
    "run_task",
    "execute_tasks",
    "grid_sweep_tasks",
    "stress_test_tasks",
    "exhaustive_check_tasks",
    "derive_seed",
    "ParallelCampaignEngine",
    # specs / wire forms
    "SpecError",
    "CheckSpec",
    "parse_check_spec",
    "parse_task",
    "parse_campaign",
    "campaign_id",
    "canonical_json",
    "check_store_key",
    "explore_store_key",
    "result_payload",
    "exploration_payload",
    "task_store_key",
]
