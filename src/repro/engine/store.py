"""Persistent content-addressed verdict store with request coalescing.

ROADMAP item 2's "millions of users" bottleneck: every consumer pays full
exploration cost even for an (algorithm, model, grid, reduction, kernel)
tuple that has been checked a thousand times before.  A
:class:`VerdictStore` is the memoization layer the resume journal
(:mod:`repro.engine.journal`) seeded — the same content-hash keys and the
same crash-safe record format, but *outliving* any single campaign:
completed :class:`~repro.engine.explorer.Exploration`\\ s,
:class:`~repro.checking.model_checker.CheckResult`\\ s and
:class:`~repro.engine.campaign.VerificationReport`\\ s are cached on disk
and served back byte-identical on every later request, on every route
(serial / sharded / pooled / distributed / sessions).

Content addressing
==================
A verdict is keyed by :func:`~repro.engine.journal.content_key` — SHA-256
over the ``repr`` of the *fully resolved* spec.  The spec is the same
normalization that already makes work picklable (``ExploreKey`` tuples,
:class:`~repro.engine.campaign.CampaignTask` dataclasses): registry
algorithm name, grid shape, synchrony model, the **normalized** reduction
spec string and kernel spec — plus everything the result is a function
of that is *not* part of the work's identity at first glance:

* the **state budget** (``max_states``), so a verdict computed under a
  small budget can never masquerade as the verdict of a full exploration
  (and a ``StateSpaceLimitExceeded`` trip is simply never recorded);
* the **scheduler seed** and tie-break policy for walk-based reports,
  so two differently seeded runs of the same grid never alias.

Record format and crash safety
==============================
Segments reuse the journal's record framing — 4-byte length, 4-byte
CRC32, pickled ``(key, value)`` body, ``flush`` + ``fsync`` per append —
so every crash-safety property carries over: a crash mid-append leaves at
worst a torn tail, which the next open truncates away; a corrupt record
ends replay of its segment (every record *before* it is kept).  Duplicate
keys are legal and last-written wins, which makes re-recording idempotent.

The in-memory index holds the most recently used ``max_entries`` verdicts
(LRU); when the on-disk record count grows past ``compact_factor`` times
the live index, the store *compacts*: live entries are rewritten into
fresh segments (least recently used first, so a later partial load favors
recent verdicts) and the stale segments are deleted.  Compaction is
crash-safe by ordering — new segments are written and fsynced before old
ones are unlinked, and last-write-wins replay makes a crash between the
two steps harmless.

Like the journal, a store directory has a **single writer** at a time
(one coordinator process); any number of concurrent *readers* may open
their own store on the directory.  Within the writing process the store
is fully thread-safe.

Request coalescing
==================
Campaign fan-out and the pool's adaptive routing frequently request the
same key concurrently.  :meth:`VerdictStore.get_or_compute` implements
singleflight: the first requester of a key becomes the *leader* and
computes; every duplicate concurrent requester blocks on the leader and
shares its result (or re-raises its exception) — duplicate concurrent
requests trigger exactly one exploration.  The ``coalesced`` counter
counts the duplicates that were served this way.

Counters — ``hits`` / ``misses`` / ``coalesced`` (plus ``evictions`` and
``compactions``) — are surfaced per-request as ``store_stats`` on the
returned objects, a ``compare=False`` observability field exactly like
``wire_stats``: cached results stay equal to freshly computed ones.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, Optional, Tuple

from .journal import content_key, iter_records, pack_record
from .profile import profiling_enabled

__all__ = ["VerdictStore", "content_key"]

_MISSING = object()

#: Outcome labels ``get_or_compute`` reports per request.
HIT, MISS, COALESCED = "hit", "miss", "coalesced"


class _InFlight:
    """One in-flight computation duplicates of a key rendezvous on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = _MISSING
        self.error: Optional[BaseException] = None


class VerdictStore:
    """Disk-backed ``{content-key: verdict}`` cache with singleflight.

    ``path=None`` keeps the store purely in memory (the coalescing and
    LRU semantics are identical; nothing survives the process).  With a
    ``path`` the directory is created on demand and filled with
    ``seg-<n>.log`` segment files in the journal record format.

    ``max_entries`` bounds the in-memory index (LRU eviction; evicted
    verdicts stay on disk until the next compaction and simply miss).
    ``segment_records`` is the roll-over size of the active segment;
    ``compact_factor`` triggers compaction when the on-disk record count
    exceeds that multiple of the live index.
    """

    def __init__(
        self,
        path=None,
        *,
        max_entries: int = 100_000,
        segment_records: int = 4096,
        compact_factor: float = 2.0,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.max_entries = max_entries
        self.segment_records = segment_records
        self.compact_factor = compact_factor
        self._lock = threading.RLock()
        self._index: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: Dict[str, _InFlight] = {}
        self._file = None
        self._active_records = 0
        self._disk_records = 0
        self._next_segment = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.compactions = 0
        #: Torn bytes truncated from segment tails on open (a nonzero
        #: value means a previous writer died mid-append).
        self.recovered_bytes = 0
        if self.path is not None:
            self._open_disk()

    # -- disk ------------------------------------------------------------
    def _segments(self) -> list:
        """Segment paths in segment-number order."""
        assert self.path is not None
        try:
            names = [p for p in self.path.iterdir() if p.name.startswith("seg-")]
        except FileNotFoundError:
            return []
        return sorted(names, key=lambda p: int(p.stem.split("-")[1]))

    def _open_disk(self) -> None:
        """Replay every segment (truncating torn tails) and open the active one."""
        assert self.path is not None
        self.path.mkdir(parents=True, exist_ok=True)
        segments = self._segments()
        for seg in segments:
            data = seg.read_bytes()
            end = 0
            for key, value, end in iter_records(data):
                self._store_in_index(key, value)
                self._disk_records += 1
            if end < len(data):
                # Torn or corrupt tail: truncate so the segment ends on a
                # record boundary (only the *active* segment is appended
                # to, but recovery is uniform).
                self.recovered_bytes += len(data) - end
                with open(seg, "ab") as handle:
                    handle.truncate(end)
        if segments:
            active = segments[-1]
            self._next_segment = int(active.stem.split("-")[1]) + 1
            self._file = open(active, "ab")
            self._active_records = 0  # roll on segment_records *new* appends
        else:
            self._roll_segment()

    def _roll_segment(self) -> None:
        """Close the active segment and start a fresh one."""
        assert self.path is not None
        if self._file is not None:
            self._file.close()
        seg = self.path / f"seg-{self._next_segment}.log"
        self._next_segment += 1
        self._file = open(seg, "ab")
        self._active_records = 0

    def _append(self, key: str, value: object) -> None:
        """Durably append one record (flush + fsync) to the active segment."""
        if self._file is None:
            return
        self._file.write(pack_record(key, value))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._active_records += 1
        self._disk_records += 1
        if self._active_records >= self.segment_records:
            self._roll_segment()

    def _maybe_compact(self) -> None:
        """Rewrite live entries and drop stale segments when disk bloats."""
        if self.path is None:
            return
        live = len(self._index)
        if self._disk_records <= max(self.compact_factor * live, self.segment_records):
            return
        stale = self._segments()
        if self._file is not None:
            self._file.close()
            self._file = None
        # Fresh segments first (fsynced), stale ones unlinked after: a
        # crash in between leaves duplicates, which last-write-wins replay
        # resolves to the identical index.
        self._disk_records = 0
        self._roll_segment()
        for key, value in self._index.items():  # LRU order: oldest first
            self._append(key, value)
        os.fsync(self._file.fileno())
        for seg in stale:
            seg.unlink(missing_ok=True)
        self.compactions += 1

    # -- index -----------------------------------------------------------
    def _store_in_index(self, key: str, value: object) -> None:
        self._index[key] = value
        self._index.move_to_end(key)
        while len(self._index) > self.max_entries:
            self._index.popitem(last=False)
            self.evictions += 1

    # -- public API ------------------------------------------------------
    key = staticmethod(content_key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, spec: object) -> bool:
        with self._lock:
            return content_key(spec) in self._index

    @property
    def stats(self) -> Dict[str, int]:
        """A snapshot of the request and maintenance counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "compactions": self.compactions,
                "entries": len(self._index),
                "disk_records": self._disk_records,
            }

    def get(self, spec: object):
        """The cached verdict for ``spec``, or ``None`` (counts hit/miss)."""
        k = content_key(spec)
        with self._lock:
            value = self._index.get(k, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return None
            self._index.move_to_end(k)
            self.hits += 1
            return value

    def put(self, spec: object, value: object) -> None:
        """Durably record ``spec``'s verdict (idempotent; last write wins)."""
        k = content_key(spec)
        with self._lock:
            self._append(k, value)
            self._store_in_index(k, value)
            self._maybe_compact()

    def get_or_compute(
        self, spec: object, compute: Callable[[], object]
    ) -> Tuple[object, str]:
        """Return ``(verdict, outcome)``; duplicates coalesce onto one compute.

        ``outcome`` is ``"hit"`` (served from the index), ``"miss"`` (this
        call was the leader and ran ``compute``) or ``"coalesced"`` (a
        concurrent leader's result was shared).  The leader's exception
        propagates to every coalesced waiter; nothing is recorded for it.
        """
        k = content_key(spec)
        with self._lock:
            value = self._index.get(k, _MISSING)
            if value is not _MISSING:
                self._index.move_to_end(k)
                self.hits += 1
                return value, HIT
            flight = self._inflight.get(k)
            if flight is None:
                flight = _InFlight()
                self._inflight[k] = flight
                leader = True
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, COALESCED
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(k, None)
            flight.event.set()
            raise
        with self._lock:
            self.misses += 1
            self._append(k, value)
            self._store_in_index(k, value)
            self._maybe_compact()
            self._inflight.pop(k, None)
        flight.value = value
        flight.event.set()
        return value, MISS

    # -- result annotation ----------------------------------------------
    def fetch(self, spec: object, compute: Callable[[], object]):
        """``get_or_compute`` plus ``store_stats``/profile annotation.

        The verdict is recorded *clean*; the returned object is a shallow
        ``dataclasses.replace`` copy carrying the counter snapshot in its
        ``store_stats`` field (``compare=False``, so cached and computed
        results stay equal).  Under ``REPRO_PROFILE=1`` the lookup wall
        time additionally lands in the profile's ``store_s`` phase when
        the object carries one.
        """
        t0 = perf_counter()
        value, outcome = self.get_or_compute(spec, compute)
        elapsed = perf_counter() - t0 if outcome != MISS else 0.0
        return self.annotate(value, outcome, elapsed)

    def annotate(self, value, outcome: str, elapsed: float = 0.0):
        """A copy of ``value`` carrying current counters in ``store_stats``.

        Values without a ``store_stats`` dataclass field pass through
        unchanged.  Used by :meth:`fetch` and by batch consumers (the
        campaign engine's prefilter) that hit the index directly.
        """
        from dataclasses import replace

        fields = getattr(value, "__dataclass_fields__", None)
        if fields is None or "store_stats" not in fields:
            return value
        with self._lock:
            stats = {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "outcome": outcome,
            }
        changes = {"store_stats": stats}
        if profiling_enabled() and "profile" in fields:
            profile = dict(value.profile) if value.profile else {"kernel": "store"}
            profile["store_s"] = profile.get("store_s", 0.0) + elapsed
            profile["total_s"] = profile.get("total_s", 0.0) + elapsed
            changes["profile"] = profile
        return replace(value, **changes)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.close()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        where = str(self.path) if self.path is not None else "memory"
        return f"VerdictStore({where!r}, entries={len(self._index)})"
