"""Deterministic, seeded fault injection for the distributed execution stack.

Chaos testing the TCP campaign machinery (:mod:`repro.engine.distributed`)
needs faults that are *replayable*: "corrupt the third frame worker 0
sends", "hang worker 1 on its first item", "kill the daemon evaluating
item 2", "crash the coordinator after two journaled verdicts" — and the
same plan must trigger the same faults at the same points every run, so a
parity failure under chaos is a bug, never flake.

A :class:`FaultPlan` is a declarative list of :class:`Fault` specs plus a
seed.  The execution stack calls back into the plan at well-known **sites**
as events stream past; the plan counts events per site (per process — a
plan pickled into a worker daemon starts its counters fresh there, which
is what makes worker-side indices deterministic per connection) and fires
the matching fault, if any:

==================== =====================================================
site                 one event per ...
==================== =====================================================
``coordinator.send`` work frame the coordinator ships to a worker
``worker.result``    result/error frame a worker sends back
``worker.item``      work item a worker connection pulls
``journal.record``   verdict appended (and fsynced) to a campaign journal
==================== =====================================================

Faults select their firing point either by ``index`` (the N-th event at
the site — one-shot, since the counter passes each index once) or by
``item`` (every event carrying that item id — persistent, which is how a
*poison payload* is modelled: whichever worker pulls the item dies).
``worker`` restricts daemon-side faults to one worker slot of a
:class:`~repro.engine.distributed.WorkerDaemon`.

Actions are interpreted by the call sites:

* ``corrupt`` — :meth:`FaultPlan.frame_out` replaces the frame body with
  seeded garbage (the length header survives, so framing stays aligned and
  the receiver fails at decode, exactly like real bit rot past TCP's
  checksum);
* ``kill`` — the worker process hard-exits (``os._exit``), the unflushed
  socket dies with it;
* ``hang`` — the worker wedges: no heartbeats, no progress, no exit (what
  a deadlocked C extension looks like from the coordinator);
* ``delay`` — the worker is merely slow: it sleeps *while heartbeating*,
  so a deadline-aware coordinator must NOT retire it;
* ``crash`` — :meth:`FaultPlan.check_crash` raises :class:`FaultInjected`
  in the calling (coordinator) process, simulating a kill after a durable
  journal append.

Everything here is test/ops machinery: a plan is opt-in, threaded
explicitly through ``DistributedBackend(faults=)``,
``WorkerDaemon(faults=)`` and ``CampaignJournal(faults=)``; no plan means
not even the counters run.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Fault", "FaultInjected", "FaultPlan"]

#: Frame-header size the corruptor preserves (see
#: :data:`repro.engine.distributed._HEADER`): corrupting the length prefix
#: would desynchronize framing instead of exercising decode failure.
_FRAME_HEADER_BYTES = 8


class FaultInjected(RuntimeError):
    """An injected ``crash`` fault fired (simulated coordinator death)."""


@dataclass(frozen=True)
class Fault:
    """One declarative fault: where, when, and what.

    Exactly one of ``index`` (N-th event at ``site``; one-shot) and
    ``item`` (every event carrying that item id; persistent) selects the
    firing point.  ``worker`` restricts daemon-side sites to one worker
    slot; ``seconds`` parameterizes ``hang``/``delay``.
    """

    site: str
    action: str
    index: Optional[int] = None
    item: Optional[int] = None
    worker: Optional[int] = None
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if (self.index is None) == (self.item is None):
            raise ValueError("a Fault fires by exactly one of index= or item=")

    def describe(self) -> str:
        where = f"item {self.item}" if self.item is not None else f"event {self.index}"
        who = "" if self.worker is None else f" worker {self.worker}"
        return f"{self.action} at {self.site}[{where}]{who}"


def _derived_rng(seed: int, site: str, count: int) -> random.Random:
    """A stable per-(seed, site, event) RNG for corruption payloads."""
    digest = hashlib.sha256(repr((seed, site, count)).encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class FaultPlan:
    """A replayable set of faults plus the per-site event counters.

    Build declaratively (every builder returns ``self`` for chaining)::

        plan = (FaultPlan(seed=7)
                .corrupt_result_frame(index=0, worker=0)   # bit-rot worker 0's first reply
                .kill_worker(item=2)                       # item 2 is a poison payload
                .crash_coordinator(after_records=2))       # die after 2 journaled verdicts

    Plans are picklable (they travel into worker daemon processes); the
    event counters and the lock guarding them are per-process state and
    start fresh on the other side, so "worker 0's first result frame"
    means the first frame *that process* sends, deterministically.
    """

    def __init__(self, seed: int = 0, faults: Optional[List[Fault]] = None) -> None:
        self.seed = seed
        self._faults: List[Fault] = list(faults or ())
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- pickling: specs travel, counters are per-process ---------------
    def __getstate__(self):
        return {"seed": self.seed, "faults": tuple(self._faults)}

    def __setstate__(self, state) -> None:
        self.__init__(seed=state["seed"], faults=list(state["faults"]))

    # -- builders --------------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        self._faults.append(fault)
        return self

    def corrupt_work_frame(self, index: int = 0) -> "FaultPlan":
        """Corrupt the ``index``-th work frame the coordinator sends."""
        return self.add(Fault("coordinator.send", "corrupt", index=index))

    def corrupt_result_frame(self, index: int = 0, worker: Optional[int] = None) -> "FaultPlan":
        """Corrupt the ``index``-th result frame a worker sends back."""
        return self.add(Fault("worker.result", "corrupt", index=index, worker=worker))

    def kill_worker(
        self, *, index: Optional[int] = None, item: Optional[int] = None, worker: Optional[int] = None
    ) -> "FaultPlan":
        """Hard-kill the worker process pulling the matching item.

        ``item=`` makes the item itself the poison: every worker that ever
        pulls it dies, which is how the retry-budget/quarantine machinery
        is exercised.
        """
        return self.add(Fault("worker.item", "kill", index=index, item=item, worker=worker))

    def hang_worker(
        self,
        *,
        index: Optional[int] = None,
        item: Optional[int] = None,
        worker: Optional[int] = None,
        seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Wedge the worker on the matching item: no heartbeats, no exit."""
        return self.add(Fault("worker.item", "hang", index=index, item=item, worker=worker, seconds=seconds))

    def delay_item(
        self,
        *,
        index: Optional[int] = None,
        item: Optional[int] = None,
        worker: Optional[int] = None,
        seconds: float = 1.0,
    ) -> "FaultPlan":
        """Make the matching item slow but alive (heartbeats keep flowing)."""
        return self.add(Fault("worker.item", "delay", index=index, item=item, worker=worker, seconds=seconds))

    def crash_coordinator(self, after_records: int = 1) -> "FaultPlan":
        """Raise :class:`FaultInjected` after the N-th durable journal append."""
        if after_records < 1:
            raise ValueError("after_records must be >= 1")
        return self.add(Fault("journal.record", "crash", index=after_records - 1))

    # -- runtime ---------------------------------------------------------
    def _next_event(
        self, site: str, item: Optional[int], worker: Optional[int]
    ) -> tuple:
        """Advance the site counter; return ``(event_index, fired_fault)``."""
        with self._lock:
            count = self._counters.get(site, 0)
            self._counters[site] = count + 1
        for fault in self._faults:
            if fault.site != site:
                continue
            if fault.worker is not None and worker != fault.worker:
                continue
            if fault.item is not None:
                if item is not None and item == fault.item:
                    return count, fault
            elif fault.index == count:
                return count, fault
        return count, None

    def fire(self, site: str, *, item: Optional[int] = None, worker: Optional[int] = None) -> Optional[Fault]:
        """Count one event at ``site``; return the fault that fires, if any.

        The counter advances whether or not anything matches — indices are
        positions in the event stream, not in the fault list.
        """
        return self._next_event(site, item, worker)[1]

    def frame_out(
        self, site: str, frame: bytes, *, item: Optional[int] = None, worker: Optional[int] = None
    ) -> bytes:
        """One frame passing ``site`` outbound; corrupted if a fault fires.

        Corruption keeps the length header and replaces the body with
        seeded garbage — deterministic per (seed, site, event index), so a
        corrupt frame is the *same* corrupt frame on every replay.
        """
        count, fault = self._next_event(site, item, worker)
        if fault is None or fault.action != "corrupt":
            return frame
        rng = _derived_rng(self.seed, site, count)
        body = rng.randbytes(max(0, len(frame) - _FRAME_HEADER_BYTES))
        return frame[:_FRAME_HEADER_BYTES] + body

    def check_crash(self, site: str) -> None:
        """One event at ``site``; raise :class:`FaultInjected` on a crash fault."""
        fault = self.fire(site)
        if fault is not None and fault.action == "crash":
            raise FaultInjected(f"injected crash: {fault.describe()}")
