"""Work-item specs: parsing, validation, store keys and JSON wire forms.

The verdict store (:mod:`repro.engine.store`) made one promise load-bearing
across the whole stack: *equal specs produce equal content keys on every
route*.  A check requested through the library
(:func:`repro.checking.check_terminating_exploration`), through a campaign
task (:func:`repro.engine.campaign.task_store_key`) and through the HTTP
service (:mod:`repro.service`) must address the same stored verdict — a
route-dependent key would silently fork the cache and recompute work the
store already holds.

This module is therefore the single place store keys are spelled:

* :func:`check_store_key` / :func:`explore_store_key` — the
  ``("check", ...)`` / ``("explore", ...)`` tuples of the checking entry
  points (:mod:`repro.checking.model_checker` and
  :mod:`repro.engine.sharded` build their keys here);
* :func:`walk_task_key` / :func:`check_task_key` — the ``("task", ...)``
  tuples of campaign work items
  (:func:`repro.engine.campaign.task_store_key` delegates here).

On top of the keys it owns the *wire* forms the HTTP service exchanges:

* :func:`parse_check_spec` / :func:`parse_task` / :func:`parse_campaign`
  turn untrusted JSON payloads into validated specs, raising
  :class:`SpecError` with the offending **field named** (the service maps
  that to a 400 whose body tells the client what to fix);
* :func:`result_payload` / :func:`report_payload` split a result dataclass
  into its ``verdict`` (the ``compare=True`` fields — a pure function of
  the spec, byte-identical however the work was routed or cached) and its
  ``observability`` (the ``compare=False`` channels: ``store_stats``,
  ``matcher_stats``, ``wire_stats``, ...), so clients can byte-compare
  verdicts without scrubbing cache-warmth noise themselves;
* :func:`canonical_json` — the deterministic byte encoding (sorted keys,
  no whitespace) those comparisons use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .journal import content_key
from .packed import normalize_kernel
from .reduction import normalize_reduction
from .walk import TieBreak

__all__ = [
    "SpecError",
    "MODELS",
    "check_store_key",
    "explore_store_key",
    "walk_task_key",
    "check_task_key",
    "parse_check_spec",
    "parse_task",
    "parse_campaign",
    "campaign_id",
    "canonical_json",
    "result_payload",
    "report_payload",
    "exploration_payload",
]

MODELS = ("FSYNC", "SSYNC", "ASYNC")

_REQUIRED = object()


class SpecError(ValueError):
    """A spec payload failed validation; ``field`` names the offender."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(message)
        self.field = field

    def as_dict(self) -> Dict[str, str]:
        return {"field": self.field, "message": str(self)}


# ---------------------------------------------------------------------------
# Store keys — the one spelling every route shares
# ---------------------------------------------------------------------------
def check_store_key(
    algorithm: str,
    m: int,
    n: int,
    model: str,
    reduction=None,
    kernel: Optional[str] = None,
    max_states: int = 200_000,
    symmetry_reduction: bool = False,
) -> Tuple[object, ...]:
    """The verdict-store spec of one exhaustive check.

    Identical to the key :func:`repro.checking.check_terminating_exploration`
    stores its :class:`~repro.checking.model_checker.CheckResult` under —
    that function builds its key here.  ``max_states`` is part of the key
    so a budget-limited check can never answer for a roomier one.
    """
    return (
        "check",
        algorithm,
        m,
        n,
        model,
        normalize_reduction(reduction, symmetry_reduction),
        normalize_kernel(kernel),
        max_states,
    )


def explore_store_key(
    algorithm: str,
    m: int,
    n: int,
    model: str,
    reduction=None,
    kernel: Optional[str] = None,
    max_states: int = 200_000,
    symmetry_reduction: bool = False,
) -> Tuple[object, ...]:
    """The verdict-store spec of one exploration.

    ``("explore",) + ExploreKey + (max_states,)`` — exactly the key
    :func:`repro.engine.sharded.explore_sharded` caches the
    :class:`~repro.engine.explorer.Exploration` under (it builds the key
    here), so an exploration cached by the library route is a warm hit for
    ``POST /v1/explore`` and vice versa.
    """
    return (
        "explore",
        algorithm,
        m,
        n,
        model,
        normalize_reduction(reduction, symmetry_reduction),
        normalize_kernel(kernel),
        max_states,
    )


def walk_task_key(
    algorithm: str,
    m: int,
    n: int,
    model: str,
    seed: Optional[int],
    tie_break: str,
    max_steps: Optional[int],
) -> Tuple[object, ...]:
    """The verdict-store spec of one bounded-walk campaign task.

    Mirrors execution: ``seed=None`` runs as ``0``
    (:func:`repro.engine.campaign.verify_one` normalizes before running),
    so both spellings address the verdict of the run that actually happens.
    """
    return (
        "task",
        "walk",
        algorithm,
        m,
        n,
        model,
        0 if seed is None else seed,
        tie_break,
        max_steps,
    )


def check_task_key(
    algorithm: str,
    m: int,
    n: int,
    model: str,
    reduction=None,
    max_states: int = 200_000,
    kernel: Optional[str] = None,
) -> Tuple[object, ...]:
    """The verdict-store spec of one exhaustive-check campaign task."""
    return (
        "task",
        "check",
        algorithm,
        m,
        n,
        model,
        normalize_reduction(reduction),
        max_states,
        normalize_kernel(kernel),
    )


# ---------------------------------------------------------------------------
# Payload validation
# ---------------------------------------------------------------------------
def _field(payload: dict, name: str, default=_REQUIRED):
    value = payload.get(name, default)
    if value is _REQUIRED:
        raise SpecError(name, f"missing required field {name!r}")
    return value


def _int_field(payload: dict, name: str, default=_REQUIRED, minimum: Optional[int] = None):
    value = _field(payload, name, default)
    if value is None and default is None:
        return None
    # bool is an int subclass; "m": true is a client bug, not a grid size.
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(name, f"{name!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise SpecError(name, f"{name!r} must be >= {minimum}, got {value}")
    return value


def _resolve_algorithm(payload: dict):
    from ..algorithms import registry  # local import: avoids a layering cycle

    name = _field(payload, "algorithm")
    if not isinstance(name, str):
        raise SpecError("algorithm", f"'algorithm' must be a registry name, got {name!r}")
    known = registry.all_algorithms()
    if name not in known:
        raise SpecError(
            "algorithm",
            f"unknown algorithm {name!r}; known: {', '.join(sorted(known))}",
        )
    return known[name]


def _model_field(payload: dict, default: str = "FSYNC") -> str:
    model = _field(payload, "model", default)
    if not isinstance(model, str) or model.upper() not in MODELS:
        raise SpecError("model", f"'model' must be one of {'/'.join(MODELS)}, got {model!r}")
    return model.upper()


def _reduction_field(payload: dict, default: Optional[str] = "grid") -> str:
    reduction = _field(payload, "reduction", default)
    try:
        return normalize_reduction(reduction)
    except (TypeError, ValueError) as exc:
        raise SpecError("reduction", str(exc)) from None


def _kernel_field(payload: dict) -> str:
    kernel = _field(payload, "kernel", None)
    try:
        return normalize_kernel(kernel)
    except ValueError as exc:
        raise SpecError("kernel", str(exc)) from None


def _grid_fields(payload: dict, algorithm) -> Tuple[int, int]:
    m = _int_field(payload, "m", minimum=1)
    n = _int_field(payload, "n", minimum=1)
    if not algorithm.supports_grid(m, n):
        raise SpecError(
            "grid",
            f"{algorithm.name} does not support a {m}x{n} grid"
            f" (needs at least {algorithm.min_m}x{algorithm.min_n})",
        )
    return m, n


@dataclasses.dataclass(frozen=True)
class CheckSpec:
    """A validated ``/v1/check`` / ``/v1/explore`` request."""

    algorithm: str
    m: int
    n: int
    model: str
    reduction: str
    max_states: int
    kernel: str

    def check_key(self) -> Tuple[object, ...]:
        return check_store_key(
            self.algorithm, self.m, self.n, self.model,
            self.reduction, self.kernel, self.max_states,
        )

    def explore_key(self) -> Tuple[object, ...]:
        return explore_store_key(
            self.algorithm, self.m, self.n, self.model,
            self.reduction, self.kernel, self.max_states,
        )


def parse_check_spec(payload: object, default_reduction: Optional[str] = "grid") -> CheckSpec:
    """Validate one check/explore spec payload (raises :class:`SpecError`)."""
    if not isinstance(payload, dict):
        raise SpecError("body", f"request body must be a JSON object, got {type(payload).__name__}")
    algorithm = _resolve_algorithm(payload)
    m, n = _grid_fields(payload, algorithm)
    return CheckSpec(
        algorithm=algorithm.name,
        m=m,
        n=n,
        model=_model_field(payload),
        reduction=_reduction_field(payload, default_reduction),
        max_states=_int_field(payload, "max_states", 200_000, minimum=1),
        kernel=_kernel_field(payload),
    )


def parse_task(payload: object, algorithm: Optional[str] = None):
    """Validate one campaign-task payload into a picklable ``CampaignTask``.

    ``algorithm`` supplies the campaign-level default so task entries in a
    ``{"tasks": [...]}`` submission may omit it.
    """
    from .campaign import CampaignTask  # local import: campaign imports this module

    if not isinstance(payload, dict):
        raise SpecError("tasks", f"each task must be a JSON object, got {type(payload).__name__}")
    if "algorithm" not in payload and algorithm is not None:
        payload = dict(payload, algorithm=algorithm)
    resolved = _resolve_algorithm(payload)
    m, n = _grid_fields(payload, resolved)
    model = _model_field(payload)
    kind = _field(payload, "kind", "walk")
    if kind not in ("walk", "check"):
        raise SpecError("kind", f"'kind' must be 'walk' or 'check', got {kind!r}")
    if kind == "check":
        return CampaignTask(
            algorithm=resolved.name,
            m=m,
            n=n,
            model=model,
            kind="check",
            reduction=_reduction_field(payload, "grid"),
            max_states=_int_field(payload, "max_states", 200_000, minimum=1),
            kernel=_kernel_field(payload),
        )
    tie_break = _field(payload, "tie_break", TieBreak.ERROR)
    if tie_break not in TieBreak.ALL:
        raise SpecError("tie_break", f"'tie_break' must be one of {TieBreak.ALL}, got {tie_break!r}")
    return CampaignTask(
        algorithm=resolved.name,
        m=m,
        n=n,
        model=model,
        seed=_int_field(payload, "seed", None),
        tie_break=tie_break,
        max_steps=_int_field(payload, "max_steps", None, minimum=1),
    )


def _sizes_field(payload: dict) -> Optional[List[Tuple[int, int]]]:
    sizes = _field(payload, "sizes", None)
    if sizes is None:
        return None
    if not isinstance(sizes, (list, tuple)):
        raise SpecError("sizes", f"'sizes' must be a list of [m, n] pairs, got {sizes!r}")
    parsed = []
    for entry in sizes:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(side, int) and not isinstance(side, bool) for side in entry)
        ):
            raise SpecError("sizes", f"each size must be an [m, n] integer pair, got {entry!r}")
        parsed.append((entry[0], entry[1]))
    return parsed


def _seeds_field(payload: dict, default: Tuple[int, ...]) -> Tuple[int, ...]:
    seeds = _field(payload, "seeds", None)
    if seeds is None:
        return default
    if not isinstance(seeds, (list, tuple)) or not all(
        isinstance(seed, int) and not isinstance(seed, bool) for seed in seeds
    ):
        raise SpecError("seeds", f"'seeds' must be a list of integers, got {seeds!r}")
    return tuple(seeds)


#: Campaign shapes a ``POST /v1/campaigns`` payload may name.
CAMPAIGN_KINDS = ("grid_sweep", "stress_test", "exhaustive_sweep", "verify_algorithm", "tasks")


def parse_campaign(payload: object) -> Tuple[str, List[object]]:
    """Validate a campaign submission into ``(algorithm_name, task_list)``.

    The payload either carries an explicit ``"tasks"`` list (each entry a
    task payload for :func:`parse_task`) or names one of the campaign
    shapes — ``grid_sweep`` / ``stress_test`` / ``exhaustive_sweep`` /
    ``verify_algorithm`` — whose task lists are built by the *same*
    builders the library campaigns use, so an HTTP submission and a
    library call with equal parameters produce equal task lists (and so
    equal store keys, journal keys and campaign ids).
    """
    from .campaign import (  # local import: campaign imports this module
        exhaustive_check_tasks,
        grid_sweep_tasks,
        stress_test_tasks,
    )

    if not isinstance(payload, dict):
        raise SpecError("body", f"request body must be a JSON object, got {type(payload).__name__}")
    algorithm = _resolve_algorithm(payload)
    if "tasks" in payload:
        entries = payload["tasks"]
        if not isinstance(entries, list) or not entries:
            raise SpecError("tasks", "'tasks' must be a non-empty list of task objects")
        return algorithm.name, [parse_task(entry, algorithm.name) for entry in entries]
    kind = _field(payload, "campaign", "grid_sweep")
    if kind not in CAMPAIGN_KINDS:
        raise SpecError("campaign", f"'campaign' must be one of {CAMPAIGN_KINDS}, got {kind!r}")
    sizes = _sizes_field(payload)
    if kind == "grid_sweep":
        tasks = grid_sweep_tasks(
            algorithm,
            sizes=sizes,
            model=_model_field(payload),
            seed=_int_field(payload, "seed", None),
        )
    elif kind == "stress_test":
        models = _field(payload, "models", ["SSYNC", "ASYNC"])
        if not isinstance(models, (list, tuple)) or not all(
            isinstance(model, str) and model.upper() in MODELS for model in models
        ):
            raise SpecError("models", f"'models' must be a list drawn from {MODELS}, got {models!r}")
        tasks = stress_test_tasks(
            algorithm,
            sizes=sizes,
            models=tuple(model.upper() for model in models),
            seeds=_seeds_field(payload, tuple(range(10))),
        )
    elif kind == "exhaustive_sweep":
        tasks = exhaustive_check_tasks(
            algorithm,
            sizes=sizes,
            model=_model_field(payload),
            reduction=_reduction_field(payload, "grid"),
            max_states=_int_field(payload, "max_states", 200_000, minimum=1),
            kernel=_kernel_field(payload),
        )
    else:  # verify_algorithm
        tasks = grid_sweep_tasks(algorithm, sizes=sizes, model="FSYNC")
        if algorithm.synchrony == "ASYNC":
            tasks.extend(
                stress_test_tasks(algorithm, sizes=sizes, seeds=_seeds_field(payload, tuple(range(5))))
            )
    if not tasks:
        raise SpecError("sizes", "campaign resolved to zero tasks (no supported grid sizes)")
    return algorithm.name, tasks


def campaign_id(algorithm: str, tasks) -> str:
    """The content-addressed id of a campaign submission.

    A hash of the resolved task list, so equal submissions — before or
    after a server restart — map to the same id, the same journal file and
    therefore the same resumable run.  16 hex chars: collision-safe for
    any plausible number of campaigns, short enough for URLs and logs.
    """
    return content_key(("campaign", algorithm, tuple(tasks)))[:16]


# ---------------------------------------------------------------------------
# Wire forms
# ---------------------------------------------------------------------------
def canonical_json(value: object) -> str:
    """The deterministic JSON encoding byte-parity comparisons use."""
    import json

    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def result_payload(result) -> Dict[str, object]:
    """Split a result dataclass into ``verdict`` and ``observability``.

    ``verdict`` carries exactly the ``compare=True`` fields (plus the
    computed ``ok`` flag) — the part promised byte-identical across
    routes, kernels, reductions, caches and restarts.  ``observability``
    carries the ``compare=False`` channels (``store_stats``,
    ``matcher_stats``, ``reduction_stats``, ``wire_stats``, ``profile``)
    that legitimately vary with cache warmth and transport.
    """
    verdict: Dict[str, object] = {}
    observability: Dict[str, object] = {}
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        (verdict if field.compare else observability)[field.name] = value
    verdict["ok"] = result.ok
    return {"verdict": verdict, "observability": observability}


#: ``result_payload`` under the name campaign consumers expect.
report_payload = result_payload


def exploration_payload(exploration) -> Dict[str, object]:
    """The JSON summary of an :class:`~repro.engine.explorer.Exploration`.

    The graph itself (states, successor rows, witnesses) does not travel —
    it can be millions of rows and its elements are not JSON values; the
    summary carries the counts and specs a service client needs, with the
    ``compare=False`` channels split out like :func:`result_payload`.
    """
    return {
        "verdict": {
            "model": exploration.model,
            "reduction": exploration.reduction,
            "reduced": exploration.reduced,
            "num_states": exploration.num_states,
            "terminal_states": len(exploration.terminal_indices()),
            "root": exploration.root,
        },
        "observability": {
            "matcher_stats": exploration.matcher_stats,
            "reduction_stats": exploration.reduction_stats,
            "wire_stats": exploration.wire_stats,
            "store_stats": exploration.store_stats,
            "profile": exploration.profile,
        },
    }
