"""Append-only, content-hash-keyed write-ahead journal of campaign verdicts.

A long fleet campaign that dies with its coordinator loses every verdict it
computed; re-running from scratch is exactly the waste ROADMAP item 2's
"incremental/resumable campaign log" names.  A :class:`CampaignJournal` is
the durability layer: every completed report is appended — and fsynced —
to a single journal file *before* the campaign engine hands it to the
caller, keyed by a content hash of the work item's spec.  A campaign
killed mid-run and re-pointed at the same journal replays the journaled
verdicts and executes only the remainder; because every report is a pure
function of its task (the engine's core determinism invariant), the merged
report list is identical to an uninterrupted run's.

Record format
=============
The journal is a flat sequence of self-delimiting binary records::

    +----------------+----------------+----------------------------------+
    | length (4B !I) | crc32  (4B !I) | pickle((key, value)), length B   |
    +----------------+----------------+----------------------------------+

``key`` is a hex content hash of the work-item spec (see :meth:`task_key`
— any spec with a deterministic ``repr`` works, so ``ExploreKey``-shaped
tuples key :class:`~repro.checking.model_checker.CheckResult`\\ s the same
way), and ``value`` is the completed report object.  Appends are
``flush`` + ``fsync`` — the write-ahead property — and a crash can
therefore only ever produce a *torn tail*: on open, records are replayed
until the first short/corrupt one, the tail is truncated away, and the
journal is immediately appendable again.  Duplicate keys are legal
(last-written wins on load), which makes re-recording after a resume
idempotent rather than an error.

The journal is a single-writer object (one campaign engine at a time);
readers may load a copy at any time via a fresh :class:`CampaignJournal`.

``faults=`` accepts a :class:`~repro.engine.faults.FaultPlan`; the plan's
``journal.record`` site fires after each durable append, which is how the
chaos suite kills a coordinator *between* committed verdicts and proves
kill/resume parity.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a module cycle)
    from .faults import FaultPlan

__all__ = [
    "CampaignJournal",
    "ShardSnapshotStore",
    "RECORD_HEADER",
    "content_key",
    "iter_records",
    "pack_record",
]

#: Record header: 4-byte big-endian body length + 4-byte CRC32 of the body.
RECORD_HEADER = struct.Struct("!II")
_RECORD_HEADER = RECORD_HEADER  # backward-compatible private alias


def content_key(spec: object) -> str:
    """A stable content hash of a work-item spec.

    SHA-256 over ``repr(spec)`` — dataclass reprs
    (:class:`~repro.engine.campaign.CampaignTask`) and primitive tuples
    (``ExploreKey``) are both deterministic functions of their field
    values, so equal specs key identically across processes and runs.
    Shared by :class:`CampaignJournal` and the verdict store
    (:mod:`repro.engine.store`), so a spec addresses the same record in
    both.
    """
    return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()


def pack_record(key: str, value: object) -> bytes:
    """One self-delimiting ``(length, crc32, pickle((key, value)))`` record."""
    body = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
    return RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body


def iter_records(data: bytes) -> Iterator[Tuple[str, object, int]]:
    """Yield ``(key, value, end_offset)`` until the first bad record.

    A short header, a short body, a CRC mismatch or an undecodable pickle
    all terminate iteration — everything from that point on is a torn or
    corrupt tail the caller should truncate away.
    """
    offset = 0
    header = RECORD_HEADER.size
    while offset + header <= len(data):
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        body = data[offset + header : offset + header + length]
        if len(body) < length or zlib.crc32(body) != crc:
            return  # torn or corrupt tail: everything after is dropped
        try:
            key, value = pickle.loads(body)
        except Exception:  # noqa: BLE001 - undecodable == corrupt
            return
        offset += header + length
        yield key, value, offset


class CampaignJournal:
    """Durable ``{spec-hash: report}`` store with torn-tail recovery.

    Opening loads every intact record into memory (the journal is a
    verdict log, not a bulk store — campaigns are thousands of reports,
    not millions of states) and truncates any torn tail left by a crash
    mid-append, so the file always ends on a record boundary.

    ``fresh=True`` discards any existing contents instead of resuming
    from them.  Use as a context manager or :meth:`close` explicitly.
    """

    def __init__(
        self,
        path,
        *,
        fresh: bool = False,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.path = Path(path)
        self._faults = faults
        self._entries: Dict[str, object] = {}
        #: Torn bytes discarded from the tail on open (observability: a
        #: nonzero value means the previous writer died mid-append).
        self.recovered_bytes = 0
        if fresh and self.path.exists():
            self.path.unlink()
        valid_end = self._load()
        self._file = open(self.path, "ab")
        if self._file.tell() > valid_end:
            self.recovered_bytes = self._file.tell() - valid_end
            self._file.truncate(valid_end)
            self._file.seek(valid_end)

    # -- loading ---------------------------------------------------------
    def _load(self) -> int:
        """Replay intact records; return the byte offset of the last one."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        offset = 0
        for key, value, end in self._records(data):
            self._entries[key] = value
            offset = end
        return offset

    @staticmethod
    def _records(data: bytes) -> Iterator[Tuple[str, object, int]]:
        """Yield ``(key, value, end_offset)`` until the first bad record."""
        return iter_records(data)

    # -- keys ------------------------------------------------------------
    task_key = staticmethod(content_key)

    # -- store -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[object]:
        """The journaled value for ``key``, or ``None``."""
        return self._entries.get(key)

    def put(self, key: str, value: object) -> None:
        """Durably append one ``(key, value)`` record (flush + fsync).

        The record is on disk before this returns — the write-ahead
        property resume parity rests on.  An installed fault plan's
        ``journal.record`` site fires *after* the append, so an injected
        coordinator crash always lands between committed verdicts.
        """
        if self._file.closed:
            raise RuntimeError("CampaignJournal is closed")
        self._file.write(pack_record(key, value))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._entries[key] = value
        if self._faults is not None:
            self._faults.check_crash("journal.record")

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"CampaignJournal({str(self.path)!r}, entries={len(self._entries)})"


class ShardSnapshotStore:
    """Checkpointed shard snapshots in the :class:`CampaignJournal` record format.

    A stateful exploration session (:mod:`repro.engine.distributed`) keeps
    one append-only *intern table* per logical shard — the states that shard
    has ever exchanged, in exchange order — mirrored on the coordinator and
    the owning worker.  The table *is* the shard's resident state: restoring
    it on a fresh worker resumes the session's reference compression exactly
    where the dead worker left off.  This store checkpoints those tables.

    Snapshots are **incremental**: because tables are append-only and their
    contents are a deterministic function of the exploration, a checkpoint
    only needs the suffix since the previous one.  Each :meth:`append` call
    records one contiguous suffix — in memory always, and durably (through
    a :class:`CampaignJournal`, same length+CRC framed records, fsynced)
    when the store was opened with a path.  Reopening a durable store
    replays the suffix records in append order and reassembles the tables,
    skipping any suffix that does not extend its shard contiguously (a
    stale record from an abandoned session generation).

    The per-shard **watermark** is simply the table length: two table
    copies of the same session with equal length are equal element-wise
    (append-only + deterministic), so "is this snapshot current?" is an
    integer comparison.
    """

    def __init__(self, path=None, *, faults: Optional["FaultPlan"] = None) -> None:
        self._journal: Optional[CampaignJournal] = (
            CampaignJournal(path, faults=faults) if path is not None else None
        )
        self._tables: Dict[Tuple[str, int], List[object]] = {}
        if self._journal is not None:
            # CampaignJournal._entries preserves append order (insertion-
            # ordered dict, unique key per suffix), so replay reassembles
            # each table exactly as it was written.
            for value in self._journal._entries.values():
                session_id, shard, start, entries = value
                table = self._tables.setdefault((session_id, shard), [])
                if start == len(table):
                    table.extend(entries)

    @property
    def path(self) -> Optional[Path]:
        """The durable journal path, or ``None`` for an in-memory store."""
        return self._journal.path if self._journal is not None else None

    def append(self, session_id: str, shard: int, start: int, entries: List[object]) -> None:
        """Checkpoint one contiguous table suffix ``[start:start+len(entries)]``.

        ``start`` must equal the stored watermark — snapshots of an
        append-only table can only ever grow it.
        """
        table = self._tables.setdefault((session_id, shard), [])
        if start != len(table):
            raise ValueError(
                f"non-contiguous snapshot for {session_id!r} shard {shard}:"
                f" suffix starts at {start}, stored watermark is {len(table)}"
            )
        table.extend(entries)
        if self._journal is not None:
            key = CampaignJournal.task_key((session_id, shard, start))
            self._journal.put(key, (session_id, shard, start, list(entries)))

    def watermark(self, session_id: str, shard: int) -> int:
        """Checkpointed table length for the shard (0 when never snapshot)."""
        return len(self._tables.get((session_id, shard), ()))

    def restore(self, session_id: str, shard: int) -> Optional[List[object]]:
        """A copy of the checkpointed table, or ``None`` when absent/empty."""
        table = self._tables.get((session_id, shard))
        return list(table) if table else None

    def drop_session(self, session_id: str) -> None:
        """Forget a closed session's tables (the durable log keeps history)."""
        for key in [k for k in self._tables if k[0] == session_id]:
            del self._tables[key]

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ShardSnapshotStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        where = str(self.path) if self.path is not None else "memory"
        return f"ShardSnapshotStore({where!r}, shards={len(self._tables)})"
