"""Opt-in per-phase time profiling for the exploration kernels.

Set ``REPRO_PROFILE=1`` in the environment and every exploration —
object-kernel or packed — attaches a wall-clock phase split to
``Exploration.profile``::

    {"kernel": "packed", "match_s": ..., "canonicalise_s": ...,
     "dedup_s": ..., "inflate_s": ..., "total_s": ...}

The phases are the four stages every explorer iterates:

* **match** — successor generation: guard evaluation / signature-table
  lookups plus, for the packed kernel, materialising the successor codes
  (table probing and code arithmetic are fused in its hot loop, so they
  are reported as one number);
* **canonicalise** — orbit-representative selection under the active
  reduction pipeline (zero when no quotient is active);
* **dedup** — interning successors into the dense index;
* **inflate** — converting packed codes back to
  :class:`~repro.engine.states.SchedulerState` objects at the
  ``Exploration`` boundary (zero for the object kernel, which never
  leaves object representation);
* **store** — verdict-store lookup and deserialization time
  (:mod:`repro.engine.store`): zero when no ``store=`` is threaded
  through, the full cost of the hit when one answers.

Profiling is strictly opt-in because the per-successor clock reads cost
real time on the hot path; when the variable is unset the explorers skip
every timing branch.  The numbers are observability, not results:
``profile`` is excluded from ``Exploration`` equality.
"""

from __future__ import annotations

import os
from typing import Dict

__all__ = ["PROFILE_ENV", "KernelProfile", "profiling_enabled"]

#: The environment variable that switches phase profiling on.
PROFILE_ENV = "REPRO_PROFILE"


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for a per-phase time split."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0", "false", "False")


class KernelProfile:
    """Accumulates the per-phase wall-clock split of one exploration."""

    __slots__ = ("kernel", "match_s", "canonicalise_s", "dedup_s", "inflate_s", "store_s")

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
        self.match_s = 0.0
        self.canonicalise_s = 0.0
        self.dedup_s = 0.0
        self.inflate_s = 0.0
        self.store_s = 0.0

    def as_dict(self) -> Dict[str, object]:
        """The picklable report attached to ``Exploration.profile``."""
        return {
            "kernel": self.kernel,
            "match_s": self.match_s,
            "canonicalise_s": self.canonicalise_s,
            "dedup_s": self.dedup_s,
            "inflate_s": self.inflate_s,
            "store_s": self.store_s,
            "total_s": self.match_s + self.canonicalise_s + self.dedup_s
            + self.inflate_s + self.store_s,
        }
