"""Hash-partitioned parallel state-space exploration.

The serial explorer (:mod:`repro.engine.explorer`) expands a breadth-first
frontier one state at a time; on multi-core machines that leaves all but
one core idle while successor generation — guard evaluation over every
``(rule, symmetry)`` pair — dominates the wall clock.  This module fans the
frontier over a ``multiprocessing`` pool, wave by wave:

1. **Partition.** The states of the current BFS wave are split by
   canonical-state hash, ``shard = hash(state) % workers`` — the same
   partitioning trick :class:`~repro.engine.campaign.ParallelCampaignEngine`
   uses for campaign tasks, applied one level deeper, to the frontier
   itself.  Hashing the canonical state keeps each shard's working set
   disjoint and statistically balanced.
2. **Expand.** Every worker expands its shard with a process-local
   :class:`~repro.engine.transition.AlgorithmTransitionSystem` whose
   matcher is backed by the worker's persistent
   :func:`~repro.engine.pool.process_cache`, through a process-local
   :class:`~repro.engine.reduction.ReductionPipeline` rebuilt from the
   spec carried in the shard payload — so partial-order pruning and
   canonicalization happen worker-side, and each edge is labelled with the
   picklable *token* of the witnessing symmetry.
3. **Exchange & merge.** Successor rows — ``(canonical state, witness
   token)`` pairs, the only cross-shard traffic — come back to the
   coordinator, which replays them in serial BFS order: states are
   interned in exactly the order the serial explorer would discover them,
   so the merged :class:`~repro.engine.explorer.Exploration` is
   *identical* to the serial one (states, indices, successor rows, edge
   labels, and therefore the cycle/termination/coverage verdicts), and a
   tripped state budget raises :class:`StateSpaceLimitExceeded` with the
   exact context — message included — the serial explorer would produce.

Canonicalization stays consistent across shard workers by construction:
every worker rebuilds the pipeline from the same spec string, the grid
group and detected color group are pure functions of the (registry-
resolved) algorithm and grid, and representatives are order-independent
minima over the product orbit.

By default each call spawns an ephemeral pool that lives for the one
exploration (worker caches stay warm across its waves).  Pass ``pool=`` —
a long-lived :class:`~repro.engine.pool.ExplorationPool` — to reuse
already-spawned workers instead: startup is amortised across explorations
and the per-worker caches survive from one workload to the next.

Cached ``SchedulerState`` hashes never cross the process boundary (string
hashing is per-process randomized; see ``SchedulerState.__getstate__``), so
shipped states intern correctly next to locally created ones.

Algorithms are shipped to workers by registry name (rule sets close over
lambdas and cannot be pickled); unregistered ad-hoc algorithms, and
``workers <= 1``, fall back to the serial explorer — on the caller's
``cache=`` (or the pool's coordinator cache) when one is supplied, so the
fallback stays exactly as warm as the serial path would have been.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid
from ..core.algorithm import Algorithm
from .explorer import Exploration, explore
from .matcher import MatcherCache, MatcherStats
from .packed import build_transition_system, normalize_kernel
from .pool import ExploreKey, ExplorationPool, default_workers, expand_shard, registered
from .reduction import ReductionPipeline, ReductionSpec, normalize_reduction
from .states import SchedulerState, initial_state
from .transition import MODELS

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a module cycle)
    from .backend import ExecutionBackend, ShardSession
    from .store import VerdictStore

__all__ = ["explore_sharded", "default_workers"]

#: A shard expansion round: payloads in, ``(rows, (hits, misses), reduction
#: counter delta)`` out.
_MapFn = Callable[[Sequence[Tuple[ExploreKey, List[SchedulerState]]]], list]


def explore_sharded(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    *,
    workers: Optional[int] = None,
    reduction: ReductionSpec = None,
    symmetry_reduction: bool = False,
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
    cache: Optional[MatcherCache] = None,
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    kernel: Optional[str] = None,
    store: Optional["VerdictStore"] = None,
) -> Exploration:
    """Build the reachable successor graph with a sharded process pool.

    The result is identical to ``explore(AlgorithmTransitionSystem(...))``
    with the same keyword arguments — same states in the same interned
    order, same successor rows and edge labels, hence bit-identical
    cycle/termination/coverage verdicts — and a tripped ``max_states``
    budget raises the same :class:`StateSpaceLimitExceeded`, context fields
    and message included.  Only ``matcher_stats`` differs (it aggregates
    the per-worker caches).

    ``reduction`` selects the reduction pipeline (spec string or
    :class:`~repro.engine.reduction.ReductionPipeline`; only the spec
    crosses the process boundary); ``symmetry_reduction=True`` remains the
    deprecated alias for ``reduction="grid"``.

    ``kernel`` selects the successor kernel (``"object"``, ``"packed"`` or
    ``"auto"``; see :mod:`repro.engine.packed`) and travels inside the
    :data:`~repro.engine.pool.ExploreKey`, so shard workers rebuild the
    matching transition system exactly like they rebuild reduction
    pipelines.  Kernel choice never changes results — every route is
    parity-gated against the object kernel.

    ``pool`` reuses a persistent :class:`~repro.engine.pool.ExplorationPool`
    instead of spawning an ephemeral one (``workers`` defaults to the
    pool's worker count).  ``backend`` — any
    :class:`~repro.engine.backend.ExecutionBackend`, including the TCP
    :class:`~repro.engine.distributed.DistributedBackend` — supersedes
    both: when the backend opens a stateful shard session
    (``backend.open_exploration``), the wave loop advances that session —
    frontiers stay resident worker-side, waves exchange delta-compressed
    rows, and the returned exploration carries the session's
    ``wire_stats``; otherwise it fans its shards out through the
    stateless ``backend.map_shards`` (sharded even at one worker: a
    remote backend's single worker is still not this process), with the
    backend's ``parallelism`` as the shard count.  Falls back to the serial explorer
    when ``workers <= 1`` (and no backend is given) or when the algorithm
    is not in the registry (its rules cannot cross the process boundary);
    the fallback runs on ``cache`` — or, absent that, the pool's
    coordinator cache — so a caller-supplied cache is honoured on every
    route.

    ``store`` — a :class:`~repro.engine.store.VerdictStore` — serves the
    whole exploration from the verdict cache when its content key
    (``("explore",) + ExploreKey + (max_states,)`` — budget included, so a
    partial run can never answer for a full one) has been computed before,
    on *any* route; a miss computes through the routing below and records
    the result.  Duplicate concurrent requests for one key coalesce onto a
    single computation.  Cached explorations are byte-identical to
    computed ones (``store_stats``/``matcher_stats`` excepted — cache
    observability and warmth).  Explorations from a custom ``start`` state
    or of an unregistered algorithm bypass the store.
    """
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}")
    spec = normalize_reduction(reduction, symmetry_reduction)
    knorm = normalize_kernel(kernel)
    key: ExploreKey = (algorithm.name, grid.m, grid.n, model, spec, knorm)
    if store is not None and start is None and registered(algorithm):
        from .spec import explore_store_key  # local import: shared key spelling

        return store.fetch(
            explore_store_key(algorithm.name, grid.m, grid.n, model, spec, knorm, max_states),
            lambda: _route_exploration(
                algorithm, grid, model, key, spec, knorm,
                workers=workers, max_states=max_states, start=start,
                cache=cache, pool=pool, backend=backend,
            ),
        )
    return _route_exploration(
        algorithm, grid, model, key, spec, knorm,
        workers=workers, max_states=max_states, start=start,
        cache=cache, pool=pool, backend=backend,
    )


def _route_exploration(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    key: ExploreKey,
    spec: str,
    knorm: str,
    *,
    workers: Optional[int],
    max_states: int,
    start: Optional[SchedulerState],
    cache: Optional[MatcherCache],
    pool: Optional[ExplorationPool],
    backend: Optional["ExecutionBackend"],
) -> Exploration:
    """Pick the execution route (session / backend / pool / serial / ephemeral)."""
    if backend is not None and registered(algorithm):
        # Prefer the stateful session route when the backend offers one
        # (today the TCP DistributedBackend): shard frontiers stay
        # resident worker-side and waves exchange table references instead
        # of full payloads.  Backends without resident state — and older
        # duck-typed backends without the method — return/lack None and
        # take the stateless map_shards route below.
        opener = getattr(backend, "open_exploration", None)
        session = opener(key) if opener is not None else None
        if session is not None:
            try:
                return _sharded_exploration(
                    algorithm,
                    grid,
                    model,
                    key,
                    backend.map_shards,
                    workers=session.n_shards,
                    spec=spec,
                    max_states=max_states,
                    start=start,
                    session=session,
                )
            finally:
                # A tripped state budget (or any other failure) must still
                # release the fleet's resident shard state.
                session.close()
        shards = max(1, int(getattr(backend, "parallelism", 1) or 1))
        return _sharded_exploration(
            algorithm,
            grid,
            model,
            key,
            backend.map_shards,
            workers=shards,
            spec=spec,
            max_states=max_states,
            start=start,
        )
    if pool is not None:
        # Never ask a pool for more parallelism than it has: a one-worker
        # pool routes serially (onto its coordinator cache) rather than
        # pretending to shard in-process.
        workers = pool.workers if workers is None else min(workers, pool.workers)
    elif workers is None:
        workers = default_workers()
    if workers <= 1 or not registered(algorithm):
        if cache is None:
            if pool is not None:
                cache = pool.cache
            elif backend is not None:
                # The backend's coordinator cache (when it has one) keeps
                # the unregistered-algorithm fallback as warm as the
                # backend's workers would have been.
                from .backend import backend_cache  # local import: module cycle

                cache = backend_cache(backend)
        matcher = cache.matcher_for(algorithm, grid) if cache is not None else None
        ts = build_transition_system(algorithm, grid, model, knorm, matcher=matcher)
        return explore(ts, reduction=spec, max_states=max_states, start=start)

    if pool is not None:
        return _sharded_exploration(
            algorithm,
            grid,
            model,
            key,
            lambda payloads: pool.map(expand_shard, payloads),
            workers=workers,
            spec=spec,
            max_states=max_states,
            start=start,
        )

    import multiprocessing

    # The platform-default start method, for the same reason as the campaign
    # engine: everything shipped is picklable and workers re-import lazily.
    context = multiprocessing.get_context()
    with context.Pool(processes=workers) as ephemeral:
        return _sharded_exploration(
            algorithm,
            grid,
            model,
            key,
            lambda payloads: ephemeral.map(expand_shard, payloads),
            workers=workers,
            spec=spec,
            max_states=max_states,
            start=start,
        )


def _sharded_exploration(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    key: ExploreKey,
    map_shards: _MapFn,
    *,
    workers: int,
    spec: str,
    max_states: int,
    start: Optional[SchedulerState],
    session: Optional["ShardSession"] = None,
) -> Exploration:
    """The coordinator: partition waves, fan out via ``map_shards``, merge."""
    # The coordinator's own pipeline canonicalises the root and resolves the
    # witness tokens shipped by the workers; for pure grid specs the tokens
    # resolve to the very cached GridSymmetry instances the serial explorer
    # attaches, so merged edge labels compare (and even `is`-compare) equal.
    pipeline = ReductionPipeline(algorithm, grid, model, spec=spec)
    reduce = pipeline.reduced

    root_raw = start if start is not None else initial_state(algorithm, grid)
    root_state, root_sym = pipeline.canonicalize(root_raw)

    states: List[SchedulerState] = [root_state]
    index: Dict[SchedulerState, int] = {root_state: 0}
    succ: List[List[int]] = []
    edge_syms: Optional[List[List[Optional[object]]]] = [] if reduce else None
    total_stats = MatcherStats()

    wave: List[int] = [0]
    while wave:
        # -- partition the wave by canonical-state hash ---------------
        shards: List[List[SchedulerState]] = [[] for _ in range(workers)]
        placement: List[Tuple[int, int]] = []  # wave position -> (shard, slot)
        for state_index in wave:
            state = states[state_index]
            shard = hash(state) % workers
            placement.append((shard, len(shards[shard])))
            shards[shard].append(state)

        # -- expand every non-empty shard in parallel -----------------
        # The session route speaks the same full-state frontiers at this
        # boundary; reference compression is internal to the wire.  Shard
        # numbers travel with the states so resident worker tables stay
        # pinned to their logical shard.
        occupied = [shard for shard in range(workers) if shards[shard]]
        if session is not None:
            results = session.advance_wave([(shard, shards[shard]) for shard in occupied])
        else:
            results = map_shards([(key, shards[shard]) for shard in occupied])
        rows_by_shard: Dict[int, list] = {}
        for shard, (rows, (hits, misses), reduction_delta) in zip(occupied, results):
            rows_by_shard[shard] = rows
            total_stats.merge(MatcherStats(hits, misses))
            pipeline.merge_counters(reduction_delta)

        # -- merge in serial BFS order --------------------------------
        # Waves visit states in interned order and successors are
        # interned row by row, which is exactly the serial explorer's
        # FIFO discovery sequence — so indices, rows and the budget trip
        # point all coincide with the serial run.
        next_wave: List[int] = []
        for wave_position, current in enumerate(wave):
            assert current == len(succ)
            shard, slot = placement[wave_position]
            row_states = rows_by_shard[shard][slot]
            row: List[int] = []
            row_syms: List[Optional[object]] = []
            for rep, token in row_states:
                child = index.get(rep)
                if child is None:
                    child = len(states)
                    if child >= max_states:
                        frontier_size = len(states) - len(succ) - 1
                        raise StateSpaceLimitExceeded(
                            f"{algorithm.name} on {grid.m}x{grid.n} [{model}]:"
                            f" state budget of {max_states} exceeded after expanding"
                            f" {len(succ)} states ({len(states)} discovered,"
                            f" frontier size {frontier_size}"
                            f"{pipeline.budget_note})",
                            algorithm=algorithm.name,
                            model=model,
                            max_states=max_states,
                            states_explored=len(succ),
                            frontier_size=frontier_size,
                        )
                    index[rep] = child
                    states.append(rep)
                    next_wave.append(child)
                row.append(child)
                if reduce:
                    row_syms.append(pipeline.witness_from_token(token))
            succ.append(row)
            if reduce:
                assert edge_syms is not None
                edge_syms.append(row_syms)
        wave = next_wave

    return Exploration(
        model=model,
        reduced=reduce,
        states=states,
        index=index,
        succ=succ,
        edge_syms=edge_syms,
        root=0,
        root_sym=root_sym,
        matcher_stats=total_stats.as_dict(),
        reduction=pipeline.active_spec,
        reduction_stats=pipeline.stats_report(),
        wire_stats=session.wire_stats() if session is not None else None,
    )
