"""Hash-partitioned parallel state-space exploration.

The serial explorer (:mod:`repro.engine.explorer`) expands a breadth-first
frontier one state at a time; on multi-core machines that leaves all but
one core idle while successor generation — guard evaluation over every
``(rule, symmetry)`` pair — dominates the wall clock.  This module fans the
frontier over a ``multiprocessing`` pool, wave by wave:

1. **Partition.** The states of the current BFS wave are split by
   canonical-state hash, ``shard = hash(state) % workers`` — the same
   partitioning trick :class:`~repro.engine.campaign.ParallelCampaignEngine`
   uses for campaign tasks, applied one level deeper, to the frontier
   itself.  Hashing the canonical state keeps each shard's working set
   disjoint and statistically balanced.
2. **Expand.** Every worker expands its shard with a process-local
   :class:`~repro.engine.transition.AlgorithmTransitionSystem` whose
   matcher is backed by a per-worker
   :class:`~repro.engine.matcher.MatcherCache` — the pool lives for the
   whole exploration, so worker caches stay warm across waves.  When
   ``symmetry_reduction`` is on, workers canonicalise their raw successors
   locally and label each edge with the *name* of the witnessing symmetry.
3. **Exchange & merge.** Successor rows — ``(canonical state, symmetry
   name)`` pairs, the only cross-shard traffic — come back to the
   coordinator, which replays them in serial BFS order: states are
   interned in exactly the order the serial explorer would discover them,
   so the merged :class:`~repro.engine.explorer.Exploration` is
   *identical* to the serial one (states, indices, successor rows, edge
   labels, and therefore the cycle/termination/coverage verdicts), and a
   tripped state budget raises :class:`StateSpaceLimitExceeded` with the
   exact context — message included — the serial explorer would produce.

Cached ``SchedulerState`` hashes never cross the process boundary (string
hashing is per-process randomized; see ``SchedulerState.__getstate__``), so
shipped states intern correctly next to locally created ones.

Algorithms are shipped to workers by registry name (rule sets close over
lambdas and cannot be pickled); unregistered ad-hoc algorithms, and
``workers <= 1``, fall back to the serial explorer, which produces the same
``Exploration`` by construction.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid
from ..core.algorithm import Algorithm
from .explorer import Exploration, explore
from .matcher import MatcherCache, MatcherStats
from .states import SchedulerState, initial_state
from .symmetry import GridSymmetry, canonicalize, grid_symmetries
from .transition import MODELS, AlgorithmTransitionSystem

__all__ = ["explore_sharded", "default_workers"]


def default_workers() -> int:
    """The default shard count: one per core."""
    return os.cpu_count() or 1


def _registered(algorithm: Algorithm) -> bool:
    from ..algorithms import registry  # local import: avoids a layering cycle

    return registry.all_algorithms().get(algorithm.name) is algorithm


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
#: Per-process worker context: (transition system, symmetries-or-None).
_WORKER: Optional[Tuple[AlgorithmTransitionSystem, Optional[Tuple[GridSymmetry, ...]]]] = None

#: Per-process matcher cache — persistent across all waves of the
#: exploration the pool was created for.  (Each ``explore_sharded`` call
#: currently creates its own pool, so the cache does not yet survive into
#: the next exploration; keeping one pool alive across a campaign's checks
#: is a ROADMAP item.)
_WORKER_CACHE: Optional[MatcherCache] = None


def _init_worker(name: str, m: int, n: int, model: str, symmetry_reduction: bool) -> None:
    """Pool initializer: build the per-process transition system once."""
    global _WORKER, _WORKER_CACHE
    from ..algorithms import registry  # local import: workers re-import lazily

    algorithm = registry.get(name)
    grid = Grid(m, n)
    if _WORKER_CACHE is None:
        _WORKER_CACHE = MatcherCache()
    ts = AlgorithmTransitionSystem(
        algorithm, grid, model, matcher=_WORKER_CACHE.matcher_for(algorithm, grid)
    )
    symmetries = grid_symmetries(grid, algorithm.chirality) if symmetry_reduction else ()
    _WORKER = (ts, symmetries if len(symmetries) > 1 and symmetry_reduction else None)


#: One expanded row: the state's canonicalised successors, each paired with
#: the name of the symmetry ``h`` such that ``raw = h(rep)`` (``None`` for
#: the identity / unreduced explorations).
_Row = List[Tuple[SchedulerState, Optional[str]]]


def _expand_shard(states: List[SchedulerState]) -> Tuple[List[_Row], Tuple[int, int]]:
    """Expand one shard's slice of the wave; the worker map function.

    Returns the successor rows in input order plus the matcher hit/miss
    delta this batch generated (aggregated by the coordinator into
    ``Exploration.matcher_stats``).
    """
    assert _WORKER is not None, "worker used before initialization"
    ts, symmetries = _WORKER
    stats_before = ts.matcher.stats.snapshot()
    rows: List[_Row] = []
    for state in states:
        row: _Row = []
        for raw in ts.successors(state):
            if symmetries is not None:
                rep, h = canonicalize(raw, symmetries)
                row.append((rep, None if h is None else h.name))
            else:
                row.append((raw, None))
        rows.append(row)
    delta = ts.matcher.stats.delta_since(stats_before)
    return rows, (delta.hits, delta.misses)


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------
def explore_sharded(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    *,
    workers: Optional[int] = None,
    symmetry_reduction: bool = False,
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
) -> Exploration:
    """Build the reachable successor graph with a sharded process pool.

    The result is identical to ``explore(AlgorithmTransitionSystem(...))``
    with the same keyword arguments — same states in the same interned
    order, same successor rows and edge labels, hence bit-identical
    cycle/termination/coverage verdicts — and a tripped ``max_states``
    budget raises the same :class:`StateSpaceLimitExceeded`, context fields
    and message included.  Only ``matcher_stats`` differs (it aggregates
    the per-worker caches).

    Falls back to the serial explorer when ``workers <= 1`` or when the
    algorithm is not in the registry (its rules cannot cross the process
    boundary).
    """
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}")
    workers = workers if workers is not None else default_workers()
    if workers <= 1 or not _registered(algorithm):
        ts = AlgorithmTransitionSystem(algorithm, grid, model)
        return explore(
            ts, symmetry_reduction=symmetry_reduction, max_states=max_states, start=start
        )

    import multiprocessing

    symmetries = grid_symmetries(grid, algorithm.chirality) if symmetry_reduction else ()
    reduce = symmetry_reduction and len(symmetries) > 1
    # Workers ship edge labels as symmetry *names*; resolve them to the very
    # instances the serial explorer would attach (``canonicalize`` labels
    # edges with ``best.inverse()``, and inverses are cached on the shared
    # group elements, so the lookup below reproduces serial labels exactly).
    sym_by_name: Dict[str, GridSymmetry] = {
        gs.inverse().name: gs.inverse() for gs in symmetries if not gs.is_identity
    }

    root_raw = start if start is not None else initial_state(algorithm, grid)
    root_sym: Optional[GridSymmetry] = None
    if reduce:
        root_state, root_sym = canonicalize(root_raw, symmetries)
    else:
        root_state = root_raw

    states: List[SchedulerState] = [root_state]
    index: Dict[SchedulerState, int] = {root_state: 0}
    succ: List[List[int]] = []
    edge_syms: Optional[List[List[Optional[GridSymmetry]]]] = [] if reduce else None
    total_stats = MatcherStats()

    # The platform-default start method, for the same reason as the campaign
    # engine: everything shipped is picklable and workers re-import lazily.
    context = multiprocessing.get_context()
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(algorithm.name, grid.m, grid.n, model, symmetry_reduction),
    ) as pool:
        wave: List[int] = [0]
        while wave:
            # -- partition the wave by canonical-state hash ---------------
            shards: List[List[SchedulerState]] = [[] for _ in range(workers)]
            placement: List[Tuple[int, int]] = []  # wave position -> (shard, slot)
            for state_index in wave:
                state = states[state_index]
                shard = hash(state) % workers
                placement.append((shard, len(shards[shard])))
                shards[shard].append(state)

            # -- expand every non-empty shard in parallel -----------------
            occupied = [shard for shard in range(workers) if shards[shard]]
            results = pool.map(_expand_shard, [shards[shard] for shard in occupied])
            rows_by_shard: Dict[int, List[_Row]] = {}
            for shard, (rows, (hits, misses)) in zip(occupied, results):
                rows_by_shard[shard] = rows
                total_stats.merge(MatcherStats(hits, misses))

            # -- merge in serial BFS order --------------------------------
            # Waves visit states in interned order and successors are
            # interned row by row, which is exactly the serial explorer's
            # FIFO discovery sequence — so indices, rows and the budget trip
            # point all coincide with the serial run.
            next_wave: List[int] = []
            for wave_position, current in enumerate(wave):
                assert current == len(succ)
                shard, slot = placement[wave_position]
                row_states = rows_by_shard[shard][slot]
                row: List[int] = []
                row_syms: List[Optional[GridSymmetry]] = []
                for rep, sym_name in row_states:
                    child = index.get(rep)
                    if child is None:
                        child = len(states)
                        if child >= max_states:
                            frontier_size = len(states) - len(succ) - 1
                            raise StateSpaceLimitExceeded(
                                f"{algorithm.name} on {grid.m}x{grid.n} [{model}]:"
                                f" state budget of {max_states} exceeded after expanding"
                                f" {len(succ)} states ({len(states)} discovered,"
                                f" frontier size {frontier_size}"
                                + (", symmetry reduction on)" if reduce else ")"),
                                algorithm=algorithm.name,
                                model=model,
                                max_states=max_states,
                                states_explored=len(succ),
                                frontier_size=frontier_size,
                            )
                        index[rep] = child
                        states.append(rep)
                        next_wave.append(child)
                    row.append(child)
                    if reduce:
                        row_syms.append(None if sym_name is None else sym_by_name[sym_name])
                succ.append(row)
                if reduce:
                    assert edge_syms is not None
                    edge_syms.append(row_syms)
            wave = next_wave

    return Exploration(
        model=model,
        reduced=reduce,
        states=states,
        index=index,
        succ=succ,
        edge_syms=edge_syms,
        root=0,
        root_sym=root_sym,
        matcher_stats=total_stats.as_dict(),
    )
