"""The packed fast-path successor kernel.

The object kernel (:class:`~repro.engine.transition.AlgorithmTransitionSystem`)
spends most of a serial exploration *shuffling objects*: every successor
allocates ``k`` :class:`~repro.engine.states.AsyncRobotState` records, sorts
them with tuple keys, hashes strings, and probes dictionaries keyed on nested
tuples.  The matcher memo tables already made rule evaluation cheap, so object
churn — not guard evaluation — is the serial states/s ceiling behind every
backend built on top (sharded waves, pools, TCP daemons all multiply serial
throughput).

This module removes that ceiling while keeping the object kernel as the
authoritative reference implementation:

* :class:`PackedSpace` encodes one robot record as a single ~89-bit integer
  (see the bit layout below) and interns ASYNC snapshots into a per-space
  id table, so a whole :class:`~repro.engine.states.SchedulerState` becomes
  a sorted tuple of plain ints — hashing, equality and canonical ordering
  all run at C speed on machine words;
* successor generation is **table-driven**: matcher results are compiled on
  first use into dense lookup tables keyed by packed *neighbourhood
  signatures* (walls + occupancy of the visibility ball + own color, one
  big int per robot), so the steady-state hot loop is dict-get plus integer
  arithmetic with no object allocation at all;
* :class:`PackedTransitionSystem` exposes the compiled kernel both through
  the ordinary :class:`~repro.engine.transition.TransitionSystem` protocol
  (object states in, object states out — which is what the reduction
  pipelines and the sharded workers consume) and through
  :meth:`PackedTransitionSystem.explore_packed`, a frontier-at-a-time BFS
  over packed codes that only inflates back to ``SchedulerState`` objects
  at the :class:`~repro.engine.explorer.Exploration` boundary;
* an optional NumPy path (:meth:`PackedSpace.wave_signatures`) evaluates
  the neighbourhood signatures of a whole frontier wave per call and is
  auto-disabled when numpy is absent or the wave is too small to amortise
  the array round-trip.

Bit layout of a packed robot code (LSB to MSB)::

    bits  0-4   pending move: (di+2)*5 + (dj+2) in [0, 24], 25 = None
    bits  5-8   pending color: 0 = None, else color index + 1
    bits  9-40  snapshot id: 0 = None, else index into the intern table
    bits 41-42  phase: 0 = "computed", 1 = "idle", 2 = "looked"
    bits 43-46  color index into the sorted palette
    bits 47-67  position j + POS_BIAS  (biased so off-grid drift stays valid)
    bits 68-..  position i + POS_BIAS

The field order is chosen so that **plain integer order equals the canonical
record order** of :meth:`AsyncRobotState.key` on every field except the
snapshot id (ids are first-seen, not value-ordered): the palette is indexed
in sorted string order, phase codes follow the alphabetical order of the
phase names, pending-None encodings sort exactly where ``key()`` places
them.  Snapshot-free states (everything the synchronous models reach from a
canonical start) therefore sort as bare ints; states carrying snapshots sort
through a memoized per-code key that splices the *interned snapshot value*
back into the comparison, which agrees with ``key()`` because two records
can only tie into the snapshot comparison from the same position — where
their frozen snapshots have identical wall structure and are comparable.

Parity is the contract: explorations, reduction statistics and budget-trip
messages produced through this kernel are byte-identical to the object
kernel's (enforced by ``tests/engine/test_packed.py`` and the bench smoke
guard).  Quotient reductions (``"grid"``, ``"grid+color"``, ...) keep using
the generic object-level explorer loop — with this class as the transition
system, so expansion is still table-driven — because orbit canonicalisation
is inherently an object-level computation; the packed BFS handles the
``"none"``/``"por"`` pipelines, which is where the raw states/s ceiling
lives.
"""

from __future__ import annotations

from itertools import combinations, product
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Grid
from ..core.views import ball_offsets
from .matcher import LocalMatcher
from .profile import KernelProfile, profiling_enabled
from .states import AsyncRobotState, SchedulerState, initial_state
from .transition import MODELS, AlgorithmTransitionSystem

try:  # pragma: no cover - exercised via HAS_NUMPY gating in tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

__all__ = [
    "KERNELS",
    "HAS_NUMPY",
    "normalize_kernel",
    "build_transition_system",
    "PackedSpace",
    "PackedTransitionSystem",
]

#: Whether the optional vectorized wave path is available at all.
HAS_NUMPY = _np is not None

#: The kernel specs accepted everywhere a ``kernel=`` argument exists.
KERNELS = ("object", "packed", "auto")

#: Waves smaller than this skip the NumPy signature path: the array
#: round-trip costs more than the scalar loop saves on tiny frontiers.
_WAVE_NUMPY_MIN = 64

# ---------------------------------------------------------------------------
# Bit layout constants (documented in the module docstring)
# ---------------------------------------------------------------------------
PM_SHIFT = 0
PC_SHIFT = 5
SNAP_SHIFT = 9
PHASE_SHIFT = 41
COLOR_SHIFT = 43
POSJ_SHIFT = 47
POSI_SHIFT = 68

PM_NONE = 25
SNAP_MASK = (1 << 32) - 1
POS_BIAS = 1 << 20
_COORD_MASK = (1 << 21) - 1
#: Everything below the position fields (phase, color, snapshot, pendings).
LOW_MASK = (1 << POSJ_SHIFT) - 1
#: The two position fields alone.
POS_FIELD_MASK = ~LOW_MASK

PHASE_COMPUTED, PHASE_IDLE, PHASE_LOOKED = 0, 1, 2
_PHASE_CODE = {"computed": PHASE_COMPUTED, "idle": PHASE_IDLE, "looked": PHASE_LOOKED}
_PHASE_NAME = ("computed", "idle", "looked")

#: pending-move code -> decoded offset (index 25 = None).
_PM_DECODE = tuple((e // 5 - 2, e % 5 - 2) for e in range(25)) + (None,)
#: pending-move code -> additive delta on the position fields (index 25 = 0).
_PM_POS_DELTA = tuple(
    ((e // 5 - 2) << POSI_SHIFT) + ((e % 5 - 2) << POSJ_SHIFT) for e in range(25)
) + (0,)


def _encode_move(move: Tuple[int, int]) -> int:
    di, dj = move
    if not (-2 <= di <= 2 and -2 <= dj <= 2):
        raise ValueError(f"move {move!r} outside the packed kernel's +-2 range")
    return (di + 2) * 5 + (dj + 2)


def normalize_kernel(kernel) -> str:
    """Resolve a ``kernel=`` spec to ``"object"`` or ``"packed"``.

    ``None`` means the caller did not opt in and keeps the authoritative
    object kernel; ``"auto"`` resolves to ``"packed"`` (the fast path is
    parity-gated, so there is no correctness reason to prefer the object
    kernel when one was requested).
    """
    if kernel is None:
        return "object"
    if isinstance(kernel, str):
        value = kernel.strip().lower()
        if value == "auto":
            return "packed"
        if value in ("object", "packed"):
            return value
    raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")


def build_transition_system(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    kernel: str = "object",
    matcher: Optional[LocalMatcher] = None,
):
    """The transition system for ``kernel`` (the worker-side rebuild hook)."""
    if normalize_kernel(kernel) == "packed":
        return PackedTransitionSystem(algorithm, grid, model, matcher=matcher)
    return AlgorithmTransitionSystem(algorithm, grid, model, matcher=matcher)


class PackedSpace:
    """Codec plus compiled successor tables for one ``(algorithm, grid)`` pair.

    The space owns the snapshot intern table and every signature-keyed
    lookup table; all of them fill lazily through the bound
    :class:`~repro.engine.matcher.LocalMatcher` (so matcher hit/miss
    statistics keep meaning what they always meant: table compilation is a
    matcher lookup, steady-state signature hits never touch the matcher).
    """

    __slots__ = (
        "algorithm",
        "grid",
        "matcher",
        "colors",
        "color_index",
        "phi",
        "idle_suffix",
        "_m1",
        "_n1",
        "_wall_lo",
        "_wall_bias",
        "_wall_bits",
        "_cell_bits",
        "_offsets",
        "_offset_deltas",
        "_snap_ids",
        "_snapshots",
        "_sync_actions",
        "_look",
        "_computed",
        "_sort_keys",
        "_pack_memo",
        "_inflate_memo",
        "_inflate_state_memo",
        "_use_numpy",
        "_np_offset_deltas",
    )

    def __init__(self, algorithm: Algorithm, grid: Grid, matcher: LocalMatcher,
                 *, use_numpy: Optional[bool] = None) -> None:
        colors = tuple(sorted(algorithm.colors))
        if len(colors) > 15:
            raise ValueError(
                f"{algorithm.name}: packed kernel supports at most 15 colors, got {len(colors)}"
            )
        if algorithm.k > 15:
            raise ValueError(
                f"{algorithm.name}: packed kernel supports at most 15 robots, got {algorithm.k}"
            )
        if max(grid.m, grid.n) >= POS_BIAS - 4:
            raise ValueError(f"grid {grid.m}x{grid.n} exceeds the packed coordinate range")
        self.algorithm = algorithm
        self.grid = grid
        self.matcher = matcher
        self.colors = colors
        self.color_index = {color: index for index, color in enumerate(colors)}
        phi = algorithm.phi
        self.phi = phi
        self._m1 = grid.m - 1
        self._n1 = grid.n - 1
        # Wall distances are clamped at -(phi+1): any wall at or below that
        # bound excludes exactly the same ball cells (|di|, |dj| <= phi), so
        # the clamp is semantics-preserving while keeping the signature field
        # width fixed even for off-grid drift.
        self._wall_lo = -(phi + 1)
        self._wall_bias = phi + 1
        self._wall_bits = (2 * phi + 2).bit_length()
        # 4 bits of occupancy count per color per cell (k <= 15 guards this).
        self._cell_bits = 4 * len(colors)
        self._offsets = ball_offsets(phi)
        self._offset_deltas = tuple((di << 21) + dj for di, dj in self._offsets)
        self._snap_ids: Dict[tuple, int] = {}
        self._snapshots: List[Optional[tuple]] = [None]  # id 0 = no snapshot
        self._sync_actions: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._look: Dict[int, int] = {}
        self._computed: Dict[int, Tuple[int, ...]] = {}
        self._sort_keys: Dict[int, tuple] = {}
        self._pack_memo: Dict[AsyncRobotState, int] = {}
        self._inflate_memo: Dict[int, AsyncRobotState] = {}
        self._inflate_state_memo: Dict[Tuple[int, ...], SchedulerState] = {}
        self.idle_suffix = tuple(
            (index << COLOR_SHIFT) | (PHASE_IDLE << PHASE_SHIFT) | PM_NONE
            for index in range(len(colors))
        )
        self._use_numpy = HAS_NUMPY if use_numpy is None else (use_numpy and HAS_NUMPY)
        if self._use_numpy and (self._cell_bits > 56 or len(colors) > 14):
            # Per-cell occupancy sums must stay inside int64 on the vector path.
            self._use_numpy = False
        self._np_offset_deltas = (
            _np.array(self._offset_deltas, dtype=_np.int64) if self._use_numpy else None
        )

    # ------------------------------------------------------------------
    # Snapshot interning
    # ------------------------------------------------------------------
    def intern_snapshot(self, frozen) -> int:
        """The id of a frozen snapshot (0 for ``None``), interning on first use."""
        if frozen is None:
            return 0
        snap_id = self._snap_ids.get(frozen)
        if snap_id is None:
            snap_id = len(self._snapshots)
            if snap_id > SNAP_MASK:  # pragma: no cover - 2^32 snapshots
                raise ValueError("snapshot intern table overflow")
            self._snap_ids[frozen] = snap_id
            self._snapshots.append(frozen)
        return snap_id

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def pack_record(self, record: AsyncRobotState) -> int:
        """Encode one record (memoized on the record object)."""
        code = self._pack_memo.get(record)
        if code is None:
            i, j = record.pos
            move = record.pending_move
            code = (
                ((i + POS_BIAS) << POSI_SHIFT)
                | ((j + POS_BIAS) << POSJ_SHIFT)
                | (self.color_index[record.color] << COLOR_SHIFT)
                | (_PHASE_CODE[record.phase] << PHASE_SHIFT)
                | (self.intern_snapshot(record.snapshot) << SNAP_SHIFT)
                | ((0 if record.pending_color is None else self.color_index[record.pending_color] + 1) << PC_SHIFT)
                | (PM_NONE if move is None else _encode_move(move))
            )
            self._pack_memo[record] = code
        return code

    def inflate_code(self, code: int) -> AsyncRobotState:
        """Decode one record (memoized, so equal codes share one object)."""
        record = self._inflate_memo.get(code)
        if record is None:
            pm = code & 31
            pc = (code >> PC_SHIFT) & 15
            snap_id = (code >> SNAP_SHIFT) & SNAP_MASK
            record = AsyncRobotState(
                pos=(
                    (code >> POSI_SHIFT) - POS_BIAS,
                    ((code >> POSJ_SHIFT) & _COORD_MASK) - POS_BIAS,
                ),
                color=self.colors[(code >> COLOR_SHIFT) & 15],
                phase=_PHASE_NAME[(code >> PHASE_SHIFT) & 3],
                snapshot=self._snapshots[snap_id] if snap_id else None,
                pending_color=self.colors[pc - 1] if pc else None,
                pending_move=_PM_DECODE[pm],
            )
            self._inflate_memo[code] = record
        return record

    def code_sort_key(self, code: int) -> tuple:
        """A per-code key agreeing with :meth:`AsyncRobotState.key` order.

        Plain integer order already agrees with ``key()`` on every field
        except the snapshot id (first-seen, not value-ordered), so the key
        splices the interned snapshot value into the right slot.  Memoized:
        ASYNC explorations compare the same codes over and over.
        """
        key = self._sort_keys.get(code)
        if key is None:
            snap_id = (code >> SNAP_SHIFT) & SNAP_MASK
            key = (
                code >> PHASE_SHIFT,  # position, color, phase
                self._snapshots[snap_id] if snap_id else (),
                code & ((1 << SNAP_SHIFT) - 1),  # pending color, pending move
            )
            self._sort_keys[code] = key
        return key

    def sorted_codes(self, codes: List[int]) -> Tuple[int, ...]:
        """Sort a mutable code list into canonical record order (in place)."""
        codes.sort(key=self.code_sort_key)
        return tuple(codes)

    def pack_state(self, state: SchedulerState) -> Tuple[int, ...]:
        """Encode a canonical state as a sorted tuple of packed codes."""
        return self.sorted_codes([self.pack_record(record) for record in state.robots])

    def inflate_state(self, codes: Tuple[int, ...]) -> SchedulerState:
        """Decode a packed state (memoized per code tuple).

        Packed canonical order equals ``from_records`` order by construction
        (see :meth:`code_sort_key`), so the state is built directly without
        re-sorting.
        """
        state = self._inflate_state_memo.get(codes)
        if state is None:
            state = SchedulerState(robots=tuple(self.inflate_code(code) for code in codes))
            self._inflate_state_memo[codes] = state
        return state

    # ------------------------------------------------------------------
    # Neighbourhood signatures
    # ------------------------------------------------------------------
    def signatures(self, codes: Tuple[int, ...]) -> List[int]:
        """The per-robot neighbourhood signature of every robot in a state.

        A signature packs (clamped walls, per-cell color occupancy counts
        over the visibility ball, own color) into one int; it determines the
        robot's snapshot and hence its matches and actions, which is what
        makes it a valid key for every compiled table.
        """
        by_pos: Dict[int, int] = {}
        for code in codes:
            poskey = code >> POSJ_SHIFT
            cell = 1 << (((code >> COLOR_SHIFT) & 15) << 2)
            existing = by_pos.get(poskey)
            by_pos[poskey] = cell if existing is None else existing + cell
        phi = self.phi
        lo = self._wall_lo
        bias = self._wall_bias
        wall_bits = self._wall_bits
        cell_bits = self._cell_bits
        m1 = self._m1
        n1 = self._n1
        deltas = self._offset_deltas
        get = by_pos.get
        sigs: List[int] = []
        for code in codes:
            poskey = code >> POSJ_SHIFT
            i = (poskey >> 21) - POS_BIAS
            j = (poskey & _COORD_MASK) - POS_BIAS
            wn = phi if i > phi else (lo if i < lo else i)
            s = m1 - i
            ws = phi if s > phi else (lo if s < lo else s)
            ww = phi if j > phi else (lo if j < lo else j)
            e = n1 - j
            we = phi if e > phi else (lo if e < lo else e)
            sig = ((((((wn + bias) << wall_bits) | (ws + bias)) << wall_bits) | (ww + bias)) << wall_bits) | (we + bias)
            for delta in deltas:
                cell = get(poskey + delta)
                sig = ((sig << cell_bits) | cell) if cell else (sig << cell_bits)
            sigs.append((sig << 4) | ((code >> COLOR_SHIFT) & 15))
        return sigs

    def wave_signatures(self, wave_codes: List[Tuple[int, ...]]) -> List[List[int]]:
        """Signatures for a whole frontier wave.

        Dispatches to a NumPy-vectorized occupancy/neighbour computation when
        numpy is available and the wave is large enough to amortise it;
        results are *identical* to per-state :meth:`signatures` calls (the
        parity tests compare both paths directly).
        """
        if (
            not self._use_numpy
            or len(wave_codes) < _WAVE_NUMPY_MIN
            or len(wave_codes) >= (1 << 19)
            or not wave_codes[0]
        ):
            return [self.signatures(codes) for codes in wave_codes]
        np = _np
        # Poskeys (42 bits) and per-state strides fit comfortably in int64
        # even though full codes do not.
        posk = np.array(
            [[code >> POSJ_SHIFT for code in codes] for codes in wave_codes], dtype=np.int64
        )
        cidx = np.array(
            [[(code >> COLOR_SHIFT) & 15 for code in codes] for codes in wave_codes],
            dtype=np.int64,
        )
        wave_size = posk.shape[0]
        stride = np.int64(1) << np.int64(43)
        flat = posk + (np.arange(wave_size, dtype=np.int64) * stride)[:, None]
        cells = np.int64(1) << (cidx << 2)
        uniq, inverse = np.unique(flat.ravel(), return_inverse=True)
        occupancy = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(occupancy, inverse, cells.ravel())
        neighbours = flat[:, :, None] + self._np_offset_deltas
        slots = np.searchsorted(uniq, neighbours)
        slots[slots == len(uniq)] = 0
        values = np.where(uniq[slots] == neighbours, occupancy[slots], 0)
        i = (posk >> 21) - POS_BIAS
        j = (posk & _COORD_MASK) - POS_BIAS
        phi = self.phi
        lo = self._wall_lo
        bias = self._wall_bias
        wall_bits = self._wall_bits
        wn = np.clip(i, lo, phi) + bias
        ws = np.clip(self._m1 - i, lo, phi) + bias
        ww = np.clip(j, lo, phi) + bias
        we = np.clip(self._n1 - j, lo, phi) + bias
        walls = (((((wn << wall_bits) | ws) << wall_bits) | ww) << wall_bits) | we
        cell_bits = self._cell_bits
        walls_list = walls.tolist()
        values_list = values.tolist()
        cidx_list = cidx.tolist()
        out: List[List[int]] = []
        for wall_row, value_row, color_row in zip(walls_list, values_list, cidx_list):
            row: List[int] = []
            for wall, value_cells, color in zip(wall_row, value_row, color_row):
                sig = wall
                for cell in value_cells:
                    sig = ((sig << cell_bits) | cell) if cell else (sig << cell_bits)
                row.append((sig << 4) | color)
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # Table compilation (matcher fallback on signature misses)
    # ------------------------------------------------------------------
    def _local_key(self, codes: Tuple[int, ...], index: int):
        """Reconstruct the matcher's LocalKey for one robot of a packed state.

        Walls use the clamped lower bound (see ``__init__``), which yields
        the identical snapshot — and therefore identical matches, actions
        and frozen snapshots — as the matcher's unclamped key; on-grid the
        two coincide exactly.
        """
        code = codes[index]
        poskey = code >> POSJ_SHIFT
        ci = (poskey >> 21) - POS_BIAS
        cj = (poskey & _COORD_MASK) - POS_BIAS
        phi = self.phi
        lo = self._wall_lo
        colors = self.colors
        near = []
        for other in codes:
            opos = other >> POSJ_SHIFT
            di = (opos >> 21) - POS_BIAS - ci
            dj = (opos & _COORD_MASK) - POS_BIAS - cj
            if abs(di) + abs(dj) <= phi:
                near.append(((di, dj), colors[(other >> COLOR_SHIFT) & 15]))
        near.sort()
        walls = (
            max(lo, min(ci, phi)),
            max(lo, min(self._m1 - ci, phi)),
            max(lo, min(cj, phi)),
            max(lo, min(self._n1 - cj, phi)),
        )
        return (walls, tuple(near))

    def sync_actions(self, sig: int, codes: Tuple[int, ...], index: int) -> Tuple[Tuple[int, int], ...]:
        """Compiled synchronous actions: ``(position delta, record suffix)`` pairs.

        Applying an action to a code is ``((code & POS_FIELD_MASK) + delta)
        | suffix`` — the suffix rebuilds the fresh idle record the object
        kernel's ``_apply_synchronous`` produces (new color, idle phase, no
        snapshot or pendings), so non-idle fields of an activated robot are
        dropped exactly like the reference implementation drops them.
        """
        entry = self._sync_actions.get(sig)
        if entry is None:
            color_index = (codes[index] >> COLOR_SHIFT) & 15
            actions = self.matcher.actions_for_key(
                self._local_key(codes, index), self.colors[color_index]
            )
            compiled = []
            for action in actions:
                move = action.world_move
                delta = 0 if move is None else (move[0] << POSI_SHIFT) + (move[1] << POSJ_SHIFT)
                compiled.append((delta, self.idle_suffix[self.color_index[action.new_color]]))
            entry = tuple(compiled)
            self._sync_actions[sig] = entry
        return entry

    def look_entry(self, sig: int, codes: Tuple[int, ...], index: int) -> int:
        """Compiled ASYNC Look: 0 when the robot is disabled, else the packed
        ``(phase=looked, snapshot id, no pendings)`` low-field pattern to
        compose with the robot's position and color."""
        entry = self._look.get(sig)
        if entry is None:
            key = self._local_key(codes, index)
            color = self.colors[(codes[index] >> COLOR_SHIFT) & 15]
            if self.matcher.matches_for_key(key, color):
                frozen = tuple(sorted(self.matcher.snapshot_for_key(key).items()))
                entry = (PHASE_LOOKED << PHASE_SHIFT) | (self.intern_snapshot(frozen) << SNAP_SHIFT) | PM_NONE
            else:
                entry = 0
            self._look[sig] = entry
        return entry

    def computed_entries(self, snap_id: int, color_index: int) -> Tuple[int, ...]:
        """Compiled ASYNC Compute: the low-field suffix of every distinct
        action decided against the interned snapshot (empty = reset)."""
        table_key = (snap_id << 4) | color_index
        entry = self._computed.get(table_key)
        if entry is None:
            matches = self.matcher.matches_for_frozen(self._snapshots[snap_id], self.colors[color_index])
            compiled = []
            for action in self.algorithm.distinct_actions(matches):
                new_index = self.color_index[action.new_color]
                move = action.world_move
                compiled.append(
                    (new_index << COLOR_SHIFT)
                    | (PHASE_COMPUTED << PHASE_SHIFT)
                    | ((new_index + 1) << PC_SHIFT)
                    | (PM_NONE if move is None else _encode_move(move))
                )
            entry = tuple(compiled)
            self._computed[table_key] = entry
        return entry


class PackedTransitionSystem:
    """Table-driven successor generation behind the ``TransitionSystem`` protocol.

    Drop-in compatible with
    :class:`~repro.engine.transition.AlgorithmTransitionSystem` — same
    constructor shape, same ``initial``/``successors`` contract, same
    ``matcher`` attribute (so reduction pipelines, POR and the sharded
    workers use it unchanged) — plus :meth:`explore_packed`, the wave BFS
    the serial explorer dispatches to for quotient-free pipelines.
    """

    __slots__ = ("algorithm", "grid", "model", "matcher", "space", "_expand",
                 "_succ_memo", "_ample_memo", "_root_codes")

    def __init__(self, algorithm: Algorithm, grid: Grid, model: str,
                 matcher: Optional[LocalMatcher] = None, *,
                 use_numpy: Optional[bool] = None) -> None:
        if model not in MODELS:
            raise ValueError(f"unknown model {model!r}")
        self.algorithm = algorithm
        self.grid = grid
        self.model = model
        self.matcher = matcher if matcher is not None else LocalMatcher(algorithm, grid)
        self.space = PackedSpace(algorithm, grid, self.matcher, use_numpy=use_numpy)
        self._expand = {
            "FSYNC": self._expand_fsync,
            "SSYNC": self._expand_ssync,
            "ASYNC": self._expand_async,
        }[model]
        # Expansion is a pure function of the packed state, so whole successor
        # rows are memoized: a warm re-exploration (the pool / daemon / sweep
        # regime this kernel exists for) degenerates to dict lookups plus
        # interning.  ``_ample_memo`` additionally records the POR counter
        # increments so replays mutate the pipeline counters exactly like the
        # object reducer does on every visit.
        self._succ_memo: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        self._ample_memo: Dict[Tuple[int, ...], Tuple[Optional[List[Tuple[int, ...]]], int, int]] = {}
        self._root_codes: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # TransitionSystem protocol (object states in, object states out)
    # ------------------------------------------------------------------
    def initial(self) -> SchedulerState:
        return initial_state(self.algorithm, self.grid)

    def successors(self, state: SchedulerState) -> List[SchedulerState]:
        """Object-level successors, generated through the packed tables."""
        space = self.space
        return [space.inflate_state(codes) for codes in self.packed_successors(space.pack_state(state))]

    def is_terminal(self, state: SchedulerState) -> bool:
        return not self.successors(state)

    def packed_successors(self, codes: Tuple[int, ...],
                          sigs: Optional[List[int]] = None) -> List[Tuple[int, ...]]:
        """Successor code tuples of one packed state (memoized; BFS hot call)."""
        row = self._succ_memo.get(codes)
        if row is None:
            row = self._expand(codes, sigs)
            self._succ_memo[codes] = row
        return row

    # ------------------------------------------------------------------
    # Packed expansion (exact mirrors of the object kernel's enumeration)
    # ------------------------------------------------------------------
    def _snap_free(self, codes: Tuple[int, ...]) -> bool:
        """Whether plain int order is safe for successors of this state.

        Integer order can only disagree with canonical record order on the
        snapshot field; synchronous successors carry a snapshot only where
        the parent did (activated robots reset to fresh idle records).
        """
        for code in codes:
            if (code >> SNAP_SHIFT) & SNAP_MASK:
                return False
        return True

    def _expand_fsync(self, codes, sigs=None):
        space = self.space
        if sigs is None:
            sigs = space.signatures(codes)
        choices = []
        for index, sig in enumerate(sigs):
            actions = space.sync_actions(sig, codes, index)
            if actions:
                choices.append((index, actions))
        if not choices:
            return []
        base = list(codes)
        plain = self._snap_free(codes)
        sorted_codes = space.sorted_codes
        out = []
        for combo in product(*[actions for _, actions in choices]):
            successor = base[:]
            for (index, _), (delta, suffix) in zip(choices, combo):
                successor[index] = ((successor[index] & POS_FIELD_MASK) + delta) | suffix
            if plain:
                successor.sort()
                out.append(tuple(successor))
            else:
                out.append(sorted_codes(successor))
        return out

    def _expand_ssync(self, codes, sigs=None):
        space = self.space
        if sigs is None:
            sigs = space.signatures(codes)
        choices = []
        for index, sig in enumerate(sigs):
            actions = space.sync_actions(sig, codes, index)
            if actions:
                choices.append((index, actions))
        if not choices:
            return []
        indices = [index for index, _ in choices]
        by_index = dict(choices)
        base = list(codes)
        plain = self._snap_free(codes)
        sorted_codes = space.sorted_codes
        out = []
        for size in range(1, len(indices) + 1):
            for subset in combinations(indices, size):
                for combo in product(*[by_index[index] for index in subset]):
                    successor = base[:]
                    for index, (delta, suffix) in zip(subset, combo):
                        successor[index] = ((successor[index] & POS_FIELD_MASK) + delta) | suffix
                    if plain:
                        successor.sort()
                        out.append(tuple(successor))
                    else:
                        out.append(sorted_codes(successor))
        return out

    def _expand_async(self, codes, sigs=None):
        space = self.space
        sorted_codes = space.sorted_codes
        idle_suffix = space.idle_suffix
        out = []
        for index, code in enumerate(codes):
            phase = (code >> PHASE_SHIFT) & 3
            if phase == PHASE_IDLE:
                # Look — offered only to enabled robots, like the reference.
                if sigs is None:
                    sigs = space.signatures(codes)
                entry = space.look_entry(sigs[index], codes, index)
                if not entry:
                    continue
                successor = list(codes)
                successor[index] = (
                    (code & POS_FIELD_MASK)
                    | (((code >> COLOR_SHIFT) & 15) << COLOR_SHIFT)
                    | entry
                )
                out.append(sorted_codes(successor))
            elif phase == PHASE_LOOKED:
                # Compute — one successor per distinct action, reset if none.
                snap_id = (code >> SNAP_SHIFT) & SNAP_MASK
                color_index = (code >> COLOR_SHIFT) & 15
                entries = space.computed_entries(snap_id, color_index)
                base_pos = code & POS_FIELD_MASK
                if not entries:
                    successor = list(codes)
                    successor[index] = base_pos | idle_suffix[color_index]
                    out.append(sorted_codes(successor))
                    continue
                for entry in entries:
                    successor = list(codes)
                    successor[index] = base_pos | entry
                    out.append(sorted_codes(successor))
            else:
                # Move — apply the pending move and reset to idle.
                successor = list(codes)
                successor[index] = (
                    ((code & POS_FIELD_MASK) + _PM_POS_DELTA[code & 31])
                    | idle_suffix[(code >> COLOR_SHIFT) & 15]
                )
                out.append(sorted_codes(successor))
        return out

    # ------------------------------------------------------------------
    # ASYNC partial-order reduction (packed mirror)
    # ------------------------------------------------------------------
    def _packed_ample(self, codes: Tuple[int, ...],
                      counters: Dict[str, int]) -> Optional[List[Tuple[int, ...]]]:
        """Packed mirror of ``AsyncPartialOrderReduction.ample_successors``.

        Scans codes in canonical order for the first robot holding a private
        step (a Compute that decided no action, or a Move with no pending
        move), finalizes exactly that step and accounts the deferred
        transitions — mutating the *same* pipeline counters the object
        reducer mutates, so ``reduction_stats`` stay byte-identical.
        """
        space = self.space
        sigs: Optional[List[int]] = None
        for index, code in enumerate(codes):
            phase = (code >> PHASE_SHIFT) & 3
            if phase == PHASE_COMPUTED:
                if (code & 31) != PM_NONE:
                    continue
            elif phase == PHASE_LOOKED:
                if space.computed_entries((code >> SNAP_SHIFT) & SNAP_MASK, (code >> COLOR_SHIFT) & 15):
                    continue
            else:
                continue
            successor = list(codes)
            successor[index] = (code & POS_FIELD_MASK) | space.idle_suffix[(code >> COLOR_SHIFT) & 15]
            counters["por_ample_states"] += 1
            deferred = 0
            for other_index, other in enumerate(codes):
                if other_index == index:
                    continue
                if (other >> PHASE_SHIFT) & 3 != PHASE_IDLE:
                    deferred += 1
                else:
                    if sigs is None:
                        sigs = space.signatures(codes)
                    if space.look_entry(sigs[other_index], codes, other_index):
                        deferred += 1
            counters["por_interleavings_pruned"] += deferred
            return [space.sorted_codes(successor)]
        return None

    def _ample_or_none(self, codes: Tuple[int, ...],
                       counters: Dict[str, int]) -> Optional[List[Tuple[int, ...]]]:
        """Memoized ample row with exact counter replay on warm hits."""
        entry = self._ample_memo.get(codes)
        if entry is None:
            ample_before = counters["por_ample_states"]
            pruned_before = counters["por_interleavings_pruned"]
            row = self._packed_ample(codes, counters)
            self._ample_memo[codes] = (
                row,
                counters["por_ample_states"] - ample_before,
                counters["por_interleavings_pruned"] - pruned_before,
            )
            return row
        row, ample_delta, pruned_delta = entry
        counters["por_ample_states"] += ample_delta
        counters["por_interleavings_pruned"] += pruned_delta
        return row

    # ------------------------------------------------------------------
    # Packed wave BFS
    # ------------------------------------------------------------------
    def explore_packed(self, pipeline, *, max_states: int = 200_000, start=None):
        """Frontier-at-a-time BFS over packed codes.

        Only valid for quotient-free pipelines (``"none"``, or ``"por"``
        where POR is the sole — edge-subgraph, non-quotient — component);
        the generic explorer loop handles quotient specs with this object as
        its transition system.  Inflation back to ``SchedulerState`` happens
        once, at the ``Exploration`` boundary; everything the BFS interns,
        hashes and compares is a tuple of ints.
        """
        from .explorer import Exploration  # local import: explorer lazily imports us

        if pipeline.reduced:
            raise ValueError("explore_packed requires a quotient-free reduction pipeline")
        space = self.space
        matcher = self.matcher
        stats_before = matcher.stats.snapshot()
        counters_before = pipeline.counters_snapshot()
        profile = KernelProfile("packed") if profiling_enabled() else None

        por = pipeline._por if (pipeline._por is not None and pipeline._por.active) else None
        counters = pipeline.counters
        if start is not None:
            root = space.pack_state(start)
        else:
            root = self._root_codes
            if root is None:
                root = self._root_codes = space.pack_state(self.initial())

        packed: List[Tuple[int, ...]] = [root]
        index: Dict[Tuple[int, ...], int] = {root: 0}
        succ: List[List[int]] = []
        expand = self._expand
        succ_memo = self._succ_memo
        ample = self._ample_or_none
        wave = [0]
        use_wave_sigs = space._use_numpy and self.model in ("FSYNC", "SSYNC")
        while wave:
            next_wave: List[int] = []
            wave_sigs: Dict[int, List[int]] = {}
            if use_wave_sigs:
                # Vectorize signatures for the states this wave will actually
                # expand cold; memoized rows need no signatures at all.
                pending = [current for current in wave if packed[current] not in succ_memo]
                if len(pending) >= _WAVE_NUMPY_MIN:
                    rows = space.wave_signatures([packed[current] for current in pending])
                    wave_sigs = dict(zip(pending, rows))
            for current in wave:
                codes = packed[current]
                if profile is not None:
                    t0 = perf_counter()
                row_packed = ample(codes, counters) if por is not None else None
                if row_packed is None:
                    row_packed = succ_memo.get(codes)
                    if row_packed is None:
                        row_packed = expand(codes, wave_sigs.get(current))
                        succ_memo[codes] = row_packed
                if profile is not None:
                    t1 = perf_counter()
                    profile.match_s += t1 - t0
                row: List[int] = []
                for child_codes in row_packed:
                    child = index.get(child_codes)
                    if child is None:
                        child = len(packed)
                        if child >= max_states:
                            frontier_size = len(packed) - len(succ) - 1
                            raise StateSpaceLimitExceeded(
                                f"{self.algorithm.name} on {self.grid.m}x{self.grid.n} [{self.model}]:"
                                f" state budget of {max_states} exceeded after expanding"
                                f" {len(succ)} states ({len(packed)} discovered,"
                                f" frontier size {frontier_size}"
                                f"{pipeline.budget_note})",
                                algorithm=self.algorithm.name,
                                model=self.model,
                                max_states=max_states,
                                states_explored=len(succ),
                                frontier_size=frontier_size,
                            )
                        index[child_codes] = child
                        packed.append(child_codes)
                        next_wave.append(child)
                    row.append(child)
                succ.append(row)
                if profile is not None:
                    profile.dedup_s += perf_counter() - t1
            wave = next_wave

        if profile is not None:
            t0 = perf_counter()
        states = [space.inflate_state(codes) for codes in packed]
        state_index = {state: position for position, state in enumerate(states)}
        if profile is not None:
            profile.inflate_s += perf_counter() - t0

        return Exploration(
            model=self.model,
            reduced=False,
            states=states,
            index=state_index,
            succ=succ,
            edge_syms=None,
            root=0,
            root_sym=None,
            matcher_stats=matcher.stats.delta_since(stats_before).as_dict(),
            reduction=pipeline.active_spec,
            reduction_stats=pipeline.stats_report(pipeline.counters_delta(counters_before)),
            profile=profile.as_dict() if profile is not None else None,
        )
