"""Canonical scheduler states shared by every consumer of the engine kernel.

A *scheduler state* is the finite, hashable description of the whole system
that the transition kernel (:mod:`repro.engine.transition`) expands:

* under FSYNC/SSYNC a state is simply the anonymous multiset of
  ``(position, color)`` pairs (the paper's configuration);
* under ASYNC a robot may be between its Look and Move phases, so the
  state additionally records each robot's phase, the snapshot it took (if
  any) and the action it committed to (if any).

Robots are anonymous, so states are canonicalised by sorting the per-robot
records; two states that differ only by a permutation of the robots are
identified, which keeps the reachable state space small.  States hash on
first use and cache the value (:meth:`SchedulerState.__hash__`), because
the explorer keys every frontier and graph lookup on them.

This module used to live at :mod:`repro.checking.states`; it moved into the
engine layer so that the simulator, the model checker and the campaign
runner can all share it without layering cycles.  The old import path keeps
working as a re-export.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError, dataclass
from typing import Optional, Tuple

from ..core.algorithm import Algorithm
from ..core.grid import Grid, Node
from ..core.robot import Robot
from ..core.world import World

__all__ = [
    "AsyncRobotState",
    "SchedulerState",
    "FrozenSnapshot",
    "initial_state",
    "world_from_state",
    "freeze_snapshot",
    "thaw_snapshot",
]

#: Frozen snapshot: sorted tuple of (offset, content) pairs; content is None
#: (wall) or a sorted color tuple.
FrozenSnapshot = Tuple[Tuple[Tuple[int, int], Optional[Tuple[str, ...]]], ...]


class AsyncRobotState:
    """One robot's record inside a canonical scheduler state.

    Slotted: explorations hold hundreds of thousands of records, so dropping
    the per-instance ``__dict__`` is a measurable memory and attribute-access
    win on the kernel's hottest data.

    Hand-rolled (rather than a frozen dataclass) so the canonical sort key
    and the hash can be *cached in slots*: ``SchedulerState.from_records``
    sorts by :meth:`key` on every single successor the explorer generates,
    and a dataclass would rebuild the 6-tuple on each call.  Semantics are
    identical to the previous ``@dataclass(frozen=True, slots=True)``
    declaration — same constructor signature and defaults, value equality
    and hashing over the six fields, :class:`dataclasses.FrozenInstanceError`
    on mutation — with both caches dropped on pickling (string hashing is
    per-process, see :class:`SchedulerState`).
    """

    __slots__ = ("pos", "color", "phase", "snapshot", "pending_color", "pending_move", "_key", "_hash")

    def __init__(
        self,
        pos: Node,
        color: str,
        phase: str = "idle",  # "idle" | "looked" | "computed"
        snapshot: Optional[FrozenSnapshot] = None,
        pending_color: Optional[str] = None,
        pending_move: Optional[Tuple[int, int]] = None,
    ) -> None:
        object.__setattr__(self, "pos", pos)
        object.__setattr__(self, "color", color)
        object.__setattr__(self, "phase", phase)
        object.__setattr__(self, "snapshot", snapshot)
        object.__setattr__(self, "pending_color", pending_color)
        object.__setattr__(self, "pending_move", pending_move)

    def __setattr__(self, name, value):
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def __delattr__(self, name):
        raise FrozenInstanceError(f"cannot delete field {name!r}")

    def _fields(self):
        return (self.pos, self.color, self.phase, self.snapshot, self.pending_color, self.pending_move)

    def __eq__(self, other):
        if other.__class__ is AsyncRobotState:
            return self._fields() == other._fields()
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            cached = hash(self._fields())
            object.__setattr__(self, "_hash", cached)
            return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncRobotState(pos={self.pos!r}, color={self.color!r}, phase={self.phase!r}, "
            f"snapshot={self.snapshot!r}, pending_color={self.pending_color!r}, "
            f"pending_move={self.pending_move!r})"
        )

    def __getstate__(self):
        # Ship only the six fields; both caches are per-process.
        return self._fields()

    def __setstate__(self, fields) -> None:
        for name, value in zip(self.__slots__, fields):
            object.__setattr__(self, name, value)

    def key(self):
        try:
            return self._key
        except AttributeError:
            cached = (
                self.pos,
                self.color,
                self.phase,
                self.snapshot if self.snapshot is not None else (),
                self.pending_color or "",
                self.pending_move if self.pending_move is not None else (9, 9),
            )
            object.__setattr__(self, "_key", cached)
            return cached


def _content_key(content):
    """A totally ordered encoding of a snapshot cell (walls sort before multisets)."""
    return (0,) if content is None else (1,) + content


def _record_sort_key(record: AsyncRobotState):
    """A total order on records valid *across* states.

    :meth:`AsyncRobotState.key` is only guaranteed comparable between robots
    of the same state (where off-grid cells line up); canonical-representative
    selection under grid symmetries compares records of *different* states,
    where a raw snapshot cell may be ``None`` in one and a multiset in the
    other.  This key encodes cell contents injectively and comparably.
    """
    return (
        record.pos,
        record.color,
        record.phase,
        tuple((offset, _content_key(content)) for offset, content in (record.snapshot or ())),
        record.pending_color or "",
        record.pending_move if record.pending_move is not None else (9, 9),
    )


@dataclass(frozen=True)
class SchedulerState:
    """A canonical state of the whole system under a given synchrony model.

    Slotted manually (``robots`` plus the lazily filled ``_hash`` cache);
    the hash cache is deliberately *not* pickled — string hashing is
    randomized per process, so a cached value carried across a process
    boundary would corrupt any hash container mixing shipped and locally
    built states (the sharded explorer does exactly that when it interns
    successors received from several workers).
    """

    __slots__ = ("robots", "_hash")

    robots: Tuple[AsyncRobotState, ...]

    @classmethod
    def from_records(cls, records) -> "SchedulerState":
        return cls(robots=tuple(sorted(records, key=AsyncRobotState.key)))

    def occupied_nodes(self) -> Tuple[Node, ...]:
        return tuple(sorted({robot.pos for robot in self.robots}))

    def positions_and_colors(self) -> Tuple[Tuple[Node, str], ...]:
        return tuple(sorted((robot.pos, robot.color) for robot in self.robots))

    def all_idle(self) -> bool:
        return all(robot.phase == "idle" for robot in self.robots)

    def sort_key(self):
        """An injective, totally ordered key (used to pick orbit representatives)."""
        return tuple(_record_sort_key(robot) for robot in self.robots)

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            cached = hash(self.robots)
            object.__setattr__(self, "_hash", cached)
            return cached

    def __getstate__(self):
        # Ship only the records: the hash cache is per-process (see class
        # docstring) and must be recomputed on the receiving side.
        return self.robots

    def __setstate__(self, robots) -> None:
        object.__setattr__(self, "robots", robots)


def initial_state(algorithm: Algorithm, grid: Grid) -> SchedulerState:
    """The canonical initial state for an algorithm on a grid."""
    placement = algorithm.placement(grid.m, grid.n)
    return SchedulerState.from_records(
        AsyncRobotState(pos=node, color=color) for node, color in placement
    )


def world_from_state(grid: Grid, state: SchedulerState) -> World:
    """Materialise a :class:`~repro.core.world.World` from a canonical state.

    Robot identifiers are assigned positionally; they are only used to keep
    track of which record an action applies to within one expansion step.
    """
    robots = [
        Robot(rid=index, pos=record.pos, color=record.color)
        for index, record in enumerate(state.robots)
    ]
    return World(grid=grid, robots=robots)


def freeze_snapshot(snapshot) -> FrozenSnapshot:
    """Canonicalise a snapshot dictionary into a hashable tuple."""
    return tuple(sorted(snapshot.items()))


def thaw_snapshot(frozen: FrozenSnapshot):
    """Inverse of :func:`freeze_snapshot`."""
    return dict(frozen)
