"""The unified transition-system kernel.

This module holds the *single* authoritative implementation of the paper's
Look-Compute-Move successor semantics for all three synchrony models.  It
is consumed by

* the simulator (:mod:`repro.engine.walk`) — a lazy single-path walk that
  lets a scheduler policy pick one transition at a time;
* the model checker (:mod:`repro.checking.model_checker` via
  :mod:`repro.engine.explorer`) — a frontier search over every transition;
* the campaign runner (:mod:`repro.engine.campaign`) — batched multi-seed
  execution of the walk.

Semantics notes (shared by all consumers):

* **FSYNC** branches over every combination of per-robot action choices
  (ties between distinct enabled actions are resolved by the scheduler,
  hence adversarially).
* **SSYNC** additionally branches over every non-empty subset of *enabled*
  robots; activating a disabled robot is a no-op, so restricting to enabled
  robots loses no behaviours.
* **ASYNC** exposes three atomic steps per cycle (Look / Compute / Move);
  the color change decided during Compute becomes visible before the Move,
  which is the paper's "intermediate configuration".  A Look by a robot
  that is not enabled leads to a no-op Compute, so such Looks are pruned;
  this does not remove any reachable configuration.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.algorithm import Algorithm
from ..core.grid import Grid
from .matcher import LocalMatcher
from .states import AsyncRobotState, SchedulerState, freeze_snapshot, initial_state

__all__ = ["MODELS", "TransitionSystem", "AlgorithmTransitionSystem"]

#: The synchrony models the kernel implements.
MODELS = ("FSYNC", "SSYNC", "ASYNC")


@runtime_checkable
class TransitionSystem(Protocol):
    """What every engine consumer needs from a transition system.

    ``initial()`` is the canonical start state; ``successors(state)`` is the
    complete list of states one scheduler step can reach.  A state with no
    successors is terminal.
    """

    algorithm: Algorithm
    grid: Grid
    model: str

    def initial(self) -> SchedulerState: ...

    def successors(self, state: SchedulerState) -> List[SchedulerState]: ...


class AlgorithmTransitionSystem:
    """The authoritative FSYNC/SSYNC/ASYNC successor generator.

    One instance carries a :class:`~repro.engine.matcher.LocalMatcher`, so
    reusing the instance across many expansions (or across repeated checks
    of the same ``(algorithm, grid, model)`` triple) amortises snapshot and
    rule-match computation.
    """

    __slots__ = ("algorithm", "grid", "model", "matcher", "_expand")

    def __init__(self, algorithm: Algorithm, grid: Grid, model: str,
                 matcher: Optional[LocalMatcher] = None) -> None:
        if model not in MODELS:
            raise ValueError(f"unknown model {model!r}")
        self.algorithm = algorithm
        self.grid = grid
        self.model = model
        self.matcher = matcher if matcher is not None else LocalMatcher(algorithm, grid)
        self._expand = {
            "FSYNC": self._successors_fsync,
            "SSYNC": self._successors_ssync,
            "ASYNC": self._successors_async,
        }[model]

    # ------------------------------------------------------------------
    # TransitionSystem protocol
    # ------------------------------------------------------------------
    def initial(self) -> SchedulerState:
        return initial_state(self.algorithm, self.grid)

    def successors(self, state: SchedulerState) -> List[SchedulerState]:
        """All scheduler-reachable successor states of ``state``."""
        return self._expand(state)

    def is_terminal(self, state: SchedulerState) -> bool:
        return not self._expand(state)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _enabled_choices(self, state: SchedulerState):
        """Per-robot distinct actions in a configuration-only state."""
        records = state.robots
        matcher = self.matcher
        choices = []
        for index, record in enumerate(records):
            actions = matcher.actions(records, record.pos, record.color)
            if actions:
                choices.append((index, actions))
        return choices

    @staticmethod
    def _apply_synchronous(
        state: SchedulerState,
        moves: Sequence[Tuple[int, Optional[str], Optional[Tuple[int, int]]]],
    ) -> SchedulerState:
        """Apply simultaneous (index, new_color, world_move) updates to a state."""
        records = list(state.robots)
        for index, new_color, world_move in moves:
            record = records[index]
            pos = record.pos
            if world_move is not None:
                pos = (pos[0] + world_move[0], pos[1] + world_move[1])
            records[index] = AsyncRobotState(pos=pos, color=new_color if new_color else record.color)
        return SchedulerState.from_records(records)

    # ------------------------------------------------------------------
    # FSYNC / SSYNC
    # ------------------------------------------------------------------
    def _successors_fsync(self, state: SchedulerState) -> List[SchedulerState]:
        choices = self._enabled_choices(state)
        if not choices:
            return []
        successors = []
        for combo in product(*[actions for _, actions in choices]):
            moves = [
                (index, action.new_color, action.world_move)
                for (index, _), action in zip(choices, combo)
            ]
            successors.append(self._apply_synchronous(state, moves))
        return successors

    def _successors_ssync(self, state: SchedulerState) -> List[SchedulerState]:
        choices = self._enabled_choices(state)
        if not choices:
            return []
        successors = []
        indices = [index for index, _ in choices]
        by_index = dict(choices)
        for size in range(1, len(indices) + 1):
            for subset in combinations(indices, size):
                for combo in product(*[by_index[index] for index in subset]):
                    moves = [
                        (index, action.new_color, action.world_move)
                        for index, action in zip(subset, combo)
                    ]
                    successors.append(self._apply_synchronous(state, moves))
        return successors

    # ------------------------------------------------------------------
    # ASYNC
    # ------------------------------------------------------------------
    def _successors_async(self, state: SchedulerState) -> List[SchedulerState]:
        records = state.robots
        matcher = self.matcher
        algorithm = self.algorithm
        successors: List[SchedulerState] = []
        for index, record in enumerate(records):
            if record.phase == "idle":
                # Offer a Look only to enabled robots: a disabled robot's
                # cycle is a no-op and pruning it does not change reachable
                # configurations.
                if not matcher.matches(records, record.pos, record.color):
                    continue
                updated = list(records)
                updated[index] = AsyncRobotState(
                    pos=record.pos,
                    color=record.color,
                    phase="looked",
                    snapshot=freeze_snapshot(matcher.snapshot(records, record.pos)),
                )
                successors.append(SchedulerState.from_records(updated))
            elif record.phase == "looked":
                matches = matcher.matches_for_frozen(record.snapshot, record.color)
                actions = algorithm.distinct_actions(matches)
                if not actions:
                    updated = list(records)
                    updated[index] = AsyncRobotState(pos=record.pos, color=record.color)
                    successors.append(SchedulerState.from_records(updated))
                    continue
                for action in actions:
                    updated = list(records)
                    updated[index] = AsyncRobotState(
                        pos=record.pos,
                        color=action.new_color,
                        phase="computed",
                        pending_color=action.new_color,
                        pending_move=action.world_move,
                    )
                    successors.append(SchedulerState.from_records(updated))
            elif record.phase == "computed":
                pos = record.pos
                if record.pending_move is not None:
                    pos = (pos[0] + record.pending_move[0], pos[1] + record.pending_move[1])
                updated = list(records)
                updated[index] = AsyncRobotState(pos=pos, color=record.color)
                successors.append(SchedulerState.from_records(updated))
        return successors
