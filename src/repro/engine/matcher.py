"""Memoized per-robot snapshot and rule-match computation.

Rule matching is the hot inner loop of every engine consumer: evaluating a
robot's rules means building its radius-``phi`` snapshot and testing every
``(rule, symmetry)`` pair (up to ``|rules| * 8`` guard evaluations over 5 or
13 cells).  But a snapshot only depends on the *local neighbourhood* — the
robot's node plus the positions/colors of robots within distance ``phi`` —
and during a simulation or state-space exploration the same local patterns
recur constantly (a robot sweeping an empty row sees the same neighbourhood
at every column).

:class:`LocalMatcher` memoizes three layers on that observation, keyed on
a *translation-invariant* neighbourhood description (phi-capped boundary
distances plus relative robot offsets), so the sweeping robot above really
does hit the cache at every interior column:

* ``(walls, relative neighbourhood) -> snapshot``  (snapshot construction),
* ``(color, walls, relative neighbourhood) -> matches``  (rule evaluation),
* ``(color, frozen snapshot) -> matches``  (re-evaluation of stored ASYNC
  snapshots during Compute).

One matcher is created per run/exploration and shared between all robots;
for a fixed ``(algorithm, grid)`` it may also be reused across runs, which
is what gives the model checker and the campaign engine their throughput.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..core.algorithm import Action, Algorithm, Match
from ..core.grid import Grid, Node
from ..core.views import Snapshot, ball_offsets

__all__ = ["LocalMatcher"]

#: A canonical, *position-independent* description of a robot's local
#: neighbourhood: the wall pattern (its distances to the four grid
#: boundaries, each capped at ``phi``) plus the sorted relative
#: ``(offset, color)`` pairs within distance ``phi``.  Two robots whose
#: neighbourhoods coincide up to translation share one key — this is what
#: lets a robot sweeping an empty row hit the cache at every column.
LocalKey = Tuple[Tuple[int, int, int, int], Tuple[Tuple[Node, str], ...]]


class LocalMatcher:
    """Snapshot/match computation for one ``(algorithm, grid)`` pair, memoized."""

    __slots__ = ("algorithm", "grid", "_snapshots", "_matches", "_actions", "_frozen_matches")

    def __init__(self, algorithm: Algorithm, grid: Grid) -> None:
        self.algorithm = algorithm
        self.grid = grid
        self._snapshots: Dict[LocalKey, Snapshot] = {}
        self._matches: Dict[Tuple[str, LocalKey], Tuple[Match, ...]] = {}
        self._actions: Dict[Tuple[str, LocalKey], Tuple[Action, ...]] = {}
        self._frozen_matches: Dict[tuple, Tuple[Match, ...]] = {}

    # ------------------------------------------------------------------
    # Local neighbourhood keys
    # ------------------------------------------------------------------
    def local_key(self, robots: Iterable, center: Node) -> LocalKey:
        """The memoization key for a robot at ``center``.

        ``robots`` is any iterable of objects with ``pos`` and ``color``
        attributes (live :class:`~repro.core.robot.Robot` instances or the
        frozen records of a canonical state).  The key is translation
        invariant: only boundary distances capped at ``phi`` and *relative*
        robot offsets enter it, so identical local patterns at different
        grid positions share one cache entry.
        """
        phi = self.algorithm.phi
        ci, cj = center
        near = []
        for robot in robots:
            pos = robot.pos
            di = pos[0] - ci
            dj = pos[1] - cj
            if abs(di) + abs(dj) <= phi:
                near.append(((di, dj), robot.color))
        near.sort()
        grid = self.grid
        walls = (
            min(ci, phi),
            min(grid.m - 1 - ci, phi),
            min(cj, phi),
            min(grid.n - 1 - cj, phi),
        )
        return (walls, tuple(near))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, robots: Iterable, center: Node) -> Snapshot:
        """The (shared, do-not-mutate) snapshot a robot at ``center`` takes."""
        return self._snapshot_for(self.local_key(robots, center))

    def _snapshot_for(self, key: LocalKey) -> Snapshot:
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            (north, south, west, east), near = key
            per_cell: Dict[Node, list] = {}
            for offset, color in near:  # near is sorted, so color lists come out sorted
                per_cell.setdefault(offset, []).append(color)
            snapshot = {}
            for offset in ball_offsets(self.algorithm.phi):
                di, dj = offset
                # The cell exists iff the (phi-capped) boundary distances
                # admit it; |di|, |dj| <= phi, so the caps lose nothing.
                if di < -north or di > south or dj < -west or dj > east:
                    snapshot[offset] = None
                else:
                    snapshot[offset] = tuple(per_cell.get(offset, ()))
            self._snapshots[key] = snapshot
        return snapshot

    # ------------------------------------------------------------------
    # Matches and actions
    # ------------------------------------------------------------------
    def matches(self, robots: Iterable, center: Node, color: str) -> Tuple[Match, ...]:
        """All (rule, symmetry) matches for a robot at ``center`` with light ``color``."""
        key = self.local_key(robots, center)
        cache_key = (color, key)
        cached = self._matches.get(cache_key)
        if cached is None:
            cached = tuple(self.algorithm.matches_for_snapshot(self._snapshot_for(key), color))
            self._matches[cache_key] = cached
        return cached

    def actions(self, robots: Iterable, center: Node, color: str) -> Tuple[Action, ...]:
        """The distinct enabled actions for a robot at ``center`` with light ``color``."""
        key = self.local_key(robots, center)
        cache_key = (color, key)
        cached = self._actions.get(cache_key)
        if cached is None:
            cached = tuple(self.algorithm.distinct_actions(self.matches(robots, center, color)))
            self._actions[cache_key] = cached
        return cached

    def matches_for_frozen(self, frozen, color: str) -> Tuple[Match, ...]:
        """Matches against a stored (frozen) ASYNC snapshot."""
        cache_key = (color, frozen)
        cached = self._frozen_matches.get(cache_key)
        if cached is None:
            cached = tuple(self.algorithm.matches_for_snapshot(dict(frozen), color))
            self._frozen_matches[cache_key] = cached
        return cached

    def matches_for_snapshot(self, snapshot: Snapshot, color: str) -> Tuple[Match, ...]:
        """Matches against a live snapshot dictionary (memoized via freezing)."""
        return self.matches_for_frozen(tuple(sorted(snapshot.items())), color)

    def enabled(self, robots: Iterable, center: Node, color: str) -> bool:
        """Whether some rule matches some view of a robot at ``center``."""
        return bool(self.matches(robots, center, color))
