"""Memoized per-robot snapshot and rule-match computation.

Rule matching is the hot inner loop of every engine consumer: evaluating a
robot's rules means building its radius-``phi`` snapshot and testing every
``(rule, symmetry)`` pair (up to ``|rules| * 8`` guard evaluations over 5 or
13 cells).  But a snapshot only depends on the *local neighbourhood* — the
robot's node plus the positions/colors of robots within distance ``phi`` —
and during a simulation or state-space exploration the same local patterns
recur constantly (a robot sweeping an empty row sees the same neighbourhood
at every column).

:class:`LocalMatcher` memoizes three layers on that observation, keyed on
a *translation-invariant* neighbourhood description (phi-capped boundary
distances plus relative robot offsets), so the sweeping robot above really
does hit the cache at every interior column:

* ``(walls, relative neighbourhood) -> snapshot``  (snapshot construction),
* ``(color, walls, relative neighbourhood) -> matches``  (rule evaluation),
* ``(color, frozen snapshot) -> matches``  (re-evaluation of stored ASYNC
  snapshots during Compute).

Because the keys are translation invariant *and* cap boundary distances at
``phi``, they do not mention the grid dimensions at all: the entries are
valid for the same algorithm on **any** grid.  :class:`MatcherCache`
exploits this to share one set of memo tables (plus hit/miss statistics)
between matchers for the same algorithm at different grid sizes — which is
what lets a grid sweep or a scaling run pay the rule-evaluation cost once
for every interior pattern instead of once per size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.algorithm import Action, Algorithm, Match
from ..core.grid import Grid, Node
from ..core.views import Snapshot, ball_offsets

__all__ = ["LocalMatcher", "MatcherStats", "MatcherCache"]

#: A canonical, *position-independent* description of a robot's local
#: neighbourhood: the wall pattern (its distances to the four grid
#: boundaries, each capped at ``phi``) plus the sorted relative
#: ``(offset, color)`` pairs within distance ``phi``.  Two robots whose
#: neighbourhoods coincide up to translation share one key — this is what
#: lets a robot sweeping an empty row hit the cache at every column.
LocalKey = Tuple[Tuple[int, int, int, int], Tuple[Tuple[Node, str], ...]]


class MatcherStats:
    """Hit/miss counters for the matcher's memo tables.

    A *hit* is any snapshot/match/action lookup served from a memo table; a
    *miss* is a lookup that had to run the underlying guard evaluation.
    ``evictions`` counts memo entries dropped by a bounded
    :class:`MatcherCache` enforcing its ``max_entries`` cap.  The
    counters are cumulative over the lifetime of the object, which may span
    many matchers when the stats belong to a shared :class:`MatcherCache`.
    """

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "MatcherStats") -> "MatcherStats":
        """Accumulate another counter pair into this one (returns self)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    def delta_since(self, snapshot: "MatcherStats") -> "MatcherStats":
        """The counters accumulated since ``snapshot`` was taken."""
        return MatcherStats(
            self.hits - snapshot.hits,
            self.misses - snapshot.misses,
            self.evictions - snapshot.evictions,
        )

    def snapshot(self) -> "MatcherStats":
        return MatcherStats(self.hits, self.misses, self.evictions)

    def as_dict(self) -> Dict[str, float]:
        # ``evictions`` deliberately stays off the dict: the dict rides on
        # results whose equality the routes must preserve, and eviction
        # counts depend on how full a particular route's cache happened to
        # run.  Read them from :attr:`MatcherCache.stats` instead.
        return {"hits": self.hits, "misses": self.misses, "hit_rate": self.hit_rate}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatcherStats(hits={self.hits}, misses={self.misses}, evictions={self.evictions})"


class LocalMatcher:
    """Snapshot/match computation for one ``(algorithm, grid)`` pair, memoized.

    The memo tables default to private per-matcher dictionaries; a
    :class:`MatcherCache` may instead hand several matchers for the same
    algorithm *shared* tables (see :meth:`MatcherCache.matcher_for`), which
    is safe because the keys never mention absolute positions or the grid
    shape.  ``stats`` counts hits and misses across all three table layers.
    """

    __slots__ = (
        "algorithm",
        "grid",
        "stats",
        "_snapshots",
        "_matches",
        "_actions",
        "_frozen_matches",
    )

    def __init__(
        self,
        algorithm: Algorithm,
        grid: Grid,
        *,
        tables: Optional[Tuple[dict, dict, dict, dict]] = None,
        stats: Optional[MatcherStats] = None,
    ) -> None:
        self.algorithm = algorithm
        self.grid = grid
        self.stats = stats if stats is not None else MatcherStats()
        if tables is None:
            self._snapshots: Dict[LocalKey, Snapshot] = {}
            self._matches: Dict[Tuple[str, LocalKey], Tuple[Match, ...]] = {}
            self._actions: Dict[Tuple[str, LocalKey], Tuple[Action, ...]] = {}
            self._frozen_matches: Dict[tuple, Tuple[Match, ...]] = {}
        else:
            self._snapshots, self._matches, self._actions, self._frozen_matches = tables

    # ------------------------------------------------------------------
    # Local neighbourhood keys
    # ------------------------------------------------------------------
    def local_key(self, robots: Iterable, center: Node) -> LocalKey:
        """The memoization key for a robot at ``center``.

        ``robots`` is any iterable of objects with ``pos`` and ``color``
        attributes (live :class:`~repro.core.robot.Robot` instances or the
        frozen records of a canonical state).  The key is translation
        invariant: only boundary distances capped at ``phi`` and *relative*
        robot offsets enter it, so identical local patterns at different
        grid positions — or on different grids — share one cache entry.
        """
        phi = self.algorithm.phi
        ci, cj = center
        near = []
        for robot in robots:
            pos = robot.pos
            di = pos[0] - ci
            dj = pos[1] - cj
            if abs(di) + abs(dj) <= phi:
                near.append(((di, dj), robot.color))
        near.sort()
        return (self._walls(center), tuple(near))

    def _walls(self, center: Node) -> Tuple[int, int, int, int]:
        phi = self.algorithm.phi
        ci, cj = center
        grid = self.grid
        return (
            min(ci, phi),
            min(grid.m - 1 - ci, phi),
            min(cj, phi),
            min(grid.n - 1 - cj, phi),
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, robots: Iterable, center: Node) -> Snapshot:
        """The (shared, do-not-mutate) snapshot a robot at ``center`` takes."""
        return self._snapshot_for(self.local_key(robots, center))

    def _snapshot_for(self, key: LocalKey) -> Snapshot:
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            self.stats.misses += 1
            (north, south, west, east), near = key
            per_cell: Dict[Node, list] = {}
            for offset, color in near:  # near is sorted, so color lists come out sorted
                per_cell.setdefault(offset, []).append(color)
            snapshot = {}
            for offset in ball_offsets(self.algorithm.phi):
                di, dj = offset
                # The cell exists iff the (phi-capped) boundary distances
                # admit it; |di|, |dj| <= phi, so the caps lose nothing.
                if di < -north or di > south or dj < -west or dj > east:
                    snapshot[offset] = None
                else:
                    snapshot[offset] = tuple(per_cell.get(offset, ()))
            self._snapshots[key] = snapshot
        else:
            self.stats.hits += 1
        return snapshot

    # ------------------------------------------------------------------
    # Matches and actions
    # ------------------------------------------------------------------
    def matches(self, robots: Iterable, center: Node, color: str) -> Tuple[Match, ...]:
        """All (rule, symmetry) matches for a robot at ``center`` with light ``color``."""
        return self.matches_for_key(self.local_key(robots, center), color)

    def matches_for_key(self, key: LocalKey, color: str) -> Tuple[Match, ...]:
        """Matches for an already-computed local key (the batched fast path)."""
        cache_key = (color, key)
        cached = self._matches.get(cache_key)
        if cached is None:
            self.stats.misses += 1
            cached = tuple(self.algorithm.matches_for_snapshot(self._snapshot_for(key), color))
            self._matches[cache_key] = cached
        else:
            self.stats.hits += 1
        return cached

    def actions(self, robots: Iterable, center: Node, color: str) -> Tuple[Action, ...]:
        """The distinct enabled actions for a robot at ``center`` with light ``color``."""
        return self.actions_for_key(self.local_key(robots, center), color)

    def actions_for_key(self, key: LocalKey, color: str) -> Tuple[Action, ...]:
        """Distinct actions for an already-computed local key.

        The packed kernel (:mod:`repro.engine.packed`) compiles its action
        tables through this entry point: it reconstructs the local key from
        its own position index on a signature-table miss, so it never needs
        the per-robot ``robots`` scan that :meth:`actions` performs.
        """
        cache_key = (color, key)
        cached = self._actions.get(cache_key)
        if cached is None:
            self.stats.misses += 1
            cached = tuple(self.algorithm.distinct_actions(self.matches_for_key(key, color)))
            self._actions[cache_key] = cached
        else:
            self.stats.hits += 1
        return cached

    def snapshot_for_key(self, key: LocalKey) -> Snapshot:
        """The (shared, do-not-mutate) snapshot for an already-computed key."""
        return self._snapshot_for(key)

    def matches_for_frozen(self, frozen, color: str) -> Tuple[Match, ...]:
        """Matches against a stored (frozen) ASYNC snapshot."""
        cache_key = (color, frozen)
        cached = self._frozen_matches.get(cache_key)
        if cached is None:
            self.stats.misses += 1
            cached = tuple(self.algorithm.matches_for_snapshot(dict(frozen), color))
            self._frozen_matches[cache_key] = cached
        else:
            self.stats.hits += 1
        return cached

    def matches_for_snapshot(self, snapshot: Snapshot, color: str) -> Tuple[Match, ...]:
        """Matches against a live snapshot dictionary (memoized via freezing)."""
        return self.matches_for_frozen(tuple(sorted(snapshot.items())), color)

    def enabled(self, robots: Iterable, center: Node, color: str) -> bool:
        """Whether some rule matches some view of a robot at ``center``."""
        return bool(self.matches(robots, center, color))

    # ------------------------------------------------------------------
    # Batched matching (the synchronous-round fast path)
    # ------------------------------------------------------------------
    def batched_matches(self, robots: Sequence) -> List[Tuple[object, Tuple[Match, ...]]]:
        """``(robot, matches)`` for every robot, in one pass.

        Builds the position index (``node -> colors``) **once** for the whole
        configuration and derives every robot's local key by probing only the
        ``O(phi^2)`` ball offsets, instead of rebuilding a per-robot
        neighbourhood list by scanning all robots for each robot.  The keys —
        and therefore the matches — are identical to per-robot
        :meth:`matches` calls; the synchronous walk engines use this to
        evaluate a whole round in one sweep.
        """
        by_pos: Dict[Node, List[str]] = {}
        for robot in robots:
            by_pos.setdefault(robot.pos, []).append(robot.color)
        for colors in by_pos.values():
            colors.sort()
        offsets = ball_offsets(self.algorithm.phi)
        result: List[Tuple[object, Tuple[Match, ...]]] = []
        for robot in robots:
            ci, cj = robot.pos
            near = []
            for di, dj in offsets:  # offsets are sorted, so near comes out sorted
                cell = by_pos.get((ci + di, cj + dj))
                if cell:
                    near.extend(((di, dj), color) for color in cell)
            key = (self._walls(robot.pos), tuple(near))
            result.append((robot, self.matches_for_key(key, robot.color)))
        return result


class MatcherCache:
    """Persistent snapshot/match memo tables, shareable across grid sizes.

    The matcher's keys are translation invariant and cap boundary distances
    at ``phi``, so an entry learned on one grid is valid for the same
    algorithm on *every* grid: only the algorithm's rules, colors and
    ``phi`` enter the cached computation.  This object owns one set of memo
    tables (plus one :class:`MatcherStats`) per algorithm and hands out
    :class:`LocalMatcher` views onto them via :meth:`matcher_for` — thread
    it through repeated checks (a grid sweep, a scaling run, a campaign) and
    every size after the first starts warm on all interior patterns.

    Sharing is keyed on algorithm *identity*, not name, so two distinct
    algorithm objects that happen to share a name never see each other's
    entries.  The cache is designed for reuse within one process; the
    sharded explorer and the parallel campaign engine keep one per worker
    process instead of shipping it across the boundary.

    ``max_entries`` bounds the total memo entries across all algorithms
    and table layers.  The bound is enforced at :meth:`matcher_for` time
    (matchers append to the shared tables without telling the cache, so a
    burst within one exploration can overshoot until the next handout):
    oldest-inserted entries go first — dict order approximates LRU well
    here because long-running workloads re-insert nothing and the oldest
    patterns belong to the coldest grids — and every evicted entry counts
    on the owning algorithm's ``stats.evictions``.  The default cap is
    high: a process-lifetime campaign cache stays bounded without any
    realistic workload ever touching it.
    """

    def __init__(self, max_entries: int = 1_000_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._tables: Dict[int, Tuple[dict, dict, dict, dict]] = {}
        self._keepalive: Dict[int, Algorithm] = {}
        self._stats: Dict[int, MatcherStats] = {}

    def _register(self, algorithm: Algorithm) -> int:
        """Pin ``algorithm`` (id() keys must not be recycled) and its stats."""
        key = id(algorithm)
        if key not in self._stats:
            self._keepalive[key] = algorithm
            self._stats[key] = MatcherStats()
        return key

    def matcher_for(self, algorithm: Algorithm, grid: Grid) -> LocalMatcher:
        """A matcher for ``(algorithm, grid)`` backed by the shared tables."""
        key = self._register(algorithm)
        tables = self._tables.get(key)
        if tables is None:
            tables = ({}, {}, {}, {})
            self._tables[key] = tables
        self._trim()
        return LocalMatcher(algorithm, grid, tables=tables, stats=self._stats[key])

    def _trim(self) -> None:
        """Evict oldest-inserted entries until the cache fits its bound."""
        excess = self.entry_count() - self.max_entries
        if excess <= 0:
            return
        for key, tables in self._tables.items():
            stats = self._stats[key]
            for table in tables:
                while excess > 0 and table:
                    del table[next(iter(table))]
                    stats.evictions += 1
                    excess -= 1
            if excess <= 0:
                break

    def stats_for(self, algorithm: Algorithm) -> MatcherStats:
        """The live counters for one algorithm.

        Registers the algorithm on first request, so the returned object is
        always the same :class:`MatcherStats` instance later matchers from
        :meth:`matcher_for` will increment — callers may hold it before any
        matcher exists and never miss a count.
        """
        return self._stats[self._register(algorithm)]

    @property
    def stats(self) -> MatcherStats:
        """Aggregate counters over every algorithm in the cache."""
        total = MatcherStats()
        for stats in self._stats.values():
            total.merge(stats)
        return total

    def entry_count(self) -> int:
        """Total number of memoized entries across all algorithms and tables."""
        return sum(len(table) for tables in self._tables.values() for table in tables)

    def clear(self) -> None:
        self._tables.clear()
        self._keepalive.clear()
        self._stats.clear()
