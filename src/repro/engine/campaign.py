"""Campaign execution: verification work items, serial and parallel engines.

A verification campaign is a flat list of independent work items
(:class:`CampaignTask`).  A ``"walk"`` task runs one bounded execution
through the walk engine (:mod:`repro.engine.walk`) and scores it against
Definition 1; a ``"check"`` task runs the exhaustive model checker
(:mod:`repro.checking.model_checker`) under a configurable reduction
pipeline (``reduction=``, see :mod:`repro.engine.reduction`).  Because the
items are independent and fully described by picklable primitives, the
same list can be executed

* serially (:func:`execute_tasks` with an ``Algorithm`` in hand), or
* fanned across a ``multiprocessing`` pool (:class:`ParallelCampaignEngine`),
  with results returned in task order — so the two paths produce
  **identical** reports for identical task lists.

Determinism: every randomized run is driven by the explicit seed carried in
its task (never by shared RNG state), so a campaign's outcome is a pure
function of its task list.  :func:`derive_seed` turns a base seed plus any
hashable coordinates into a stable per-task seed for callers that want many
distinct-but-reproducible seeds without enumerating them by hand.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import VerificationError
from ..core.execution import ExecutionResult
from ..core.grid import Grid
from .matcher import LocalMatcher, MatcherCache
from .pool import ExplorationPool, default_workers, process_cache, registered
from .reduction import normalize_reduction
from .suites import default_grid_suite
from .walk import TieBreak, run_async, run_fsync, run_ssync

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a module cycle)
    from .backend import ExecutionBackend
    from .store import VerdictStore

__all__ = [
    "VerificationReport",
    "GridSweepReport",
    "CampaignTask",
    "verify_one",
    "check_one",
    "run_task",
    "execute_tasks",
    "grid_sweep_tasks",
    "stress_test_tasks",
    "exhaustive_check_tasks",
    "derive_seed",
    "task_store_key",
    "ParallelCampaignEngine",
]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
@dataclass
class VerificationReport:
    """Outcome of a single verification run.

    For ``kind="walk"`` reports ``steps``/``moves`` are the scheduler
    rounds and robot moves of the bounded execution; for ``kind="check"``
    reports (exhaustive model-checking tasks) they carry the explored and
    terminal state counts of the (possibly reduced) state space, and
    ``seed`` is ``None`` (exhaustive checks quantify over every schedule).
    """

    algorithm: str
    model: str
    m: int
    n: int
    #: The seed that actually drove the run (:func:`verify_one` normalizes
    #: ``None`` to ``0`` before executing), so replaying with
    #: ``seed=report.seed`` reproduces the run exactly.  ``None`` only on
    #: reports built by hand and on exhaustive-check reports.
    seed: Optional[int]
    ok: bool
    steps: int
    moves: int
    reason: str
    #: Matcher-cache counters observed *during this run*.  Excluded from
    #: equality (``compare=False``): the numbers depend on how warm the
    #: run's matcher happened to be — a serial campaign shares one cache
    #: across the whole task list while each pool worker warms its own —
    #: and must not break the serial-vs-parallel report parity guarantee.
    cache_hits: Optional[int] = field(default=None, compare=False)
    cache_misses: Optional[int] = field(default=None, compare=False)
    #: ``"walk"`` (bounded execution) or ``"check"`` (exhaustive check).
    kind: str = "walk"
    #: For ``kind="check"``: the active reduction spec the check ran under.
    reduction: Optional[str] = None
    #: For ``kind="check"``: per-component reduction statistics (orbit
    #: collapses, interleavings pruned).  Deterministic, but excluded from
    #: equality like the cache counters — observability, not verdict.
    reduction_stats: Optional[Dict[str, Dict[str, float]]] = field(default=None, compare=False)
    #: Verdict-store counters observed when this report was served through
    #: a :class:`~repro.engine.store.VerdictStore` (``None`` when no store
    #: was involved).  Excluded from equality like the cache counters: a
    #: cached report must compare equal to a freshly computed one.
    store_stats: Optional[Dict[str, object]] = field(default=None, compare=False)

    def __str__(self) -> str:
        status = "ok" if self.ok else f"FAILED ({self.reason})"
        if self.kind == "check":
            reduced = f", reduction={self.reduction}" if self.reduction else ""
            return f"{self.algorithm} {self.m}x{self.n} [{self.model} exhaustive{reduced}]: {status}"
        seed = "" if self.seed is None else f", seed={self.seed}"
        return f"{self.algorithm} {self.m}x{self.n} [{self.model}{seed}]: {status}"

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of this run's matcher lookups served from the cache."""
        if self.cache_hits is None or self.cache_misses is None:
            return None
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class GridSweepReport:
    """Aggregated outcome of a verification campaign."""

    algorithm: str
    reports: List[VerificationReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every individual run succeeded."""
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> List[VerificationReport]:
        return [report for report in self.reports if not report.ok]

    def raise_on_failure(self) -> "GridSweepReport":
        """Raise :class:`VerificationError` if any run failed; return self."""
        if not self.ok:
            raise VerificationError(
                f"{self.algorithm}: {len(self.failures)} verification failures, e.g. {self.failures[0]}"
            )
        return self

    def summary(self) -> str:
        cache = ""
        hits = sum(report.cache_hits or 0 for report in self.reports)
        misses = sum(report.cache_misses or 0 for report in self.reports)
        if hits + misses:
            cache = f" (match cache: {hits / (hits + misses):.0%} hits over {hits + misses} lookups)"
        return (
            f"{self.algorithm}: {len(self.reports) - len(self.failures)}/{len(self.reports)}"
            f" verification runs succeeded{cache}"
        )


# ---------------------------------------------------------------------------
# Single runs
# ---------------------------------------------------------------------------
def _execute(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    seed: int,
    tie_break: str,
    max_steps: Optional[int],
    matcher: Optional[LocalMatcher] = None,
) -> ExecutionResult:
    """Run one bounded execution; ``seed`` must already be normalized.

    The seed passes through ``run_*`` (which builds the default
    RandomSubset / RandomAsync scheduler from it) instead of a scheduler
    constructed here, so the seed recorded on the ExecutionResult is the
    one that actually drove the run and replays it exactly.
    """
    if model == "FSYNC":
        return run_fsync(
            algorithm, grid, seed=seed, tie_break=tie_break, max_steps=max_steps, matcher=matcher
        )
    if model == "SSYNC":
        return run_ssync(
            algorithm, grid, seed=seed, tie_break=tie_break, max_steps=max_steps, matcher=matcher
        )
    if model == "ASYNC":
        return run_async(
            algorithm, grid, seed=seed, tie_break=tie_break, max_steps=max_steps, matcher=matcher
        )
    raise VerificationError(f"unknown model {model!r}")


def verify_one(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
    max_steps: Optional[int] = None,
    cache: Optional[MatcherCache] = None,
    store: Optional["VerdictStore"] = None,
) -> VerificationReport:
    """Check Definition 1 on one bounded execution.

    ``cache`` (a :class:`~repro.engine.matcher.MatcherCache`) lets repeated
    calls share snapshot/match memo tables — across seeds, models *and*
    grid sizes; the run's own hit/miss delta is recorded on the report.

    ``seed=None`` is normalized to ``0`` *before* the run, and the report
    records the normalized value: the seed on a
    :class:`VerificationReport` is always the seed that actually drove the
    run, so re-running with ``seed=report.seed`` replays it exactly.

    ``store`` (a :class:`~repro.engine.store.VerdictStore`) memoizes the
    report for registered algorithms, keyed by the normalized seed, the
    tie-break policy and the step budget alongside the grid coordinates —
    a cached report is the report of *exactly* this run.
    """
    seed = 0 if seed is None else seed
    if store is not None and registered(algorithm):
        from .spec import walk_task_key  # local import: spec imports this module

        key = walk_task_key(algorithm.name, m, n, model, seed, tie_break, max_steps)
        return store.fetch(
            key,
            lambda: _run_verify_one(algorithm, m, n, model, seed, tie_break, max_steps, cache),
        )
    return _run_verify_one(algorithm, m, n, model, seed, tie_break, max_steps, cache)


def _run_verify_one(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str,
    seed: int,
    tie_break: str,
    max_steps: Optional[int],
    cache: Optional[MatcherCache],
) -> VerificationReport:
    """The uncached body of :func:`verify_one` (seed already normalized)."""
    grid = Grid(m, n)
    matcher = cache.matcher_for(algorithm, grid) if cache is not None else None
    stats_before = matcher.stats.snapshot() if matcher is not None else None
    try:
        result = _execute(algorithm, grid, model, seed, tie_break, max_steps, matcher=matcher)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return VerificationReport(
            algorithm=algorithm.name,
            model=model,
            m=m,
            n=n,
            seed=seed,
            ok=False,
            steps=0,
            moves=0,
            reason=f"{type(exc).__name__}: {exc}",
        )
    ok = result.is_terminating_exploration
    reason = "ok"
    if not result.terminated:
        reason = f"did not terminate within {result.steps} steps"
    elif not result.explored:
        reason = f"terminated with {len(result.unvisited)} unvisited nodes"
    delta = matcher.stats.delta_since(stats_before) if matcher is not None else None
    return VerificationReport(
        algorithm=algorithm.name,
        model=model,
        m=m,
        n=n,
        seed=seed,
        ok=ok,
        steps=result.steps,
        moves=result.total_moves,
        reason=reason,
        cache_hits=delta.hits if delta is not None else None,
        cache_misses=delta.misses if delta is not None else None,
    )


def check_one(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str = "FSYNC",
    reduction: Optional[str] = "grid",
    max_states: int = 200_000,
    cache: Optional[MatcherCache] = None,
    kernel: Optional[str] = None,
    store: Optional["VerdictStore"] = None,
) -> VerificationReport:
    """Exhaustively model-check one ``(algorithm, grid, model)`` triple.

    The campaign-shaped wrapper around
    :func:`repro.checking.check_terminating_exploration`: the verdict (and
    its reason), the explored/terminal state counts, the matcher-cache
    delta and the per-component reduction statistics all land on a
    :class:`VerificationReport` with ``kind="check"``, so exhaustive checks
    ride the same serial/parallel campaign machinery as bounded walks.  A
    tripped state budget (or any other failure) is reported, not raised.

    ``store`` (a :class:`~repro.engine.store.VerdictStore`) memoizes the
    report for registered algorithms — ``max_states`` is part of the key,
    so a budget-tripped verdict never masquerades as a full one — and is
    forwarded to the checker, which caches the underlying
    :class:`~repro.checking.model_checker.CheckResult` and exploration
    under their own keys.
    """
    if store is not None and registered(algorithm):
        from .spec import check_task_key  # local import: spec imports this module

        key = check_task_key(algorithm.name, m, n, model, reduction, max_states, kernel)
        return store.fetch(
            key,
            lambda: _run_check_one(algorithm, m, n, model, reduction, max_states, cache, kernel, store),
        )
    return _run_check_one(algorithm, m, n, model, reduction, max_states, cache, kernel, store)


def _run_check_one(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str,
    reduction: Optional[str],
    max_states: int,
    cache: Optional[MatcherCache],
    kernel: Optional[str],
    store: Optional["VerdictStore"],
) -> VerificationReport:
    """The uncached body of :func:`check_one`."""
    from ..checking.model_checker import (  # local import: avoids a layering cycle
        check_terminating_exploration,
    )

    grid = Grid(m, n)
    try:
        result = check_terminating_exploration(
            algorithm,
            grid,
            model=model,
            max_states=max_states,
            reduction=reduction,
            cache=cache,
            kernel=kernel,
            store=store,
        )
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return VerificationReport(
            algorithm=algorithm.name,
            model=model,
            m=m,
            n=n,
            seed=None,
            ok=False,
            steps=0,
            moves=0,
            reason=f"{type(exc).__name__}: {exc}",
            kind="check",
            reduction=normalize_reduction(reduction),
        )
    stats = result.matcher_stats
    return VerificationReport(
        algorithm=algorithm.name,
        model=model,
        m=m,
        n=n,
        seed=None,
        ok=result.ok,
        steps=result.states_explored,
        moves=result.terminal_states,
        reason="ok" if result.ok else (result.counterexample or "check failed"),
        cache_hits=int(stats["hits"]) if stats is not None else None,
        cache_misses=int(stats["misses"]) if stats is not None else None,
        kind="check",
        reduction=result.reduction,
        reduction_stats=result.reduction_stats,
    )


# ---------------------------------------------------------------------------
# Work items
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignTask:
    """One independent, picklable verification work item.

    ``algorithm`` is a registry name so the task can cross a process
    boundary (rule sets carry lambdas and cannot be pickled).  ``kind``
    selects the execution engine: ``"walk"`` runs one bounded execution
    (driven by ``seed``/``tie_break``/``max_steps``), ``"check"`` runs the
    exhaustive model checker (driven by ``reduction``/``max_states`` — both
    picklable primitives, so reduced exhaustive checks fan out across
    process pools like any other task).
    """

    algorithm: str
    m: int
    n: int
    model: str = "FSYNC"
    seed: Optional[int] = None
    tie_break: str = TieBreak.ERROR
    max_steps: Optional[int] = None
    kind: str = "walk"
    #: ``kind="check"`` only: the reduction spec string for the exhaustive
    #: exploration (``None`` falls back to the checker's default quotient).
    reduction: Optional[str] = "grid"
    #: ``kind="check"`` only: the exploration state budget.
    max_states: int = 200_000
    #: ``kind="check"`` only: the successor kernel for the exploration
    #: (``"object"`` / ``"packed"`` / ``"auto"``; see
    #: :mod:`repro.engine.packed`).  Appended last so task tuples pickled
    #: by pre-kernel coordinators keep unpickling.
    kernel: str = "object"


def run_task(task: CampaignTask) -> VerificationReport:
    """Execute one task, resolving its algorithm through the registry.

    This is the worker entry point of the parallel engine; it must stay a
    module-level function so ``multiprocessing`` can pickle it.  Matching
    runs against the worker's persistent
    :func:`~repro.engine.pool.process_cache` — the very cache the sharded
    explorer warms in the same worker, so on a long-lived
    :class:`~repro.engine.pool.ExplorationPool` campaign tasks and
    explorations keep each other warm across an entire session.
    """
    from ..algorithms import registry  # local import: avoids a layering cycle

    algorithm = registry.get(task.algorithm)
    if task.kind == "check":
        return check_one(
            algorithm,
            task.m,
            task.n,
            model=task.model,
            reduction=task.reduction,
            max_states=task.max_states,
            cache=process_cache(),
            kernel=task.kernel,
        )
    return verify_one(
        algorithm,
        task.m,
        task.n,
        model=task.model,
        seed=task.seed,
        tie_break=task.tie_break,
        max_steps=task.max_steps,
        cache=process_cache(),
    )


def task_store_key(task: CampaignTask) -> Tuple[object, ...]:
    """The verdict-store spec of a task — shared by every execution route.

    :func:`verify_one` / :func:`check_one` build the identical tuples from
    their arguments (and the HTTP service builds them from request
    payloads), so a report cached by any route is a hit for every other —
    the tuple spellings live in :mod:`repro.engine.spec`.  Normalizations
    mirror execution: a walk's ``seed=None`` runs as ``0``, a check's
    reduction and kernel specs resolve through their canonical spellings.
    """
    from .spec import check_task_key, walk_task_key  # local import: spec imports this module

    if task.kind == "check":
        return check_task_key(
            task.algorithm, task.m, task.n, task.model,
            task.reduction, task.max_states, task.kernel,
        )
    return walk_task_key(
        task.algorithm, task.m, task.n, task.model,
        task.seed, task.tie_break, task.max_steps,
    )


def execute_tasks(
    algorithm: Algorithm,
    tasks: Iterable[CampaignTask],
    cache: Optional[MatcherCache] = None,
    store: Optional["VerdictStore"] = None,
) -> List[VerificationReport]:
    """Run tasks serially against an in-hand algorithm object.

    Unlike :func:`run_task` this works for algorithms that are not in the
    registry (ad-hoc/test algorithms); the results are identical to the
    parallel path for registered ones because both routes call
    :func:`verify_one` / :func:`check_one` per task kind.  One
    :class:`MatcherCache` (``cache``, freshly created by default) is
    shared across the whole task list, so every task after the first starts
    warm on the patterns already seen — including at other grid sizes.
    ``store`` forwards to :func:`verify_one` / :func:`check_one` per task,
    so repeated task lists are served from the verdict store.
    """
    cache = cache if cache is not None else MatcherCache()
    reports = []
    for task in tasks:
        if task.kind == "check":
            reports.append(
                check_one(
                    algorithm,
                    task.m,
                    task.n,
                    model=task.model,
                    reduction=task.reduction,
                    max_states=task.max_states,
                    cache=cache,
                    kernel=task.kernel,
                    store=store,
                )
            )
        else:
            reports.append(
                verify_one(
                    algorithm,
                    task.m,
                    task.n,
                    model=task.model,
                    seed=task.seed,
                    tie_break=task.tie_break,
                    max_steps=task.max_steps,
                    cache=cache,
                    store=store,
                )
            )
    return reports


def grid_sweep_tasks(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
) -> List[CampaignTask]:
    """The task list of a grid sweep (one run per supported size)."""
    sizes = list(sizes) if sizes is not None else default_grid_suite(algorithm)
    return [
        CampaignTask(algorithm=algorithm.name, m=m, n=n, model=model, seed=seed, tie_break=tie_break)
        for m, n in sizes
        if algorithm.supports_grid(m, n)
    ]


def stress_test_tasks(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    models: Sequence[str] = ("SSYNC", "ASYNC"),
    seeds: Sequence[int] = tuple(range(10)),
    tie_break: str = TieBreak.FIRST,
) -> List[CampaignTask]:
    """The task list of a randomized-scheduler stress campaign."""
    sizes = list(sizes) if sizes is not None else default_grid_suite(algorithm, max_side=7)
    return [
        CampaignTask(algorithm=algorithm.name, m=m, n=n, model=model, seed=seed, tie_break=tie_break)
        for m, n in sizes
        if algorithm.supports_grid(m, n)
        for model in models
        for seed in seeds
    ]


def exhaustive_check_tasks(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    reduction: Optional[str] = "grid",
    max_states: int = 200_000,
    kernel: str = "object",
) -> List[CampaignTask]:
    """The task list of an exhaustive model-checking sweep.

    One ``kind="check"`` task per supported grid size, each running the
    full state-space exploration under ``reduction``.  The default size
    family stays small (``max_side=4``): exhaustive checks grow
    exponentially with the grid, so sweeping them across the walk-campaign
    suite would be a budget trip, not a campaign.
    """
    sizes = list(sizes) if sizes is not None else default_grid_suite(algorithm, max_side=4)
    return [
        CampaignTask(
            algorithm=algorithm.name,
            m=m,
            n=n,
            model=model,
            kind="check",
            reduction=reduction,
            max_states=max_states,
            kernel=kernel,
        )
        for m, n in sizes
        if algorithm.supports_grid(m, n)
    ]


def derive_seed(base: int, *coordinates) -> int:
    """A stable 63-bit seed derived from a base seed and any coordinates.

    Pure function of its arguments (SHA-256 over their repr), so campaigns
    that need one distinct seed per ``(grid, model, run)`` cell stay fully
    reproducible without enumerating seeds by hand.
    """
    digest = hashlib.sha256(repr((base,) + coordinates).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ---------------------------------------------------------------------------
# The parallel engine
# ---------------------------------------------------------------------------
class ParallelCampaignEngine:
    """Fans campaign work items across a ``multiprocessing`` pool.

    Results come back in task order, and every run is driven purely by the
    seed in its task, so ``workers=N`` produces reports identical to the
    serial path.  Algorithms are shipped to workers by registry name;
    unregistered (ad-hoc) algorithms fall back to in-process execution.

    ``pool`` — a persistent :class:`~repro.engine.pool.ExplorationPool` —
    makes the engine execute its task lists on those long-lived workers
    instead of spawning an ephemeral pool per call: startup is amortised
    across campaigns, and the workers' matcher caches stay warm from one
    task list (and from any sharded exploration run on the same pool) to
    the next.  ``workers`` defaults to the pool's worker count, else to
    the affinity-aware :func:`~repro.engine.pool.default_workers`.

    ``backend`` — any :class:`~repro.engine.backend.ExecutionBackend` —
    supersedes both: task lists go to ``backend.run_tasks`` verbatim, so
    the same engine drives the serial, pooled and TCP-distributed
    (:class:`~repro.engine.distributed.DistributedBackend`) execution
    paths.  Reports are identical whichever backend runs them (every
    report is a pure function of its task and results return in task
    order); unregistered ad-hoc algorithms still fall back to in-process
    execution, since their rule sets cannot cross a process boundary.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: int = 4,
        pool: Optional[ExplorationPool] = None,
        backend: Optional["ExecutionBackend"] = None,
        store: Optional["VerdictStore"] = None,
    ) -> None:
        if workers is None and backend is None:
            workers = pool.workers if pool is not None else default_workers()
        # ``None`` with a backend means "the backend's current parallelism":
        # re-read per use (see :attr:`workers`) instead of frozen here, so
        # worker daemons that enroll after the engine is built still widen
        # campaign waves.
        self._workers = workers
        self.chunksize = max(1, chunksize)
        self.pool = pool
        self.backend = backend
        #: A :class:`~repro.engine.store.VerdictStore` consulted *before*
        #: dispatch: tasks whose reports are already stored never reach the
        #: pool/backend at all, and fresh reports are recorded on the way
        #: back.  The store lives on the coordinator (it holds locks and
        #: file handles, so it never crosses a process boundary).
        self.store = store

    @property
    def workers(self) -> int:
        """The engine's fan-out width.

        Explicitly passed ``workers`` are fixed; when the width was left to
        a backend, the backend's *live* ``parallelism`` is re-read on every
        access — a :class:`~repro.engine.distributed.DistributedBackend`
        whose daemons joined after construction reports them here.
        """
        if self._workers is not None:
            return self._workers
        return max(1, int(getattr(self.backend, "parallelism", 1) or 1))

    # -- execution -----------------------------------------------------
    def run_tasks(
        self,
        algorithm: Algorithm,
        tasks: Sequence[CampaignTask],
        *,
        journal=None,
        resume: bool = True,
        store: Optional["VerdictStore"] = None,
    ) -> List[VerificationReport]:
        """Execute ``tasks`` in task order, optionally journalled.

        ``journal`` — a :class:`~repro.engine.journal.CampaignJournal` or a
        path to open one at — makes the run *durable*: every completed
        report is appended (and fsynced) to the journal before the call
        returns, keyed by a content hash of its task.  With ``resume=True``
        (the default) journaled verdicts are replayed instead of
        re-executed, so a campaign killed mid-run and re-pointed at the
        same journal finishes the remainder and returns reports identical
        to an uninterrupted run's (every report is a pure function of its
        task).  ``resume=False`` truncates a path-opened journal first.
        A journal opened here is closed here; a passed-in instance stays
        open (the caller owns its lifecycle).

        ``store`` (defaulting to the engine's own) prefilters the list
        against the verdict store: stored reports are returned directly
        (annotated with ``store_stats``), only the remainder is dispatched,
        and every fresh report is recorded before the call returns —
        except poisoned ones, whose outcome is fault-injected rather than
        a function of the task.
        """
        tasks = list(tasks)
        store = self.store if store is None else store
        if store is not None and registered(algorithm):
            from .store import HIT, MISS  # local import: keeps the store optional

            keys = [task_store_key(task) for task in tasks]
            results: List[Optional[VerificationReport]] = []
            for key in keys:
                cached = store.get(key)
                results.append(store.annotate(cached, HIT) if cached is not None else None)
            pending = [index for index, report in enumerate(results) if report is None]
            if pending:
                fresh = self._run_tasks(
                    algorithm, [tasks[index] for index in pending], journal=journal, resume=resume
                )
                for index, report in zip(pending, fresh):
                    if not report.reason.startswith("poison task: "):
                        store.put(keys[index], report)
                    results[index] = store.annotate(report, MISS)
            return results  # type: ignore[return-value]
        return self._run_tasks(algorithm, tasks, journal=journal, resume=resume)

    def _run_tasks(
        self,
        algorithm: Algorithm,
        tasks: List[CampaignTask],
        *,
        journal,
        resume: bool,
    ) -> List[VerificationReport]:
        """Dispatch (store already consulted), optionally journalled."""
        if journal is None:
            return self._dispatch(algorithm, tasks)
        from .journal import CampaignJournal  # local import: keeps import cheap

        owned = not isinstance(journal, CampaignJournal)
        jnl = CampaignJournal(journal, fresh=not resume) if owned else journal
        try:
            keys = [CampaignJournal.task_key(task) for task in tasks]
            results: List[Optional[VerificationReport]] = [
                jnl.get(key) if resume else None for key in keys
            ]
            pending = [index for index, report in enumerate(results) if report is None]
            if pending:
                self._run_journaled(algorithm, tasks, keys, results, pending, jnl)
            return results  # type: ignore[return-value]
        finally:
            if owned:
                jnl.close()

    def _run_journaled(
        self,
        algorithm: Algorithm,
        tasks: List[CampaignTask],
        keys: List[str],
        results: List[Optional[VerificationReport]],
        pending: List[int],
        jnl,
    ) -> None:
        """Execute the pending items, journalling each completed report.

        Routing mirrors :meth:`_dispatch`, but execution is granular so
        durability is too: serial runs journal per task, pooled runs
        journal per result as ``imap`` streams them back, and backend runs
        journal per wave of ``workers * chunksize`` items (a backend call
        is all-or-nothing, so the wave is the durability quantum).
        """

        def commit(index: int, report: VerificationReport) -> None:
            results[index] = report
            jnl.put(keys[index], report)

        if self.backend is not None and registered(algorithm):
            wave = max(1, self.workers * self.chunksize)
            for start in range(0, len(pending), wave):
                ids = pending[start : start + wave]
                for index, report in zip(ids, self.backend.run_tasks([tasks[i] for i in ids])):
                    commit(index, report)
            return
        workers = min(self.workers, self.pool.workers) if self.pool is not None else self.workers
        if workers <= 1 or len(pending) <= 1 or not registered(algorithm):
            if self.pool is not None:
                cache = self.pool.cache
            elif self.backend is not None:
                from .backend import backend_cache  # local import: module cycle

                cache = backend_cache(self.backend)
            else:
                cache = MatcherCache()
            for index in pending:
                commit(index, execute_tasks(algorithm, [tasks[index]], cache=cache)[0])
            return
        pending_tasks = [tasks[index] for index in pending]
        if self.pool is not None:
            reports = self.pool.imap(run_task, pending_tasks, chunksize=self.chunksize)
            for index, report in zip(pending, reports):
                commit(index, report)
            return
        import multiprocessing

        context = multiprocessing.get_context()
        with context.Pool(processes=min(self.workers, len(pending_tasks))) as pool:
            reports = pool.imap(run_task, pending_tasks, chunksize=self.chunksize)
            for index, report in zip(pending, reports):
                commit(index, report)

    def _dispatch(self, algorithm: Algorithm, tasks: List[CampaignTask]) -> List[VerificationReport]:
        if self.backend is not None and tasks and registered(algorithm):
            # Even a single task ships: a remote backend's workers are not
            # this process, and their caches are the ones worth warming.
            return self.backend.run_tasks(tasks)
        # A pool can never offer more parallelism than it has workers.
        workers = min(self.workers, self.pool.workers) if self.pool is not None else self.workers
        if workers <= 1 or len(tasks) <= 1 or not registered(algorithm):
            # In-process fallback; on the pool's (or backend's) coordinator
            # cache when the engine has one, so serially-routed campaigns
            # stay as warm across calls as the workers would have been.
            if self.pool is not None:
                cache = self.pool.cache
            elif self.backend is not None:
                from .backend import backend_cache  # local import: module cycle

                cache = backend_cache(self.backend)
            else:
                cache = None
            return execute_tasks(algorithm, tasks, cache=cache)
        if self.pool is not None:
            return self.pool.map(run_task, tasks, chunksize=self.chunksize)
        import multiprocessing

        # The platform-default start method (fork on Linux, spawn on macOS/
        # Windows) is the safe choice: tasks and run_task are picklable and
        # re-import everything they need, so they are spawn-safe, and forcing
        # fork on macOS can deadlock threaded parents.
        context = multiprocessing.get_context()
        with context.Pool(processes=min(self.workers, len(tasks))) as pool:
            return pool.map(run_task, tasks, chunksize=self.chunksize)

    # -- campaign shapes (mirroring the serial entry points) ------------
    def grid_sweep(
        self,
        algorithm: Algorithm,
        sizes: Optional[Iterable[Tuple[int, int]]] = None,
        model: str = "FSYNC",
        seed: Optional[int] = None,
        tie_break: str = TieBreak.ERROR,
        journal=None,
        resume: bool = True,
    ) -> GridSweepReport:
        tasks = grid_sweep_tasks(algorithm, sizes=sizes, model=model, seed=seed, tie_break=tie_break)
        return GridSweepReport(
            algorithm=algorithm.name,
            reports=self.run_tasks(algorithm, tasks, journal=journal, resume=resume),
        )

    def stress_test(
        self,
        algorithm: Algorithm,
        sizes: Optional[Iterable[Tuple[int, int]]] = None,
        models: Sequence[str] = ("SSYNC", "ASYNC"),
        seeds: Sequence[int] = tuple(range(10)),
        tie_break: str = TieBreak.FIRST,
        journal=None,
        resume: bool = True,
    ) -> GridSweepReport:
        tasks = stress_test_tasks(algorithm, sizes=sizes, models=models, seeds=seeds, tie_break=tie_break)
        return GridSweepReport(
            algorithm=algorithm.name,
            reports=self.run_tasks(algorithm, tasks, journal=journal, resume=resume),
        )

    def exhaustive_sweep(
        self,
        algorithm: Algorithm,
        sizes: Optional[Iterable[Tuple[int, int]]] = None,
        model: str = "FSYNC",
        reduction: Optional[str] = "grid",
        max_states: int = 200_000,
        kernel: str = "object",
        journal=None,
        resume: bool = True,
    ) -> GridSweepReport:
        """Exhaustive model checks over a family of grid sizes.

        Each task runs the full (reduced) state-space exploration; the
        reports carry the verdicts plus per-component reduction statistics.
        ``kernel`` selects the successor kernel per task (reports are
        kernel-independent).  ``journal``/``resume`` make the sweep
        durable and resumable — see :meth:`run_tasks`.
        """
        tasks = exhaustive_check_tasks(
            algorithm, sizes=sizes, model=model, reduction=reduction,
            max_states=max_states, kernel=kernel,
        )
        return GridSweepReport(
            algorithm=algorithm.name,
            reports=self.run_tasks(algorithm, tasks, journal=journal, resume=resume),
        )

    def verify_algorithm(
        self,
        algorithm: Algorithm,
        sizes: Optional[Iterable[Tuple[int, int]]] = None,
        seeds: Sequence[int] = tuple(range(5)),
        journal=None,
        resume: bool = True,
    ) -> GridSweepReport:
        """The full campaign appropriate for an algorithm's claimed model."""
        tasks = grid_sweep_tasks(algorithm, sizes=sizes, model="FSYNC")
        if algorithm.synchrony == "ASYNC":
            tasks.extend(stress_test_tasks(algorithm, sizes=sizes, seeds=seeds))
        return GridSweepReport(
            algorithm=algorithm.name,
            reports=self.run_tasks(algorithm, tasks, journal=journal, resume=resume),
        )
