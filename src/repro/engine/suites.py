"""Shared grid-size suites — the single source of truth for campaigns.

Both the verification campaigns (:mod:`repro.verification.campaigns`) and
the scaling analysis (:mod:`repro.analysis.scaling`) used to carry their
own copies of these families; they now both import from here so a change
to the suite definition lands everywhere at once.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.algorithm import Algorithm

__all__ = ["default_grid_suite", "scaling_suite"]


def default_grid_suite(algorithm: Algorithm, max_side: int = 9) -> List[Tuple[int, int]]:
    """A representative family of grid sizes for ``algorithm``.

    Covers both parities of each dimension, the minimum supported sizes,
    thin grids (2 rows / few columns) and a couple of larger squares.
    """
    m0, n0 = algorithm.min_m, algorithm.min_n
    candidates = {
        (m0, n0),
        (m0, n0 + 1),
        (m0 + 1, n0),
        (m0 + 1, n0 + 1),
        (2, max(n0, 7)),
        (max(m0, 7), n0),
        (5, max(n0, 6)),
        (6, max(n0, 5)),
        (max_side, max(n0, max_side - 1)),
        (max(m0, max_side - 1), max_side),
    }
    return sorted((m, n) for m, n in candidates if m >= m0 and n >= n0)


def scaling_suite(algorithm: Algorithm, max_side: int = 11) -> List[Tuple[int, int]]:
    """The near-square ramp plus thin extremes used by the scaling sweeps."""
    base = max(algorithm.min_n, 4)
    return [(side, side + 1) for side in range(max(algorithm.min_m, 3), max_side + 1)] + [
        (3, base * 4),
        (base * 4, 3 if algorithm.min_n <= 3 else algorithm.min_n),
    ]
