"""Shared grid-size suites — the single source of truth for campaigns.

Both the verification campaigns (:mod:`repro.verification.campaigns`) and
the scaling analysis (:mod:`repro.analysis.scaling`) used to carry their
own copies of these families; they now both import from here so a change
to the suite definition lands everywhere at once.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.algorithm import Algorithm

__all__ = [
    "default_grid_suite",
    "scaling_suite",
    "reduction_parity_suite",
    "REDUCTION_BENCH_CASE",
]

#: The suite ASYNC case the reduction benchmark and the ``make verify``
#: smoke guard key on: several robots overlap Look/Compute/Move phases on
#: this grid, so ``"grid+color+por"`` explores strictly fewer states than
#: ``"grid"`` (with a byte-identical verdict).
REDUCTION_BENCH_CASE: Tuple[str, int, int, str] = ("async_phi2_l2_nochir_k4", 4, 4, "ASYNC")


def default_grid_suite(algorithm: Algorithm, max_side: int = 9) -> List[Tuple[int, int]]:
    """A representative family of grid sizes for ``algorithm``.

    Covers both parities of each dimension, the minimum supported sizes,
    thin grids (2 rows / few columns) and a couple of larger squares.
    """
    m0, n0 = algorithm.min_m, algorithm.min_n
    candidates = {
        (m0, n0),
        (m0, n0 + 1),
        (m0 + 1, n0),
        (m0 + 1, n0 + 1),
        (2, max(n0, 7)),
        (max(m0, 7), n0),
        (5, max(n0, 6)),
        (6, max(n0, 5)),
        (max_side, max(n0, max_side - 1)),
        (max(m0, max_side - 1), max_side),
    }
    return sorted((m, n) for m, n in candidates if m >= m0 and n >= n0)


def reduction_parity_suite() -> List[Tuple[str, int, int, str]]:
    """Exhaustive-check cases for the reduction verdict-parity tests.

    Every registered algorithm at its minimum supported grid under each of
    FSYNC, SSYNC and ASYNC (all small enough to explore unreduced in
    milliseconds), plus a slightly larger ASYNC case per ASYNC-designed
    algorithm — the regime where several robots hold overlapping
    Look/Compute/Move phases and partial-order reduction has interleavings
    to prune — and :data:`REDUCTION_BENCH_CASE`.  The parity tests and the
    reduction benchmark both draw from this list, so "the suite" means the
    same thing everywhere.
    """
    from ..algorithms import all_algorithms  # local import: avoids a layering cycle

    cases: List[Tuple[str, int, int, str]] = []
    for name, algorithm in sorted(all_algorithms().items()):
        m, n = algorithm.min_m, algorithm.min_n
        for model in ("FSYNC", "SSYNC", "ASYNC"):
            cases.append((name, m, n, model))
        if algorithm.synchrony == "ASYNC":
            cases.append((name, m + 1, n + 1, "ASYNC"))
    if REDUCTION_BENCH_CASE not in cases:
        cases.append(REDUCTION_BENCH_CASE)
    return cases


def scaling_suite(algorithm: Algorithm, max_side: int = 11) -> List[Tuple[int, int]]:
    """The near-square ramp plus thin extremes used by the scaling sweeps."""
    base = max(algorithm.min_n, 4)
    return [(side, side + 1) for side in range(max(algorithm.min_m, 3), max_side + 1)] + [
        (3, base * 4),
        (base * 4, 3 if algorithm.min_n <= 3 else algorithm.min_n),
    ]
