"""Persistent exploration worker pool with process-level matcher caches.

Before this module, every :func:`~repro.engine.sharded.explore_sharded`
call spawned — and tore down — its own ``multiprocessing`` pool.  Pool
startup is milliseconds-per-worker of pure overhead, which dominates the
wall clock below roughly :data:`SERIAL_THRESHOLD` (about 10^4) states, and
the per-worker :class:`~repro.engine.matcher.MatcherCache`\\ s died with the
pool: the second exploration of a campaign re-evaluated every guard the
first one had already memoized.

:class:`ExplorationPool` fixes both at once.  It is one long-lived process
pool that

* **amortises startup** — workers spawn lazily on the first parallel use
  and then serve every subsequent exploration *and* campaign task until
  the pool is closed (it is a context manager);
* **keeps worker caches warm** — each worker process owns a single
  :func:`process_cache` (a :class:`~repro.engine.matcher.MatcherCache`)
  shared by the sharded-exploration expander and the campaign task runner,
  so guard evaluations memoized during one exploration are served from
  cache in the next one, at any grid size of the same algorithm;
* **routes adaptively** — :meth:`ExplorationPool.explore` estimates the
  state count of the requested exploration and runs it serially (on the
  pool's own coordinator-side cache, also persistent) when the estimate is
  below ``serial_threshold``, sharded above; small grids no longer pay any
  inter-process traffic at all.

Both routes produce byte-identical :class:`~repro.engine.explorer.Exploration`
objects — same states in the same interned order, same successor rows and
edge labels, and the same :class:`StateSpaceLimitExceeded` message and
context when a state budget trips — because the sharded merge replays
serial BFS order and memoization never changes results.  Only
``matcher_stats`` reflects the route taken (aggregated per-worker deltas
when sharded, the coordinator cache's delta when serial).

The worker-side helpers (:func:`process_cache`, :func:`expand_shard`) are
module-level so ``multiprocessing`` can pickle references to them; their
mutable state is per-process by construction.
"""

from __future__ import annotations

import os
import threading
from math import comb
from typing import Dict, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..core.grid import Grid
from .explorer import Exploration
from .matcher import MatcherCache
from .reduction import (
    ReductionPipeline,
    ReductionSpec,
    apriori_reduction_factor,
    normalize_reduction,
)
from .states import SchedulerState
from .transition import MODELS

__all__ = [
    "ExplorationPool",
    "PACKED_SERIAL_FACTOR",
    "SERIAL_THRESHOLD",
    "default_workers",
    "estimate_states",
    "process_cache",
]

#: Default adaptive-routing threshold: explorations whose estimated state
#: count falls below this run serially (pool spawn / IPC overhead dominates
#: there; see ``BENCH_engine.json``), larger ones are sharded.
SERIAL_THRESHOLD = 10_000

#: How much further the serial route stays competitive under the packed
#: kernel: its wave BFS expands an order of magnitude more states per
#: second than the object loop (see ``BENCH_engine.json``'s
#: ``packed_vs_object`` headlines), so the state count at which worker
#: spawn / IPC overhead starts to pay is correspondingly higher.
#: :meth:`ExplorationPool.explore` multiplies its ``serial_threshold`` by
#: this factor when ``kernel="packed"`` (or ``"auto"``) is requested.
PACKED_SERIAL_FACTOR = 10

#: Serializes process-pool construction across threads so the
#: failed-spawn cleanup in :meth:`ExplorationPool._ensure_pool` can
#: attribute every newly appeared pool-worker child to *its* spawn —
#: ``multiprocessing.active_children()`` is process-global and two pools
#: spawning concurrently would otherwise reap each other's workers.
_SPAWN_LOCK = threading.Lock()


def default_workers() -> int:
    """The default shard/worker count: one per *usable* core.

    ``os.cpu_count()`` reports the machine's cores even when the process is
    confined to fewer by a cgroup quota or CPU affinity mask (the normal
    situation in containers), which oversubscribes the pool.  Prefer the
    scheduling affinity of this process where the platform exposes it.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def registered(algorithm: Algorithm) -> bool:
    """Whether ``algorithm`` is the registry's object for its name.

    Only registered algorithms can cross a process boundary (rule sets
    close over lambdas and cannot be pickled; workers re-resolve the name).
    """
    from ..algorithms import registry  # local import: avoids a layering cycle

    return registry.all_algorithms().get(algorithm.name) is algorithm


def estimate_states(
    algorithm: Algorithm, grid: Grid, model: str, reduction: ReductionSpec = None
) -> int:
    """A cheap a-priori estimate of the reachable state count.

    Upper-bound-shaped heuristic, not a count: placements of the
    algorithm's ``k`` robots on the grid times the color assignments, with
    a branching multiplier for the richer scheduler state of SSYNC (subset
    activation) and ASYNC (per-robot Look/Compute/Move phases and stored
    snapshots).  A quotienting ``reduction`` divides the estimate by its
    a-priori factor (``|grid group| * |detected color group|``), so a
    reduced run is routed on the state count it can actually reach rather
    than the raw one.  The estimate only needs to order workloads around
    :data:`SERIAL_THRESHOLD` — small grids below, state-space-heavy runs
    above — which it does with orders of magnitude to spare.
    """
    nodes = grid.m * grid.n
    k = min(algorithm.k, nodes)
    estimate = comb(nodes, k) * (max(len(algorithm.colors), 1) ** k)
    if model == "SSYNC":
        estimate *= 4
    elif model == "ASYNC":
        estimate *= 32
    factor = apriori_reduction_factor(algorithm, grid, model, reduction)
    return max(1, estimate // factor)


# ---------------------------------------------------------------------------
# Worker side (module-level state is per-process by construction)
# ---------------------------------------------------------------------------
#: One exploration context, fully picklable: everything a worker needs to
#: rebuild the transition system (and reduction pipeline) it should expand
#: against.  The fifth slot is the normalized reduction spec string
#: (``"none"``, ``"grid"``, ``"grid+color+por"``, ...); the sixth is the
#: normalized successor-kernel spec (``"object"`` or ``"packed"``; see
#: :mod:`repro.engine.packed`).  Five-tuple keys from older callers keep
#: working and mean the object kernel.
ExploreKey = Tuple[str, int, int, str, str, str]  # (algorithm, m, n, model, reduction, kernel)

_PROCESS_CACHE: Optional[MatcherCache] = None

#: Transition systems this process has already configured, keyed by
#: :data:`ExploreKey` — kept so re-exploring the same workload skips even
#: the (cheap) system and pipeline construction.  Bounded; see
#: :data:`_MAX_SYSTEMS`.
_SYSTEMS: Dict[ExploreKey, Tuple[object, ReductionPipeline]] = {}
_MAX_SYSTEMS = 64


def process_cache() -> MatcherCache:
    """This process's persistent :class:`MatcherCache` (created on first use).

    In a pool worker it outlives individual explorations and campaign
    tasks — both :func:`expand_shard` and
    :func:`repro.engine.campaign.run_task` match against it — which is what
    makes a long-lived :class:`ExplorationPool` start every workload after
    the first warm.  (The memo keys are grid-size independent and keyed on
    algorithm identity, so sharing across workloads never changes results;
    see :class:`~repro.engine.matcher.MatcherCache`.)
    """
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = MatcherCache()
    return _PROCESS_CACHE


def _system(key: ExploreKey) -> Tuple[object, ReductionPipeline]:
    """The process-local transition system (+ reduction pipeline) for ``key``.

    Accepts legacy five-slot keys (no kernel) for backward compatibility
    with pre-kernel coordinators; they mean the object kernel.
    """
    entry = _SYSTEMS.get(key)
    if entry is None:
        from ..algorithms import registry  # local import: workers re-import lazily
        from .packed import build_transition_system  # local import: module cycle

        name, m, n, model, spec = key[:5]
        kernel = key[5] if len(key) > 5 else "object"
        algorithm = registry.get(name)
        grid = Grid(m, n)
        ts = build_transition_system(
            algorithm, grid, model, kernel,
            matcher=process_cache().matcher_for(algorithm, grid),
        )
        entry = (ts, ReductionPipeline(algorithm, grid, model, spec=spec))
        while len(_SYSTEMS) >= _MAX_SYSTEMS:  # matcher tables persist either way
            _SYSTEMS.pop(next(iter(_SYSTEMS)))
        _SYSTEMS[key] = entry
    return entry


#: One expanded row: a state's canonicalised successors, each paired with
#: the witness token of the collapsing symmetry (``None`` for
#: identity/unreduced; see :data:`repro.engine.reduction.WitnessToken`).
Row = List[Tuple[SchedulerState, object]]


def expand_shard(
    payload: Tuple[ExploreKey, List[SchedulerState]]
) -> Tuple[List[Row], Tuple[int, int], Dict[str, int]]:
    """Expand one shard's slice of a BFS wave; the worker map function.

    The payload carries the exploration context so one long-lived pool can
    serve any sequence of workloads; reconfiguration is a dict hit when the
    context repeats.  Returns the successor rows in input order, the
    matcher hit/miss delta this batch generated (aggregated by the
    coordinator into ``Exploration.matcher_stats``), and the reduction
    counter delta (aggregated into ``Exploration.reduction_stats``).
    """
    key, states = payload
    ts, pipeline = _system(key)
    stats_before = ts.matcher.stats.snapshot()
    counters_before = pipeline.counters_snapshot()
    rows: List[Row] = []
    for state in states:
        row: Row = []
        for raw in pipeline.successors(ts, state):
            rep, h = pipeline.canonicalize(raw)
            row.append((rep, pipeline.witness_token(h)))
        rows.append(row)
    delta = ts.matcher.stats.delta_since(stats_before)
    return rows, (delta.hits, delta.misses), pipeline.counters_delta(counters_before)


class ResidentShard:
    """Worker-resident state of one logical shard of a stateful session.

    The delta-wave protocol of :mod:`repro.engine.distributed` keeps the
    frontier *resident* worker-side: each logical shard owns an append-only
    **intern table** of every state it has ever exchanged with the
    coordinator, mirrored byte-for-byte on the coordinator end.  Wire
    traffic then names states by table index wherever possible:

    * a **downlink** frontier entry is either a plain ``int`` (a table
      index — the state was shipped before, usually as one of this shard's
      own reported successors) or ``("f", state)`` (a full state, appended
      to the table by both ends);
    * an **uplink** successor reference is either a plain ``int`` or
      ``("n", state)`` for a state this shard has never exchanged
      (appended by both ends, in report order).

    Both ends process entries in the same order — downlink appends first,
    then uplink appends — so the tables stay identical without ever being
    compared.  The table is also the shard's snapshot (see
    :class:`~repro.engine.journal.ShardSnapshotStore`): restoring it on a
    fresh worker resumes the compression exactly, and the **watermark**
    (table length) decides snapshot currency.

    Expansion itself reuses the exact machinery of :func:`expand_shard` —
    the process-local transition system, reduction pipeline and persistent
    :func:`process_cache` behind :func:`_system` — so a stateful wave
    produces the same rows, matcher deltas and reduction-counter deltas a
    stateless one would.
    """

    def __init__(self, key: ExploreKey, table: Optional[List[SchedulerState]] = None) -> None:
        self.key = key
        self.table: List[SchedulerState] = list(table) if table else []
        self.seen: Dict[SchedulerState, int] = {state: i for i, state in enumerate(self.table)}

    @property
    def watermark(self) -> int:
        """Exchange count of this shard: the length of its intern table."""
        return len(self.table)

    def _intern(self, state: SchedulerState) -> int:
        index = len(self.table)
        self.table.append(state)
        self.seen[state] = index
        return index

    def expand_wave(
        self, entries: List[object]
    ) -> Tuple[list, Tuple[int, int], Dict[str, int]]:
        """Expand one wave's frontier entries; returns wire-encoded rows.

        ``entries`` are downlink entries in BFS order; the result rows are
        aligned with them, each a list of ``(ref, witness-token)`` pairs
        using the uplink encoding above.  The matcher and reduction deltas
        are exactly those of the equivalent :func:`expand_shard` call.
        """
        ts, pipeline = _system(self.key)
        states: List[SchedulerState] = []
        for entry in entries:
            if isinstance(entry, int):
                states.append(self.table[entry])
            else:
                state = entry[1]
                self._intern(state)
                states.append(state)
        stats_before = ts.matcher.stats.snapshot()
        counters_before = pipeline.counters_snapshot()
        rows: list = []
        for state in states:
            row: list = []
            for raw in pipeline.successors(ts, state):
                rep, h = pipeline.canonicalize(raw)
                ref = self.seen.get(rep)
                if ref is None:
                    self._intern(rep)
                    row.append((("n", rep), pipeline.witness_token(h)))
                else:
                    row.append((ref, pipeline.witness_token(h)))
            rows.append(row)
        delta = ts.matcher.stats.delta_since(stats_before)
        return rows, (delta.hits, delta.misses), pipeline.counters_delta(counters_before)


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------
class ExplorationPool:
    """One long-lived worker pool for explorations and campaign tasks.

    Use as a context manager (or call :meth:`close` explicitly)::

        with ExplorationPool(workers=4) as pool:
            first = check_terminating_exploration(alg, grid, model="FSYNC", pool=pool)
            second = check_terminating_exploration(alg, grid, model="SSYNC", pool=pool)
            reports = ParallelCampaignEngine(pool=pool).grid_sweep(alg)

    The underlying process pool spawns lazily on the first sharded-routed
    workload and is reused by every later one — explorations (any
    algorithm/grid/model mix) and campaign task lists alike — so startup is
    paid at most once and each worker's :func:`process_cache` stays warm
    across workloads.  Serial-routed work runs in the calling process on
    :attr:`cache`, the pool's equally persistent coordinator-side
    :class:`MatcherCache`.

    ``serial_threshold`` tunes the adaptive routing of :meth:`explore`
    (estimated states below it run serially); pass ``0`` to force sharding,
    or a very large value to pin everything serial.  Routing, sharding and
    caching never change results — see the module docstring.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        serial_threshold: int = SERIAL_THRESHOLD,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        self.serial_threshold = serial_threshold
        #: Coordinator-side cache backing serial-routed explorations (and the
        #: serial fallbacks of ``explore_sharded(pool=...)``); persists for
        #: the life of the pool, like the workers' :func:`process_cache`.
        self.cache = MatcherCache()
        self._pool = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether worker processes have actually been spawned yet."""
        return self._pool is not None

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("ExplorationPool is closed")
        if self._pool is None and self.workers > 1:
            import multiprocessing

            # Platform-default start method, as elsewhere in the engine:
            # everything shipped is picklable and workers re-import lazily,
            # and forcing fork on macOS can deadlock threaded parents.
            context = multiprocessing.get_context()
            # A constructor that fails partway (say the (k+1)-th worker of
            # k+n cannot spawn) raises without handing back the pool object,
            # stranding the workers it did start.  Snapshot the live
            # children first and reap any newcomers on failure, so a failed
            # spawn leaks neither processes nor their pipes — and the pool
            # object stays cleanly closeable/reusable.  Only processes with
            # a pool-worker name are candidates: active_children() is
            # process-global, and a thread concurrently starting unrelated
            # workers (a WorkerDaemon, say) must not see them reaped.
            with _SPAWN_LOCK:
                before = set(multiprocessing.active_children())
                try:
                    self._pool = context.Pool(processes=self.workers)
                except BaseException:
                    self._pool = None
                    for process in multiprocessing.active_children():
                        if process not in before and "PoolWorker" in (process.name or ""):
                            process.terminate()
                            process.join(timeout=5.0)
                    raise
        return self._pool

    def close(self) -> None:
        """Shut the workers down; the pool cannot be used afterwards.

        Idempotent, and safe whatever state spawning reached: a pool whose
        worker spawn failed partway (see :meth:`_ensure_pool`) or that
        never spawned closes without error, and ``__exit__`` never masks
        an in-flight exception with a teardown failure.
        """
        if self._closed:
            return
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
            finally:
                pool.join()

    def __enter__(self) -> "ExplorationPool":
        if self._closed:
            raise RuntimeError("ExplorationPool is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -----------------------------------------------------
    def map(self, fn, iterable, chunksize: int = 1) -> list:
        """``pool.map`` on the persistent workers.

        Workers spawn lazily, and only when there is work to ship.  On a
        one-worker pool the items run in the calling process instead; note
        that worker functions like ``expand_shard``/``run_task`` then warm
        this process's :func:`process_cache`, not :attr:`cache` — the
        library's own routes avoid that by clamping to the pool's worker
        count and taking the serial route (which *does* use :attr:`cache`)
        whenever the pool cannot actually parallelize.
        """
        items = list(iterable)
        if not items:
            return []
        pool = self._ensure_pool()
        if pool is None:
            return [fn(item) for item in items]
        return pool.map(fn, items, chunksize=chunksize)

    def imap(self, fn, iterable, chunksize: int = 1):
        """``pool.imap`` on the persistent workers: results as they finish.

        Same routing and caveats as :meth:`map`, but results stream back in
        submission order as an iterator — the journalled campaign route
        uses this so each completed report can be made durable without
        waiting for the whole batch.
        """
        items = list(iterable)
        if not items:
            return iter(())
        pool = self._ensure_pool()
        if pool is None:
            return (fn(item) for item in items)
        return pool.imap(fn, items, chunksize=chunksize)

    def explore(
        self,
        algorithm: Algorithm,
        grid: Grid,
        model: str,
        *,
        reduction: ReductionSpec = None,
        symmetry_reduction: bool = False,
        max_states: int = 200_000,
        start: Optional[SchedulerState] = None,
        kernel: Optional[str] = None,
        store=None,
    ) -> Exploration:
        """Explore with adaptive routing; identical to the serial explorer.

        Runs serially — in this process, on :attr:`cache` — when the
        workload is too small for sharding to pay (estimated states below
        ``serial_threshold``), when the pool has one worker, or when the
        algorithm cannot cross a process boundary; shards over the
        persistent workers otherwise.  The routing estimate is scaled by
        the a-priori factor of the requested ``reduction`` (a quotiented
        run is routed on the state count it can actually reach).  Either
        way the ``Exploration`` is byte-identical to
        ``explore(AlgorithmTransitionSystem(...))`` with the same
        arguments, including ``StateSpaceLimitExceeded`` context on a
        tripped budget; ``matcher_stats`` reports the route's cache
        counters.

        ``kernel`` selects the successor kernel (``"object"``, ``"packed"``
        or ``"auto"``); it is carried in the :data:`ExploreKey` so shard
        workers rebuild the matching transition system.  Because the packed
        kernel expands roughly an order of magnitude more states per second
        serially, the routing threshold is scaled by
        :data:`PACKED_SERIAL_FACTOR` when it is selected — larger workloads
        stay on the (much faster) serial wave BFS before sharding pays.

        ``store`` — a :class:`~repro.engine.store.VerdictStore` — is
        forwarded to ``explore_sharded`` on both routes, so either is
        served from (and records into) the shared verdict cache.
        """
        if model not in MODELS:
            raise ValueError(f"unknown model {model!r}")
        if self._closed:
            raise RuntimeError("ExplorationPool is closed")
        from .packed import normalize_kernel  # local import: avoids a module cycle
        from .sharded import explore_sharded  # local import: avoids a module cycle

        spec = normalize_reduction(reduction, symmetry_reduction)
        knorm = normalize_kernel(kernel)
        threshold = self.serial_threshold
        if knorm == "packed":
            threshold *= PACKED_SERIAL_FACTOR
        serial = (
            self.workers <= 1
            or not registered(algorithm)
            or estimate_states(algorithm, grid, model, reduction=spec) < threshold
        )
        if serial:
            # workers=1 takes explore_sharded's serial fallback — the one
            # shared implementation of the cache-backed serial route — on
            # this pool's persistent coordinator cache.
            return explore_sharded(
                algorithm,
                grid,
                model,
                workers=1,
                reduction=spec,
                max_states=max_states,
                start=start,
                cache=self.cache,
                kernel=knorm,
                store=store,
            )
        return explore_sharded(
            algorithm,
            grid,
            model,
            workers=self.workers,
            reduction=spec,
            max_states=max_states,
            start=start,
            pool=self,
            kernel=knorm,
            store=store,
        )
