"""The Look-Compute-Move execution engine: a lazy single-path walk.

This is the simulation half of the engine kernel: where the explorer
(:mod:`repro.engine.explorer`) branches over *every* scheduler choice, the
walk follows *one* path through the very same transition semantics, letting
a pluggable scheduler policy (:mod:`repro.core.scheduler`) and a tie-break
policy resolve the nondeterminism one step at a time:

* :func:`run_fsync` — every robot executes a full cycle at every instant;
* :func:`run_ssync` — a scheduler-selected non-empty subset of the robots
  executes a full synchronous cycle at every instant;
* :func:`run_async` — Look, Compute and Move phases of different robots
  interleave arbitrarily; the color change decided during Compute becomes
  visible *before* the corresponding Move, which is exactly the
  "intermediate configuration" the paper reasons about for its ASYNC
  algorithms.

Nondeterministic rule/view selection (Section 2.2: "one combination of a
view and a rule is selected by the scheduler") is resolved by a tie-break
policy: ``"error"`` (fail loudly — useful to certify that an algorithm is
behaviour-deterministic along its executions), ``"first"`` (declaration
order) or ``"random"``.  The random policy draws from a **per-run**
``random.Random(seed)`` instance — never from module-level RNG state — and
the seed is recorded on the :class:`~repro.core.execution.ExecutionResult`
so any run can be replayed exactly.

All snapshot construction and rule matching goes through one
:class:`~repro.engine.matcher.LocalMatcher` per run, so recurring local
neighbourhoods (a robot sweeping an empty row) are evaluated once.  Callers
that run many executions of the same algorithm (campaigns, scaling sweeps)
can pass ``matcher=`` explicitly — typically obtained from a
:class:`~repro.engine.matcher.MatcherCache` — to start every run warm.

The synchronous engines step through a *batched* fast path: each round the
matcher builds one neighbourhood index for the whole configuration and
evaluates every robot's matches in a single pass
(:meth:`~repro.engine.matcher.LocalMatcher.batched_matches`), and those
matches drive both the enabled-set test and the round execution — one
matcher pass per round instead of the two per-robot passes the naive
check-then-execute loop would make.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.algorithm import Action, Algorithm, Match
from ..core.configuration import Configuration
from ..core.errors import AmbiguousActionError, SimulationError
from ..core.execution import Event, ExecutionResult
from ..core.grid import Grid, Node
from ..core.robot import Robot
from ..core.scheduler import AsyncScheduler, RandomAsync, RandomSubset, SsyncScheduler
from ..core.views import Snapshot
from ..core.world import World
from .matcher import LocalMatcher

__all__ = [
    "TieBreak",
    "default_step_budget",
    "run_fsync",
    "run_ssync",
    "run_async",
    "run",
]


class TieBreak:
    """Policies for resolving ambiguous (multi-outcome) rule matches."""

    ERROR = "error"
    FIRST = "first"
    RANDOM = "random"

    ALL = (ERROR, FIRST, RANDOM)

    @classmethod
    def validate(cls, policy: str) -> str:
        if policy not in cls.ALL:
            raise SimulationError(f"unknown tie-break policy {policy!r}")
        return policy


def default_step_budget(grid: Grid, k: int, model: str) -> int:
    """A generous step budget for bounded simulation.

    The paper's algorithms complete exploration in Theta(m * n) robot moves;
    the budget below leaves ample slack (per-robot cycles, turning overhead,
    ASYNC phase granularity) so that hitting it reliably signals
    non-termination rather than slowness.
    """
    base = 40 * grid.num_nodes * max(k, 1) + 400
    if model == "ASYNC":
        return 4 * base
    return base


def _resolve(
    algorithm: Algorithm,
    matches: Sequence[Match],
    tie_break: str,
    rng: random.Random,
) -> Match:
    """Pick the match to execute among a non-empty list of matches."""
    actions = algorithm.distinct_actions(matches)
    if len(actions) == 1 or tie_break == TieBreak.FIRST:
        return matches[0]
    if tie_break == TieBreak.RANDOM:
        return rng.choice(list(matches))
    raise AmbiguousActionError(
        f"{algorithm.name}: ambiguous enabled actions {[str(a) for a in actions]}"
        f" (rules {[m.rule.name for m in matches]})"
    )


def _visit(visited: Set[Node], world: World) -> None:
    for robot in world.robots:
        visited.add(robot.pos)


@dataclass(slots=True)
class _Recorder:
    """Shared bookkeeping between the three execution engines."""

    algorithm: Algorithm
    world: World
    model: str
    record_trace: bool
    seed: Optional[int] = None
    tie_break: Optional[str] = None
    trace: List[Configuration] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    visited: Set[Node] = field(default_factory=set)
    initial: Configuration = field(init=False)

    def __post_init__(self) -> None:
        _visit(self.visited, self.world)
        self.initial = self.world.configuration()
        if self.record_trace:
            self.trace.append(self.initial)

    def snapshot_config(self) -> None:
        if self.record_trace:
            config = self.world.configuration()
            if not self.trace or self.trace[-1] != config:
                self.trace.append(config)

    def result(self, steps: int, terminated: bool, reason: str) -> ExecutionResult:
        final = self.world.configuration()
        if self.record_trace and (not self.trace or self.trace[-1] != final):
            self.trace.append(final)
        return ExecutionResult(
            algorithm_name=self.algorithm.name,
            model=self.model,
            grid=self.world.grid,
            initial=self.initial,
            final=final,
            trace=self.trace,
            events=self.events,
            visited=self.visited,
            steps=steps,
            terminated=terminated,
            termination_reason=reason,
            seed=self.seed,
            tie_break=self.tie_break,
        )


def _enabled_robots(matcher: LocalMatcher, world: World) -> List[Robot]:
    """All enabled robots in ``world`` (memoized matching)."""
    robots = world.robots
    return [robot for robot in robots if matcher.matches(robots, robot.pos, robot.color)]


def _round_matches(matcher: LocalMatcher, world: World) -> List[Tuple[Robot, Tuple[Match, ...]]]:
    """``(robot, matches)`` for every *enabled* robot, via one batched pass.

    This is the synchronous engines' per-round fast path: the matcher builds
    the neighbourhood index once for the whole configuration, and the
    returned matches are reused for the round execution instead of being
    recomputed per activated robot.
    """
    return [(robot, matches) for robot, matches in matcher.batched_matches(world.robots) if matches]


# ---------------------------------------------------------------------------
# Synchronous engines (FSYNC / SSYNC)
# ---------------------------------------------------------------------------
def _synchronous_round(
    algorithm: Algorithm,
    recorder: _Recorder,
    active: Sequence[Tuple[Robot, Tuple[Match, ...]]],
    round_index: int,
    tie_break: str,
    rng: random.Random,
) -> None:
    """Execute one synchronous cycle for the given ``(robot, matches)`` pairs.

    All activated robots observe the same pre-round configuration — their
    matches were computed against it in one batched pass — and their color
    changes and movements are applied simultaneously afterwards.
    """
    world = recorder.world
    decisions: List[Tuple[Robot, Match]] = [
        (robot, _resolve(algorithm, matches, tie_break, rng)) for robot, matches in active
    ]

    # Apply all color changes and movements simultaneously.
    for robot, match in decisions:
        world.set_color(robot.rid, match.action.new_color)
    for robot, match in decisions:
        new_pos = world.move(robot.rid, match.action.world_move)
        recorder.events.append(
            Event(
                time=round_index,
                rid=robot.rid,
                phase="cycle",
                rule=match.rule.name,
                symmetry=match.symmetry.name,
                old_pos=robot.pos,
                new_pos=new_pos,
                old_color=robot.color,
                new_color=match.action.new_color,
            )
        )
    _visit(recorder.visited, world)
    recorder.snapshot_config()


def run_fsync(
    algorithm: Algorithm,
    grid: Grid,
    max_steps: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
    seed: int = 0,
    record_trace: bool = True,
    matcher: Optional[LocalMatcher] = None,
) -> ExecutionResult:
    """Simulate the algorithm under the fully synchronous scheduler.

    ``matcher`` may be supplied (typically from a shared
    :class:`~repro.engine.matcher.MatcherCache`) to reuse snapshot/match
    memo tables across runs; by default each run gets a private one.
    """
    TieBreak.validate(tie_break)
    rng = random.Random(seed)
    matcher = matcher if matcher is not None else LocalMatcher(algorithm, grid)
    world = algorithm.initial_world(grid)
    recorder = _Recorder(algorithm, world, "FSYNC", record_trace, seed=seed, tie_break=tie_break)
    budget = max_steps if max_steps is not None else default_step_budget(grid, algorithm.k, "FSYNC")

    for round_index in range(budget):
        enabled = _round_matches(matcher, world)
        if not enabled:
            return recorder.result(round_index, True, "terminal")
        _synchronous_round(algorithm, recorder, enabled, round_index, tie_break, rng)
    terminated = not _round_matches(matcher, world)
    reason = "terminal" if terminated else "max_steps"
    return recorder.result(budget, terminated, reason)


def run_ssync(
    algorithm: Algorithm,
    grid: Grid,
    scheduler: Optional[SsyncScheduler] = None,
    max_steps: Optional[int] = None,
    tie_break: str = TieBreak.FIRST,
    seed: int = 0,
    record_trace: bool = True,
    matcher: Optional[LocalMatcher] = None,
) -> ExecutionResult:
    """Simulate the algorithm under a semi-synchronous scheduler."""
    TieBreak.validate(tie_break)
    rng = random.Random(seed)
    scheduler = scheduler if scheduler is not None else RandomSubset(seed=seed)
    matcher = matcher if matcher is not None else LocalMatcher(algorithm, grid)
    world = algorithm.initial_world(grid)
    recorder = _Recorder(algorithm, world, "SSYNC", record_trace, seed=seed, tie_break=tie_break)
    budget = max_steps if max_steps is not None else default_step_budget(grid, algorithm.k, "SSYNC")

    for round_index in range(budget):
        enabled = _round_matches(matcher, world)
        if not enabled:
            return recorder.result(round_index, True, "terminal")
        chosen = scheduler.checked_select(round_index, [robot.rid for robot, _ in enabled])
        by_rid = {robot.rid: (robot, matches) for robot, matches in enabled}
        # Preserve the scheduler's activation order exactly (it fixes the
        # order in which tie-break randomness is consumed and events land).
        _synchronous_round(
            algorithm, recorder, [by_rid[rid] for rid in chosen], round_index, tie_break, rng
        )
    terminated = not _round_matches(matcher, world)
    reason = "terminal" if terminated else "max_steps"
    return recorder.result(budget, terminated, reason)


# ---------------------------------------------------------------------------
# Asynchronous engine
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class _AsyncRobotState:
    """Per-robot cycle state in the ASYNC engine."""

    phase: str = "idle"  # "idle" -> "looked" -> "computed" -> "idle"
    snapshot: Optional[Snapshot] = None
    pending: Optional[Action] = None
    pending_rule: Optional[str] = None
    pending_symmetry: Optional[str] = None


def run_async(
    algorithm: Algorithm,
    grid: Grid,
    scheduler: Optional[AsyncScheduler] = None,
    max_steps: Optional[int] = None,
    tie_break: str = TieBreak.FIRST,
    seed: int = 0,
    record_trace: bool = True,
    matcher: Optional[LocalMatcher] = None,
) -> ExecutionResult:
    """Simulate the algorithm under an asynchronous scheduler.

    The engine exposes three scheduler-visible atomic steps per cycle:

    * ``look`` — the robot snapshots its radius-``phi`` neighbourhood;
    * ``compute`` — the robot evaluates its rules *against the stored
      snapshot* and, if a rule matches, immediately changes its light (the
      change is visible to subsequent Looks of other robots) and records
      the pending movement;
    * ``move`` — the robot performs the recorded movement.

    A robot that is not enabled at Look time is not offered a Look step:
    its whole cycle would be a no-op and skipping it does not change the
    set of reachable configurations (it only avoids unbounded stuttering in
    bounded simulations).
    """
    TieBreak.validate(tie_break)
    rng = random.Random(seed)
    scheduler = scheduler if scheduler is not None else RandomAsync(seed=seed)
    matcher = matcher if matcher is not None else LocalMatcher(algorithm, grid)
    world = algorithm.initial_world(grid)
    recorder = _Recorder(algorithm, world, "ASYNC", record_trace, seed=seed, tie_break=tie_break)
    budget = max_steps if max_steps is not None else default_step_budget(grid, algorithm.k, "ASYNC")

    states: Dict[int, _AsyncRobotState] = {robot.rid: _AsyncRobotState() for robot in world.robots}

    for step_index in range(budget):
        candidates: List[Tuple[int, str]] = []
        for robot in world.robots:
            state = states[robot.rid]
            if state.phase == "looked":
                candidates.append((robot.rid, "compute"))
            elif state.phase == "computed":
                candidates.append((robot.rid, "move"))
            elif matcher.enabled(world.robots, robot.pos, robot.color):
                candidates.append((robot.rid, "look"))
        if not candidates:
            return recorder.result(step_index, True, "terminal")

        rid, phase = scheduler.checked_choose(step_index, candidates)
        robot = world.robot(rid)
        state = states[rid]

        if phase == "look":
            state.snapshot = matcher.snapshot(world.robots, robot.pos)
            state.phase = "looked"
            recorder.events.append(
                Event(
                    time=step_index,
                    rid=rid,
                    phase="look",
                    rule=None,
                    symmetry=None,
                    old_pos=robot.pos,
                    new_pos=robot.pos,
                    old_color=robot.color,
                    new_color=robot.color,
                )
            )
        elif phase == "compute":
            assert state.snapshot is not None
            matches = matcher.matches_for_snapshot(state.snapshot, robot.color)
            if not matches:
                state.phase = "idle"
                state.snapshot = None
            else:
                match = _resolve(algorithm, matches, tie_break, rng)
                world.set_color(rid, match.action.new_color)
                state.pending = match.action
                state.pending_rule = match.rule.name
                state.pending_symmetry = match.symmetry.name
                state.phase = "computed"
                recorder.events.append(
                    Event(
                        time=step_index,
                        rid=rid,
                        phase="compute",
                        rule=match.rule.name,
                        symmetry=match.symmetry.name,
                        old_pos=robot.pos,
                        new_pos=robot.pos,
                        old_color=robot.color,
                        new_color=match.action.new_color,
                    )
                )
                recorder.snapshot_config()
        elif phase == "move":
            assert state.pending is not None
            new_pos = world.move(rid, state.pending.world_move)
            recorder.events.append(
                Event(
                    time=step_index,
                    rid=rid,
                    phase="move",
                    rule=state.pending_rule,
                    symmetry=state.pending_symmetry,
                    old_pos=robot.pos,
                    new_pos=new_pos,
                    old_color=robot.color,
                    new_color=robot.color,
                )
            )
            state.phase = "idle"
            state.snapshot = None
            state.pending = None
            state.pending_rule = None
            state.pending_symmetry = None
            _visit(recorder.visited, world)
            recorder.snapshot_config()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown ASYNC phase {phase!r}")

    # Budget exhausted: terminal only if every robot is idle and disabled.
    all_idle = all(state.phase == "idle" for state in states.values())
    terminated = all_idle and not _enabled_robots(matcher, world)
    reason = "terminal" if terminated else "max_steps"
    return recorder.result(budget, terminated, reason)


def run(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    **kwargs,
) -> ExecutionResult:
    """Dispatch to the engine for ``model`` (``"FSYNC"``, ``"SSYNC"`` or ``"ASYNC"``)."""
    if model == "FSYNC":
        return run_fsync(algorithm, grid, **kwargs)
    if model == "SSYNC":
        return run_ssync(algorithm, grid, **kwargs)
    if model == "ASYNC":
        return run_async(algorithm, grid, **kwargs)
    raise SimulationError(f"unknown synchrony model {model!r}")
