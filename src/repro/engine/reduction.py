"""Composable state-space reduction: grid symmetry x color symmetry x POR.

Before this module, "reduction" was a single hard-wired boolean
(``symmetry_reduction=``) that quotiented the exploration by grid
automorphisms only.  This module turns reduction into a first-class,
composable subsystem: a :class:`ReductionPipeline` built from pluggable
components, selected by a spec string threaded through every exploration
entry point (``explore``, ``explore_sharded``, ``ExplorationPool.explore``,
the three ``repro.checking`` entry points, campaigns and the scaling
sweeps)::

    reduction="grid"            # the old symmetry_reduction=True
    reduction="grid+color"      # + color-permutation symmetry
    reduction="grid+color+por"  # + ASYNC partial-order reduction
    reduction="none"            # the unreduced explorer

The three components, and why each preserves verdicts exactly:

**Grid-automorphism quotient** (``"grid"``) — the reduction previously
baked into the explorer, refactored into a component.  Guards match modulo
the robots' view symmetries, so the global dynamics commute with every grid
automorphism whose linear part is an allowed view symmetry; orbit members
generate isomorphic sub-state-spaces and one representative suffices.  See
:mod:`repro.engine.symmetry` for the full argument.

**Color-permutation symmetry** (``"color"``) — new.  A permutation ``pi``
of the algorithm's palette under which the *rule set* is invariant (every
rule maps to a rule of the set when ``pi`` is applied to its self color,
its new color and every color multiset in its guard) commutes with the
dynamics for exactly the same reason a grid automorphism does: snapshots of
``pi(s)`` are ``pi`` images of snapshots of ``s``, so matches — and hence
successors — correspond one-to-one (``succ(pi(s)) = pi(succ(s))``).
:func:`detect_color_permutations` finds the full stabilizer subgroup by
testing every palette permutation (``ell! <= 6`` for the paper's
``ell <= 3``) against a semantic canonical form of the rules; invariant
permutations automatically form a group.  The detected group composes with
the grid group as a *product action* (the two actions commute: one moves
positions, the other recolors lights), and canonicalization scans the
product orbit, returning the witnessing inverse for coverage accounting
exactly as the grid quotient does.

**ASYNC partial-order reduction** (``"por"``) — new, ample-set style.  The
ASYNC kernel exposes three atomic steps per robot per cycle, and the
interleavings of those micro-steps are the dominant blow-up.  At a state
where some robot has a pending *private* step — a step that reads and
writes only the robot's own phase-local fields, never its observable
position or color — the component expands only that robot's single
transition (the ample set) and defers every other robot.  Exactly two step
shapes qualify:

* a ``looked`` robot whose stored snapshot matches no rule (its Compute
  resets it to idle, changing nothing any other robot can observe), and
* a ``computed`` robot with no pending move (its Move only clears the
  phase bookkeeping; the color became visible at Compute time and the
  position does not change).

Both are deterministic, invisible to the checked properties (they change
no node occupancy) and *globally independent*: rule matching reads only
the positions and colors of other robots (:meth:`LocalMatcher.local_key`),
and these steps touch neither, so they commute with every transition of
every other robot and can neither disable one nor be disabled.  That makes
the singleton ample set satisfy the standard conditions C0-C2.  The cycle
proviso (C3) holds *by construction*: every ample step strictly decreases
the total phase measure (``idle=0 < looked=1 < computed=2`` summed over
robots), no other transition is offered at an ample state, and the measure
is bounded below — so no cycle lies entirely inside ample states and no
run can defer the other robots' transitions forever (after at most ``2k``
consecutive ample steps a fully expanded state is reached).  Termination
verdicts transfer in both directions (the reduced graph is an edge-subgraph
of the full one, and every full infinite run maps to a reduced one);
coverage verdicts transfer because ample steps move no robot, so every
full execution has a reduced representative with the identical Move
sequence and therefore the identical visited-node set.

The pipeline composes soundly: POR is applied to the representative
dynamics of the quotient (eligibility of a private step is invariant under
both group actions, since phases, pending moves and "no rule matches" are
preserved by them), so the composite graph is a POR of the quotient system
— two verdict-preserving reductions stacked.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, List, Optional, Protocol, Tuple, Union

from ..core.algorithm import Algorithm
from ..core.grid import Grid, Node
from ..core.rules import CellKind
from ..core.views import ball_offsets
from .states import AsyncRobotState, SchedulerState
from .symmetry import (
    GridSymmetry,
    canonicalize as grid_canonicalize,
    grid_symmetries,
    transform_state,
)

__all__ = [
    "REDUCTION_COMPONENTS",
    "ColorPermutation",
    "ProductWitness",
    "Reduction",
    "ReductionPipeline",
    "apriori_reduction_factor",
    "detect_color_permutations",
    "normalize_reduction",
    "resolve_reduction",
    "transform_state_colors",
]

#: The pluggable components, in canonical spec order.
REDUCTION_COMPONENTS = ("grid", "color", "por")

#: What callers may pass as ``reduction=``: a spec string (``"grid"``,
#: ``"grid+color+por"``, ...), an already-built pipeline, or ``None`` (fall
#: back to the deprecated ``symmetry_reduction`` boolean).
ReductionSpec = Union[str, "ReductionPipeline", None]


class Reduction(Protocol):
    """What the pipeline needs from a pluggable reduction component.

    A component is *bound* to one ``(algorithm, grid, model)`` triple.  It
    may act as a quotient (``canonicalize`` maps a state to its orbit
    representative plus the witnessing inverse) and/or as a successor
    filter (``successors`` returns the ample subset, or ``None`` to decline
    and let the full expansion run).  ``active`` reports whether the
    component can do anything at all for its binding; inactive components
    drop out of the pipeline's ``active_spec``.
    """

    name: str

    @property
    def active(self) -> bool: ...


# ---------------------------------------------------------------------------
# Color permutations
# ---------------------------------------------------------------------------
class ColorPermutation:
    """A permutation of an algorithm's palette, acting on states by recoloring.

    Normalized at construction to a sorted-domain representation, so two
    permutations with the same *mapping* compare (and hash, and serialize)
    equal regardless of the domain order they were built from — an inverse
    built from a permuted domain is indistinguishable from the same mapping
    built from the palette directly.
    """

    __slots__ = ("domain", "image", "_map")

    def __init__(self, domain: Tuple[str, ...], image: Tuple[str, ...]) -> None:
        if sorted(domain) != sorted(image):
            raise ValueError(f"{image!r} is not a permutation of {domain!r}")
        pairs = tuple(sorted(zip(domain, image)))
        self.domain = tuple(color for color, _ in pairs)
        self.image = tuple(color for _, color in pairs)
        self._map = dict(pairs)

    @property
    def is_identity(self) -> bool:
        return self.domain == self.image

    @property
    def name(self) -> str:
        if self.is_identity:
            return "id"
        return ",".join(f"{a}->{b}" for a, b in zip(self.domain, self.image) if a != b)

    def color(self, color: str) -> str:
        """The image of one color (colors outside the domain pass through)."""
        return self._map.get(color, color)

    def inverse(self) -> "ColorPermutation":
        return ColorPermutation(self.image, self.domain)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColorPermutation)
            and self.domain == other.domain
            and self.image == other.image
        )

    def __hash__(self) -> int:
        return hash((self.domain, self.image))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColorPermutation({self.name})"


def transform_state_colors(state: SchedulerState, perm: ColorPermutation) -> SchedulerState:
    """The image of a canonical scheduler state under a color permutation.

    Colors, pending colors and the color multisets inside stored ASYNC
    snapshots map through the permutation; positions, phases and pending
    moves are invariant.  (Snapshot cells keep their offset order: offsets
    are unique within a snapshot, so recoloring cannot reorder the tuple.)
    """
    records = []
    for record in state.robots:
        snapshot = record.snapshot
        if snapshot is not None:
            snapshot = tuple(
                (
                    offset,
                    content
                    if content is None
                    else tuple(sorted(perm.color(color) for color in content)),
                )
                for offset, content in snapshot
            )
        records.append(
            AsyncRobotState(
                pos=record.pos,
                color=perm.color(record.color),
                phase=record.phase,
                snapshot=snapshot,
                pending_color=(
                    perm.color(record.pending_color)
                    if record.pending_color
                    else record.pending_color
                ),
                pending_move=record.pending_move,
            )
        )
    return SchedulerState.from_records(records)


def _semantic_rules(algorithm: Algorithm, perm: ColorPermutation) -> frozenset:
    """The rule set as a name-free semantic canonical form, recolored by ``perm``.

    Two rule sets with equal canonical forms have identical matching
    behaviour: every guard cell is expanded (defaults included, the centre
    through :meth:`Rule.center_spec`), multisets are re-sorted after
    recoloring, and rule names are dropped.
    """
    forms = []
    for rule in algorithm.rules:
        cells = []
        for offset in ball_offsets(rule.phi):
            spec = rule.center_spec() if offset == (0, 0) else rule.guard.spec_at(offset)
            colors = (
                tuple(sorted(perm.color(color) for color in spec.colors))
                if spec.kind is CellKind.OCCUPIED
                else ()
            )
            cells.append((offset, spec.kind.value, colors))
        forms.append(
            (
                perm.color(rule.self_color),
                perm.color(rule.new_color),
                rule.move,
                tuple(cells),
            )
        )
    return frozenset(forms)


@lru_cache(maxsize=256)
def detect_color_permutations(algorithm: Algorithm) -> Tuple[ColorPermutation, ...]:
    """The palette permutations under which the rule set is invariant.

    Always contains the identity first.  Invariance is decided on the
    semantic canonical form of the rules (guards expanded cell by cell, so
    equivalent declarations compare equal), and the invariant permutations
    form a group automatically — the stabilizer of the rule set inside the
    symmetric group of the palette.  Memoized per algorithm: the scan is
    ``ell! * |rules|`` work and every exploration of the same algorithm
    asks for the same answer.
    """
    colors = algorithm.colors
    identity = ColorPermutation(colors, colors)
    result = [identity]
    if len(colors) > 1:
        base = _semantic_rules(algorithm, identity)
        for image in permutations(colors):
            if image == colors:
                continue
            candidate = ColorPermutation(colors, image)
            if _semantic_rules(algorithm, candidate) == base:
                result.append(candidate)
    return tuple(result)


# ---------------------------------------------------------------------------
# Witnesses
# ---------------------------------------------------------------------------
class ProductWitness:
    """A product-group witness ``h`` with ``raw = h(rep)``.

    The grid part moves nodes, the color part recolors lights; the two
    actions commute, so application order is irrelevant.  Only the grid
    part matters for coverage accounting (``node``): guaranteed-node sets
    contain positions, which a recoloring leaves untouched.  Either part
    may be ``None`` (identity).
    """

    __slots__ = ("grid", "color")

    def __init__(
        self, grid: Optional[GridSymmetry], color: Optional[ColorPermutation]
    ) -> None:
        self.grid = grid
        self.color = color

    def node(self, node: Node) -> Node:
        """The image of a grid node (the coverage-fixpoint hook)."""
        return self.grid.node(node) if self.grid is not None else node

    def apply(self, state: SchedulerState) -> SchedulerState:
        """The image of a state (testing/debugging aid)."""
        if self.color is not None:
            state = transform_state_colors(state, self.color)
        if self.grid is not None:
            state = transform_state(state, self.grid)
        return state

    @property
    def name(self) -> str:
        grid = self.grid.name if self.grid is not None else "id"
        color = self.color.name if self.color is not None else "id"
        return f"{grid}|{color}"

    def _key(self):
        return (
            (self.grid.name, self.grid.m, self.grid.n) if self.grid is not None else None,
            (self.color.domain, self.color.image) if self.color is not None else None,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProductWitness) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProductWitness({self.name})"


#: The picklable wire form of a witness (the sharded explorer ships these):
#: ``None`` for the identity, a plain string for a pure grid symmetry (the
#: pre-pipeline format, kept so grid-only runs stay byte-compatible) or a
#: ``(grid name | None, color image | None)`` pair for product witnesses.
WitnessToken = Union[None, str, Tuple[Optional[str], Optional[Tuple[str, ...]]]]


# ---------------------------------------------------------------------------
# Spec handling
# ---------------------------------------------------------------------------
def normalize_reduction(
    reduction: ReductionSpec, symmetry_reduction: bool = False
) -> str:
    """Normalize a ``reduction=`` argument to a canonical spec string.

    ``None`` falls back to the deprecated ``symmetry_reduction`` boolean
    (``True`` is an alias for ``"grid"``).  Component names may come in any
    order and are emitted in canonical order (``grid+color+por``).
    """
    if reduction is None:
        return "grid" if symmetry_reduction else "none"
    if isinstance(reduction, ReductionPipeline):
        return reduction.spec
    if not isinstance(reduction, str):
        raise TypeError(
            f"reduction must be a spec string, a ReductionPipeline or None, got {reduction!r}"
        )
    parts = [part.strip().lower() for part in reduction.split("+")]
    parts = [part for part in parts if part]
    if not parts or parts == ["none"]:
        return "none"
    chosen = set()
    for part in parts:
        if part not in REDUCTION_COMPONENTS:
            raise ValueError(
                f"unknown reduction component {part!r}; expected a '+'-combination"
                f" of {REDUCTION_COMPONENTS} or 'none'"
            )
        chosen.add(part)
    return "+".join(name for name in REDUCTION_COMPONENTS if name in chosen)


def apriori_reduction_factor(
    algorithm: Algorithm, grid: Grid, model: str, reduction: ReductionSpec
) -> int:
    """The a-priori state-count reduction factor of a spec.

    The product of the group orders the quotient components divide by —
    ``|grid group| * |detected color group|`` — used by
    :func:`repro.engine.pool.estimate_states` to scale routing estimates
    before comparing against the serial threshold.  POR has no a-priori
    factor (its pruning depends on reachable phase overlaps).
    """
    spec = normalize_reduction(reduction)
    if spec == "none":
        return 1
    parts = spec.split("+")
    factor = 1
    if "grid" in parts:
        factor *= max(1, len(grid_symmetries(grid, algorithm.chirality)))
    if "color" in parts:
        factor *= max(1, len(detect_color_permutations(algorithm)))
    return factor


# ---------------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------------
class GridSymmetryReduction:
    """The grid-automorphism quotient as a pipeline component."""

    name = "grid"

    def __init__(self, algorithm: Algorithm, grid: Grid) -> None:
        self.symmetries = grid_symmetries(grid, algorithm.chirality)

    @property
    def active(self) -> bool:
        return len(self.symmetries) > 1


class ColorSymmetryReduction:
    """The detected color-permutation quotient as a pipeline component."""

    name = "color"

    def __init__(self, algorithm: Algorithm) -> None:
        self.permutations = detect_color_permutations(algorithm)

    @property
    def active(self) -> bool:
        return len(self.permutations) > 1


class AsyncPartialOrderReduction:
    """Ample-set partial-order reduction for the ASYNC micro-step kernel.

    See the module docstring for the soundness argument.  The component is
    inert outside ASYNC (the synchronous models have no micro-step
    interleavings to prune).
    """

    name = "por"

    def __init__(self, model: str) -> None:
        self.model = model

    @property
    def active(self) -> bool:
        return self.model == "ASYNC"

    def ample_successors(
        self, ts, state: SchedulerState, counters: Dict[str, int]
    ) -> Optional[List[SchedulerState]]:
        """The singleton ample expansion of ``state``, or ``None`` to decline.

        Scans the (canonically ordered) records for the first robot with a
        pending private step and returns exactly the successor the kernel
        would produce for that step; the representative choice is a
        deterministic function of the canonical state, so serial, sharded
        and pooled explorations agree.
        """
        records = state.robots
        matcher = ts.matcher
        algorithm = ts.algorithm
        for index, record in enumerate(records):
            if record.phase == "computed":
                if record.pending_move is not None:
                    continue
            elif record.phase == "looked":
                matches = matcher.matches_for_frozen(record.snapshot, record.color)
                if algorithm.distinct_actions(matches):
                    continue
            else:
                continue
            # ``record`` holds a private step: finalize it and defer the rest.
            updated = list(records)
            updated[index] = AsyncRobotState(pos=record.pos, color=record.color)
            counters["por_ample_states"] += 1
            deferred = 0
            for i, other in enumerate(records):
                if i == index:
                    continue
                if other.phase != "idle":
                    deferred += 1
                elif matcher.matches(records, other.pos, other.color):
                    # An enabled idle robot's Look was deferred too (the
                    # matches are memoized, so this accounting costs at most
                    # what the full expansion would have paid anyway).
                    deferred += 1
            counters["por_interleavings_pruned"] += deferred
            return [SchedulerState.from_records(updated)]
        return None


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
class ReductionPipeline:
    """A composition of reduction components bound to one exploration context.

    Built from a spec string via :func:`resolve_reduction` (or directly);
    pass an instance as ``reduction=`` to reuse the detected groups across
    explorations of the same ``(algorithm, grid, model)`` triple.  The
    explorer drives it through two hooks:

    * :meth:`successors` — the (possibly POR-pruned) expansion of a state;
    * :meth:`canonicalize` — the orbit representative under the product of
      the active quotient groups, plus the witnessing inverse.

    ``counters`` accumulates per-component reduction statistics (orbit
    collapses, ample states, interleavings pruned); they are deterministic
    for a given exploration, identical across the serial, sharded and
    pooled routes, and surfaced as ``Exploration.reduction_stats``.
    """

    def __init__(self, algorithm: Algorithm, grid: Grid, model: str, spec: str = "none") -> None:
        self.algorithm = algorithm
        self.grid = grid
        self.model = model
        self.spec = normalize_reduction(spec)
        parts = () if self.spec == "none" else tuple(self.spec.split("+"))

        self._grid = GridSymmetryReduction(algorithm, grid) if "grid" in parts else None
        self._color = ColorSymmetryReduction(algorithm) if "color" in parts else None
        self._por = AsyncPartialOrderReduction(model) if "por" in parts else None

        self.components: Tuple[Reduction, ...] = tuple(
            component for component in (self._grid, self._color, self._por) if component is not None
        )
        #: The components that can actually do work for this binding, in
        #: canonical order; ``"none"`` when every requested component is inert.
        self.active_spec = (
            "+".join(component.name for component in self.components if component.active) or "none"
        )
        #: Whether a quotient (grid and/or color) is active — the meaning the
        #: pre-pipeline ``Exploration.reduced`` flag always had.
        self.reduced = bool(
            (self._grid is not None and self._grid.active)
            or (self._color is not None and self._color.active)
        )
        self.counters: Dict[str, int] = {
            "grid_orbit_collapses": 0,
            "color_orbit_collapses": 0,
            "por_ample_states": 0,
            "por_interleavings_pruned": 0,
        }
        self._witnesses: Dict[WitnessToken, ProductWitness] = {}
        self._grid_by_name: Dict[str, GridSymmetry] = {}
        if self._grid is not None:
            # canonicalize labels edges with ``best.inverse()``; inverses are
            # cached on the memoized group elements, so resolving names below
            # reproduces the serial explorer's very instances.
            self._grid_by_name = {
                gs.inverse().name: gs.inverse()
                for gs in self._grid.symmetries
                if not gs.is_identity
            }

    # ------------------------------------------------------------------
    # Expansion (POR hook)
    # ------------------------------------------------------------------
    def successors(self, ts, state: SchedulerState) -> List[SchedulerState]:
        """Expand ``state`` through the pipeline's successor filter."""
        if self._por is not None and self._por.active:
            ample = self._por.ample_successors(ts, state, self.counters)
            if ample is not None:
                return ample
        return ts.successors(state)

    # ------------------------------------------------------------------
    # Canonicalization (quotient hook)
    # ------------------------------------------------------------------
    def canonicalize(self, state: SchedulerState):
        """The orbit representative of ``state`` and the witness undoing it.

        Returns ``(rep, h)`` with ``state = h(rep)`` (``h`` is ``None`` for
        the identity).  With only the grid quotient active the witness is
        the plain :class:`GridSymmetry` the pre-pipeline explorer attached —
        grid-only runs stay byte-identical.  With the color quotient active
        the scan covers the product orbit and the witness is a
        :class:`ProductWitness`.
        """
        if not self.reduced:
            return state, None
        color_active = self._color is not None and self._color.active
        if not color_active:
            assert self._grid is not None
            rep, h = grid_canonicalize(state, self._grid.symmetries)
            if h is not None:
                self.counters["grid_orbit_collapses"] += 1
            return rep, h

        grid_elements: Tuple[Optional[GridSymmetry], ...]
        if self._grid is not None and self._grid.active:
            grid_elements = self._grid.symmetries
        else:
            grid_elements = (None,)
        best = state
        best_key = state.sort_key()
        best_grid: Optional[GridSymmetry] = None
        best_color: Optional[ColorPermutation] = None
        for perm in self._color.permutations:
            recolored = state if perm.is_identity else transform_state_colors(state, perm)
            for gs in grid_elements:
                if gs is None or gs.is_identity:
                    if perm.is_identity:
                        continue  # the identity pair is ``state`` itself
                    candidate = recolored
                else:
                    candidate = transform_state(recolored, gs)
                key = candidate.sort_key()
                if key < best_key:
                    best = candidate
                    best_key = key
                    best_grid = None if gs is None or gs.is_identity else gs
                    best_color = None if perm.is_identity else perm
        if best_grid is None and best_color is None:
            return best, None
        if best_grid is not None:
            self.counters["grid_orbit_collapses"] += 1
        if best_color is not None:
            self.counters["color_orbit_collapses"] += 1
        grid_inverse = best_grid.inverse() if best_grid is not None else None
        color_inverse = best_color.inverse() if best_color is not None else None
        token: WitnessToken = (
            grid_inverse.name if grid_inverse is not None else None,
            color_inverse.image if color_inverse is not None else None,
        )
        witness = self._witnesses.get(token)
        if witness is None:
            witness = ProductWitness(grid_inverse, color_inverse)
            self._witnesses[token] = witness
        return best, witness

    # ------------------------------------------------------------------
    # Wire format (the sharded explorer ships witnesses as tokens)
    # ------------------------------------------------------------------
    def witness_token(self, witness) -> WitnessToken:
        """The picklable token of a witness returned by :meth:`canonicalize`."""
        if witness is None:
            return None
        if isinstance(witness, GridSymmetry):
            return witness.name
        return (
            witness.grid.name if witness.grid is not None else None,
            witness.color.image if witness.color is not None else None,
        )

    def witness_from_token(self, token: WitnessToken):
        """Resolve a shipped token back to the witness instance.

        Pure grid tokens resolve to the same cached :class:`GridSymmetry`
        instances the serial explorer labels edges with; product tokens
        resolve to interned :class:`ProductWitness` instances (content
        equality, shared within one exploration).
        """
        if token is None:
            return None
        if isinstance(token, str):
            return self._grid_by_name[token]
        witness = self._witnesses.get(token)
        if witness is None:
            grid_name, color_image = token
            grid_part = self._grid_by_name[grid_name] if grid_name is not None else None
            color_part = (
                # ColorPermutation normalizes to a sorted domain, so the
                # shipped image is relative to the sorted palette.
                ColorPermutation(tuple(sorted(self.algorithm.colors)), color_image)
                if color_image is not None
                else None
            )
            witness = ProductWitness(grid_part, color_part)
            self._witnesses[token] = witness
        return witness

    # ------------------------------------------------------------------
    # Budget messages, statistics, routing
    # ------------------------------------------------------------------
    @property
    def budget_note(self) -> str:
        """The suffix :class:`StateSpaceLimitExceeded` messages carry.

        ``"grid"`` keeps the pre-pipeline wording (``symmetry reduction
        on``) so existing tooling that greps budget-trip messages keeps
        working; richer specs name the active components.
        """
        if self.active_spec == "none":
            return ""
        if self.active_spec == "grid":
            return ", symmetry reduction on"
        return f", reduction {self.active_spec} on"

    def apriori_factor(self) -> int:
        """``|grid group| * |color group|`` over the *active* quotients."""
        factor = 1
        if self._grid is not None and self._grid.active:
            factor *= len(self._grid.symmetries)
        if self._color is not None and self._color.active:
            factor *= len(self._color.permutations)
        return factor

    def counters_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)

    def counters_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        return {key: value - before.get(key, 0) for key, value in self.counters.items()}

    def merge_counters(self, delta: Dict[str, int]) -> None:
        for key, value in delta.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def stats_report(
        self, counters: Optional[Dict[str, int]] = None
    ) -> Optional[Dict[str, Dict[str, float]]]:
        """Per-component reduction statistics for one exploration.

        ``None`` when no component is active (mirrors ``matcher_stats``
        being ``None`` without a matcher).  Otherwise one entry per active
        component — orbit collapses for the quotients, ample states and
        pruned interleavings for POR.
        """
        if self.active_spec == "none":
            return None
        counters = counters if counters is not None else self.counters
        report: Dict[str, Dict[str, float]] = {}
        if self._grid is not None and self._grid.active:
            report["grid"] = {
                "group_order": len(self._grid.symmetries),
                "orbit_collapses": counters.get("grid_orbit_collapses", 0),
            }
        if self._color is not None and self._color.active:
            report["color"] = {
                "group_order": len(self._color.permutations),
                "orbit_collapses": counters.get("color_orbit_collapses", 0),
            }
        if self._por is not None and self._por.active:
            report["por"] = {
                "ample_states": counters.get("por_ample_states", 0),
                "interleavings_pruned": counters.get("por_interleavings_pruned", 0),
            }
        return report


def resolve_reduction(
    reduction: ReductionSpec,
    symmetry_reduction: bool,
    algorithm: Algorithm,
    grid: Grid,
    model: str,
) -> ReductionPipeline:
    """The bound pipeline for a ``reduction=``/``symmetry_reduction=`` pair.

    A caller-supplied :class:`ReductionPipeline` is reused when its binding
    matches (so detected groups and interned witnesses carry over) and
    transparently rebuilt from its spec when it does not.
    """
    if isinstance(reduction, ReductionPipeline):
        if (
            reduction.algorithm is algorithm
            and reduction.grid.m == grid.m
            and reduction.grid.n == grid.n
            and reduction.model == model
        ):
            return reduction
        return ReductionPipeline(algorithm, grid, model, spec=reduction.spec)
    return ReductionPipeline(
        algorithm, grid, model, spec=normalize_reduction(reduction, symmetry_reduction)
    )
