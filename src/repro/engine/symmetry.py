"""Grid-symmetry reduction for the state-space explorer.

The paper's guards match a snapshot under every view symmetry the robots
cannot distinguish: the four rotations with a common chirality, the full
dihedral group D4 without one (:func:`repro.core.views.symmetries_for`).
A direct consequence is that the *global* dynamics commute with every grid
automorphism whose linear part lies in that group: if ``g`` maps the grid
onto itself and ``s'`` is a successor of ``s``, then ``g(s')`` is a
successor of ``g(s)``.  Two states in the same orbit therefore generate
isomorphic sub-state-spaces and only one representative needs exploring —
the classic symmetry-reduction trick of explicit-state model checkers.

Soundness of the restriction to ``symmetries_for(chirality)``: with a
common chirality, rule matching only quantifies over rotations, so a
*reflected* configuration may behave differently — reflections are only
folded in for chirality-free algorithms, where matching already quantifies
over them.

An ``m x n`` grid admits the identity and the 180-degree rotation for any
shape, the axis flips when reflections are allowed, and the four diagonal
elements (rot90/rot270/transpose/antitranspose) only when ``m == n``.

Coverage accounting across collapsed edges needs the witnessing symmetry:
if a raw successor ``u`` canonicalises to representative ``r`` via
``r = g(u)``, then the set of nodes guaranteed to be visited from ``u`` is
``h(guaranteed(r))`` with ``h = g^-1``.  :func:`canonicalize` returns that
``h`` so the explorer can label the quotient edge with it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Tuple

from ..core.grid import Grid, Node
from ..core.views import ALL_SYMMETRIES, Symmetry, symmetries_for
from .states import AsyncRobotState, SchedulerState

__all__ = ["GridSymmetry", "grid_symmetries", "transform_state", "canonicalize"]


class GridSymmetry:
    """A symmetry of the ``m x n`` grid induced by a D4 element.

    The node action is ``v -> sigma(v) + t`` where ``t`` translates the
    image of the ``[0, m) x [0, n)`` rectangle back onto itself; offsets
    (relative moves, snapshot cells) transform by the linear part alone.
    """

    __slots__ = ("symmetry", "m", "n", "_ti", "_tj", "preserves_shape", "_inverse")

    def __init__(self, symmetry: Symmetry, m: int, n: int) -> None:
        self.symmetry = symmetry
        self.m = m
        self.n = n
        corners = ((0, 0), (m - 1, 0), (0, n - 1), (m - 1, n - 1))
        images = [symmetry.apply(corner) for corner in corners]
        min_i = min(i for i, _ in images)
        max_i = max(i for i, _ in images)
        min_j = min(j for _, j in images)
        max_j = max(j for _, j in images)
        self._ti = -min_i
        self._tj = -min_j
        self.preserves_shape = (max_i - min_i == m - 1) and (max_j - min_j == n - 1)

    @property
    def name(self) -> str:
        return self.symmetry.name

    @property
    def is_identity(self) -> bool:
        return self.symmetry.matrix() == ((1, 0), (0, 1))

    def node(self, node: Node) -> Node:
        """The image of a grid node."""
        i, j = self.symmetry.apply(node)
        return (i + self._ti, j + self._tj)

    def offset(self, offset: Tuple[int, int]) -> Tuple[int, int]:
        """The image of a relative offset (linear part only)."""
        return self.symmetry.apply(offset)

    def inverse(self) -> "GridSymmetry":
        """The inverse grid symmetry (D4 is a group, so it always exists).

        Cached on the instance: :func:`canonicalize` asks for the inverse of
        the winning symmetry on every call, and the D4 scan plus the
        :class:`GridSymmetry` construction are pure functions of ``self``.
        """
        try:
            return self._inverse
        except AttributeError:
            pass
        for candidate in ALL_SYMMETRIES:
            if (
                candidate.apply(self.symmetry.apply((1, 0))) == (1, 0)
                and candidate.apply(self.symmetry.apply((0, 1))) == (0, 1)
            ):
                self._inverse = GridSymmetry(candidate, self.m, self.n)
                return self._inverse
        raise AssertionError(f"no inverse for {self.name}")  # pragma: no cover

    def __eq__(self, other: object) -> bool:
        # Value equality on the defining triple: a GridSymmetry is a pure
        # function of (symmetry, m, n), and edge witnesses must compare
        # equal after a pickle round-trip through the verdict store.
        if not isinstance(other, GridSymmetry):
            return NotImplemented
        return (self.symmetry, self.m, self.n) == (other.symmetry, other.m, other.n)

    def __hash__(self) -> int:
        return hash((self.symmetry, self.m, self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GridSymmetry({self.name}, {self.m}x{self.n})"


@lru_cache(maxsize=256)
def _grid_symmetries_cached(m: int, n: int, chirality: bool) -> Tuple[GridSymmetry, ...]:
    result = []
    for symmetry in symmetries_for(chirality):
        candidate = GridSymmetry(symmetry, m, n)
        if candidate.preserves_shape:
            result.append(candidate)
    return tuple(result)


def grid_symmetries(grid: Grid, chirality: bool) -> Tuple[GridSymmetry, ...]:
    """The grid automorphisms usable for reduction, mindful of chirality.

    Always contains the identity first.  With ``chirality=True`` only the
    rotations are candidates; without it all eight D4 elements are.  The
    diagonal elements survive only on square grids.

    Memoized per ``(m, n, chirality)``: one exploration computes the group
    once (and :func:`canonicalize` reuses each element's cached inverse),
    instead of rebuilding the eight candidate symmetries per call site.
    """
    return _grid_symmetries_cached(grid.m, grid.n, chirality)


def transform_state(state: SchedulerState, gs: GridSymmetry) -> SchedulerState:
    """The image of a canonical scheduler state under a grid symmetry.

    Positions map through the node action; stored ASYNC snapshots and
    pending moves map through the linear part (a robot's local view rotates
    with the world around it); colors and phases are invariant.
    """
    records = []
    for record in state.robots:
        snapshot = record.snapshot
        if snapshot is not None:
            snapshot = tuple(sorted((gs.offset(offset), content) for offset, content in snapshot))
        pending_move = record.pending_move
        if pending_move is not None:
            pending_move = gs.offset(pending_move)
        records.append(
            AsyncRobotState(
                pos=gs.node(record.pos),
                color=record.color,
                phase=record.phase,
                snapshot=snapshot,
                pending_color=record.pending_color,
                pending_move=pending_move,
            )
        )
    return SchedulerState.from_records(records)


def canonicalize(
    state: SchedulerState, symmetries: Iterable[GridSymmetry]
) -> Tuple[SchedulerState, Optional[GridSymmetry]]:
    """The orbit representative of ``state`` and the symmetry that undoes it.

    Returns ``(rep, h)`` with ``state = h(rep)`` (``h`` is ``None`` when the
    state is its own representative under the identity).  The representative
    is the orbit member with the smallest :meth:`SchedulerState.sort_key`,
    which is injective, so every member of an orbit canonicalises to the
    same state regardless of enumeration order.
    """
    best = state
    best_key = state.sort_key()
    best_sym: Optional[GridSymmetry] = None
    for gs in symmetries:
        if gs.is_identity:
            continue
        candidate = transform_state(state, gs)
        key = candidate.sort_key()
        if key < best_key:
            best = candidate
            best_key = key
            best_sym = gs
    if best_sym is None:
        return best, None
    return best, best_sym.inverse()
