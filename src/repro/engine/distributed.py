"""Distributed campaign execution over TCP worker daemons.

This module extends the backend abstraction of :mod:`repro.engine.backend`
beyond one machine.  A :class:`DistributedBackend` is a coordinator: it
listens on a TCP port, accepts connections from worker daemons started as

.. code-block:: console

    python -m repro.engine.distributed worker --connect HOST:PORT --workers N

and feeds them the same two payload shapes every other backend evaluates —
:class:`~repro.engine.campaign.CampaignTask` work items and
``(ExploreKey, [states])`` exploration shards.  Workers rebuild transition
systems and reduction pipelines from the specs inside the payloads
(exactly like :data:`~repro.engine.pool.ExploreKey` rebuilding works for
pool workers today), evaluate them with the battle-tested worker functions
(:func:`~repro.engine.campaign.run_task`,
:func:`~repro.engine.pool.expand_shard`) against their process-persistent
:func:`~repro.engine.pool.process_cache`, and stream the results back.

Wire protocol
=============
Every message is a **length-prefixed pickle**: an 8-byte big-endian
unsigned length followed by that many bytes of
``pickle.dumps(obj, HIGHEST_PROTOCOL)``.  Messages are tuples tagged by
their first element:

==================================  =======================================
worker -> coordinator               coordinator -> worker
==================================  =======================================
``("hello", info_dict)``            ``("work", item_id, kind, payload)``
``("result", item_id, value)``      ``("shutdown",)``
``("error", item_id, traceback)``
==================================  =======================================

``kind`` is ``"task"`` (evaluate with ``run_task``) or ``"shard"``
(evaluate with ``expand_shard``).  Both the coordinator and the daemons
are expected to live inside one trust domain (pickle executes arbitrary
code by design — never expose the port to untrusted peers).

Scheduling, retries and determinism
===================================
The coordinator keeps one queue of outstanding items per job.  Each
connection is served by a thread that pulls an item, ships it, and blocks
for the reply — so a worker daemon started with ``--workers N`` (which
spawns N connections, each backed by its own OS process) pulls N items at
a time, and scheduling is naturally load-balanced: fast workers come back
for more.

Workers may join at any time (new connections start pulling from the
current queue) and die at any time: when a connection breaks with an item
in flight, the coordinator requeues that item for the next available
worker and drops the connection.  This is safe because both payload kinds
are **pure functions of their payload** — re-evaluating a task or a shard
on another worker yields the identical value, so at-least-once delivery
still produces exactly-once results.

Results are stored by item id and handed back in submission order, which
is the whole determinism story: the campaign engine's reports come back
in task order (identical to the serial engine's, because each report is a
pure function of its task), and the sharded explorer's rows come back in
shard order, after which the coordinator-side merge replays serial BFS
order exactly as it does for the in-process pool.  Which daemon evaluated
what, and in which order, is unobservable in the output.
"""

from __future__ import annotations

import argparse
import io
import os
import pickle
import socket
import struct
import sys
import threading
import time
import traceback
from collections import deque
from typing import List, Optional, Sequence, Tuple

from .campaign import CampaignTask, VerificationReport, run_task
from .pool import expand_shard

__all__ = [
    "DistributedBackend",
    "WorkerDaemon",
    "send_message",
    "recv_message",
    "run_worker",
    "main",
]

#: Frame header: 8-byte big-endian unsigned payload length.
_HEADER = struct.Struct("!Q")

#: Refuse to allocate buffers for frames beyond this size (a corrupted or
#: hostile header would otherwise ask for up to 2**64 bytes).
MAX_FRAME_BYTES = 1 << 32


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame(obj: object) -> bytes:
    """The wire form of one message: length header plus pickle body."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(body)) + body


def send_message(sock: socket.socket, obj: object) -> None:
    """Send one length-prefixed pickle frame."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise :class:`ConnectionError` on EOF."""
    buffer = io.BytesIO()
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        buffer.write(chunk)
        remaining -= len(chunk)
    return buffer.getvalue()


def recv_message(sock: socket.socket) -> object:
    """Receive one length-prefixed pickle frame (blocking)."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return pickle.loads(_recv_exact(sock, length))


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
class _Job:
    """One in-flight batch: payloads out, results (by item id) back in."""

    def __init__(self, kind: str, payloads: Sequence[object]) -> None:
        self.kind = kind
        self.payloads = list(payloads)
        self.results: List[object] = [None] * len(self.payloads)
        self.remaining = len(self.payloads)
        self.failure: Optional[str] = None
        #: Item ids whose first attempt died with its worker; kept for
        #: observability (tests assert the retry path actually ran).
        self.retried: List[int] = []


class DistributedBackend:
    """Coordinator end of the TCP worker protocol; an ``ExecutionBackend``.

    Binds ``host:port`` (``port=0`` picks an ephemeral port, published as
    :attr:`port`) and accepts worker-daemon connections in the background.
    ``min_workers`` is how many connections :meth:`run_tasks` /
    :meth:`map_shards` wait for before shipping work (daemons may be
    launched before or after the backend — workers retry connecting, the
    backend waits for registrations), and ``start_timeout`` bounds that
    wait plus any mid-job window in which every worker has died and no
    replacement joins.

    One job (one batch of tasks or one wave of shards) runs at a time;
    results return in submission order.  Items in flight on a connection
    that breaks are requeued for the remaining workers — see the module
    docstring for why retries cannot change results.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        min_workers: int = 1,
        start_timeout: float = 60.0,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        self.min_workers = min_workers
        self.start_timeout = start_timeout
        self._lock = threading.Condition()
        self._queue: deque = deque()  # (job, item_id) pairs
        self._job: Optional[_Job] = None
        self._closed = False
        self._live_workers = 0
        self._workers_ever = 0
        #: Items requeued after their worker connection died mid-flight
        #: (observability: the smoke/regression tests assert on it).
        self.retries_total = 0
        self._threads: List[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen()
            self.host, self.port = self._listener.getsockname()[:2]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="distributed-accept", daemon=True
            )
            self._accept_thread.start()
        except BaseException:
            # Partial construction must not leak the socket.
            self._listener.close()
            raise

    # -- introspection -------------------------------------------------
    @property
    def address(self) -> str:
        """The ``HOST:PORT`` string daemons should ``--connect`` to."""
        return f"{self.host}:{self.port}"

    @property
    def parallelism(self) -> int:
        """The backend's shard/fan-out width.

        At least ``min_workers`` even before any daemon has registered:
        consumers read this *before* the first job ships (the sharded
        explorer freezes its shard count up front, while the worker wait
        happens inside the first ``map_shards`` call), and partitioning
        for fewer shards than the promised workers would silently
        serialize the whole workload onto one connection.
        """
        with self._lock:
            return max(1, self.min_workers, self._live_workers)

    @property
    def workers_ever(self) -> int:
        """Total worker connections accepted over the backend's lifetime."""
        with self._lock:
            return self._workers_ever

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), name="distributed-serve", daemon=True
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            hello = recv_message(conn)
        except Exception:  # noqa: BLE001 - bad handshake, drop the connection
            conn.close()
            return
        if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
            conn.close()
            return
        with self._lock:
            if self._closed:
                conn.close()
                return
            self._live_workers += 1
            self._workers_ever += 1
            self._lock.notify_all()
        try:
            self._pull_loop(conn)
        finally:
            with self._lock:
                self._live_workers -= 1
                # Retired connections must not accumulate: a long-lived
                # coordinator sees arbitrarily many daemons come and go.
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:  # pragma: no cover - close() raced us
                    pass
                self._lock.notify_all()
            conn.close()

    def _pull_loop(self, conn: socket.socket) -> None:
        """Pull items for one connection until shutdown or connection death."""
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._lock.wait()
                if self._closed:
                    try:
                        send_message(conn, ("shutdown",))
                    except OSError:
                        pass
                    return
                job, item_id = self._queue.popleft()
            try:
                # Serialize before touching the socket: an unpicklable
                # payload is a deterministic caller error, and requeueing
                # it would just kill every worker in turn.
                frame = encode_frame(("work", item_id, job.kind, job.payloads[item_id]))
            except Exception:  # noqa: BLE001 - reported as the job's failure
                self._record_reply(
                    job,
                    item_id,
                    ("error", item_id, f"unpicklable payload:\n{traceback.format_exc()}"),
                )
                continue
            try:
                conn.sendall(frame)
                reply = recv_message(conn)
            except Exception:  # noqa: BLE001 - any transport/decode failure
                # The worker died — or sent something the coordinator
                # cannot deserialize (version skew raises AttributeError/
                # ImportError from pickle.loads, not just UnpicklingError).
                # Either way: hand the in-flight item to the surviving
                # workers and retire this connection, so the job can never
                # hang on an item nobody owns.  Items of a job that has
                # already been abandoned (failed and purged by _run_job)
                # are dropped instead — requeueing them would make the
                # *next* job's workers evaluate stale payloads.
                with self._lock:
                    if self._job is job:
                        job.retried.append(item_id)
                        self.retries_total += 1
                        self._queue.append((job, item_id))
                        self._lock.notify_all()
                return
            self._record_reply(job, item_id, reply)

    def _record_reply(self, job: _Job, item_id: int, reply: object) -> None:
        with self._lock:
            if not (isinstance(reply, tuple) and len(reply) == 3 and reply[1] == item_id):
                job.failure = f"malformed reply for item {item_id}: {reply!r}"
            elif reply[0] == "error":
                job.failure = f"worker failed on item {item_id}:\n{reply[2]}"
            elif reply[0] == "result":
                job.results[item_id] = reply[2]
            else:
                job.failure = f"unknown reply tag {reply[0]!r} for item {item_id}"
            job.remaining -= 1
            self._lock.notify_all()

    # -- job execution -------------------------------------------------
    def _wait_for_workers(self, deadline: float) -> None:
        with self._lock:
            while self._live_workers < self.min_workers:
                if self._closed:
                    raise RuntimeError("DistributedBackend is closed")
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    raise TimeoutError(
                        f"no {self.min_workers} worker daemon(s) connected to {self.address}"
                        f" within {self.start_timeout:.0f}s"
                        f" ({self._live_workers} currently connected)"
                    )
                self._lock.wait(timeout=timeout)

    def _run_job(self, kind: str, payloads: Sequence[object]) -> List[object]:
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        payloads = list(payloads)
        if not payloads:
            return []
        deadline = time.monotonic() + self.start_timeout
        self._wait_for_workers(deadline)
        job = _Job(kind, payloads)
        with self._lock:
            if self._job is not None:
                raise RuntimeError("DistributedBackend runs one job at a time")
            self._job = job
            self._queue.extend((job, item_id) for item_id in range(len(payloads)))
            self._lock.notify_all()
            try:
                while job.remaining and job.failure is None:
                    if self._closed:
                        raise RuntimeError("DistributedBackend closed mid-job")
                    if self._live_workers == 0:
                        # Every worker is gone with work outstanding; allow
                        # the (re)connect window before declaring failure.
                        if not self._lock.wait(timeout=self.start_timeout):
                            if self._live_workers == 0:
                                raise RuntimeError(
                                    f"all worker daemons disconnected from {self.address}"
                                    f" with {job.remaining} item(s) outstanding and none"
                                    f" rejoined within {self.start_timeout:.0f}s"
                                )
                    else:
                        self._lock.wait()
            finally:
                self._job = None
                # Drop any unshipped items of an abandoned job so the next
                # job's queue starts clean.
                self._queue = deque(entry for entry in self._queue if entry[0] is not job)
        if job.failure is not None:
            raise RuntimeError(f"distributed {kind} execution failed: {job.failure}")
        return job.results

    # -- ExecutionBackend ----------------------------------------------
    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        """Evaluate campaign tasks on the worker daemons, in task order."""
        return self._run_job("task", tasks)  # type: ignore[return-value]

    def map_shards(self, payloads: Sequence[object]) -> List[object]:
        """Expand one BFS wave's shards on the worker daemons, in order."""
        return self._run_job("shard", payloads)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop accepting, tell connected daemons to shut down, free the port."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        # Connection threads are daemonic and exit on the closed flag (or
        # their socket erroring); give them a moment so well-behaved
        # daemons receive their shutdown frame before we return.
        for thread in list(self._threads):
            thread.join(timeout=1.0)

    def __enter__(self) -> "DistributedBackend":
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker daemon
# ---------------------------------------------------------------------------
def _connect_with_retry(host: str, port: int, timeout: float) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` elapses.

    Daemons may legitimately start before the coordinator binds its port
    (CI launches them side by side), so refused connections retry on a
    short backoff instead of failing fast.
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def worker_connection_loop(host: str, port: int, *, connect_timeout: float = 60.0) -> int:
    """One worker connection: register, pull work, stream results back.

    Runs in its own process (one per ``--workers`` slot), so the matcher
    tables :func:`~repro.engine.pool.process_cache` accumulates survive
    across every task and shard this connection ever evaluates — the
    distributed analogue of a pool worker's cache persistence.  Returns
    the number of items evaluated (after an orderly shutdown frame).
    """
    sock = _connect_with_retry(host, port, connect_timeout)
    evaluated = 0
    try:
        send_message(sock, ("hello", {"pid": os.getpid(), "host": socket.gethostname()}))
        while True:
            try:
                message = recv_message(sock)
            except Exception:  # noqa: BLE001 - treat any decode failure as loss
                return evaluated  # coordinator went away; nothing to clean up
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "shutdown":
                return evaluated
            if message[0] != "work":
                continue
            _tag, item_id, kind, payload = message
            try:
                if kind == "task":
                    value = run_task(payload)
                elif kind == "shard":
                    value = expand_shard(payload)
                else:
                    raise ValueError(f"unknown work kind {kind!r}")
            except Exception:  # noqa: BLE001 - shipped back, not swallowed
                send_message(sock, ("error", item_id, traceback.format_exc()))
            else:
                send_message(sock, ("result", item_id, value))
                evaluated += 1
    finally:
        sock.close()


class WorkerDaemon:
    """N worker connections to one coordinator, each in its own process.

    The object the ``worker`` CLI subcommand drives, and the in-process
    handle tests and benchmarks use.  Spawning is all-or-nothing: if the
    ``i``-th worker process fails to start, the ``i-1`` already running are
    terminated and joined before the error propagates — a partially
    started daemon never leaks processes.
    """

    def __init__(self, host: str, port: int, workers: int = 1, *, connect_timeout: float = 60.0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.processes: list = []

    def start(self) -> "WorkerDaemon":
        import multiprocessing

        context = multiprocessing.get_context()
        try:
            for _ in range(self.workers):
                process = context.Process(
                    target=worker_connection_loop,
                    args=(self.host, self.port),
                    kwargs={"connect_timeout": self.connect_timeout},
                    daemon=True,
                )
                self.processes.append(process)
                process.start()
        except BaseException:
            self.terminate()
            raise
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the worker processes to exit (orderly shutdown)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for process in self.processes:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            process.join(remaining)

    def terminate(self) -> None:
        """Hard-stop every worker process that is still alive."""
        for process in self.processes:
            if process.pid is not None and process.is_alive():
                process.terminate()
        for process in self.processes:
            if process.pid is not None:
                process.join(timeout=5.0)
        self.processes = []

    @property
    def alive(self) -> int:
        return sum(1 for process in self.processes if process.is_alive())

    def __enter__(self) -> "WorkerDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()


def run_worker(host: str, port: int, workers: int = 1, *, connect_timeout: float = 60.0) -> int:
    """Blocking daemon entry point: serve until the coordinator shuts us down."""
    daemon = WorkerDaemon(host, port, workers, connect_timeout=connect_timeout)
    daemon.start()
    try:
        daemon.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        daemon.terminate()
        return 130
    finally:
        daemon.terminate()
    return 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _parse_endpoint(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _smoke(daemons: int, workers_per_daemon: int, verbose: bool) -> int:
    """The CI smoke check: distributed vs serial verdict parity.

    Starts a coordinator on an ephemeral port, launches ``daemons`` worker
    daemons through the real CLI (``python -m repro.engine.distributed
    worker --connect ...``, each its own OS process tree), runs a tiny
    exhaustive sweep through the :class:`DistributedBackend`, and compares
    the reports against the serial engine's.  Exits nonzero on any
    divergence — this is the job CI runs on every push.
    """
    import subprocess

    from ..algorithms import get
    from .campaign import ParallelCampaignEngine

    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(2, 3), (3, 3), (3, 4)]
    serial = ParallelCampaignEngine(workers=1).exhaustive_sweep(
        algorithm, sizes=sizes, model="FSYNC", reduction="grid"
    )
    with DistributedBackend(min_workers=daemons) as backend:
        command = [
            sys.executable,
            "-m",
            "repro.engine.distributed",
            "worker",
            "--connect",
            backend.address,
            "--workers",
            str(workers_per_daemon),
        ]
        print(f"coordinator listening on {backend.address}")
        print(f"launching {daemons} daemon(s): {' '.join(command)}")
        procs = [subprocess.Popen(command) for _ in range(daemons)]
        try:
            distributed = ParallelCampaignEngine(backend=backend).exhaustive_sweep(
                algorithm, sizes=sizes, model="FSYNC", reduction="grid"
            )
        finally:
            backend.close()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
    if verbose:
        for serial_report, dist_report in zip(serial.reports, distributed.reports):
            marker = "==" if serial_report == dist_report else "!!"
            print(f"  {marker} {dist_report}")
    if distributed.reports != serial.reports:
        print("FAIL: distributed reports diverged from the serial engine", file=sys.stderr)
        return 1
    print(
        f"OK: {len(distributed.reports)} exhaustive-check reports identical to the serial"
        f" engine across {backend.workers_ever} worker connection(s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.distributed",
        description="TCP worker daemons for distributed verification campaigns.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    worker = subcommands.add_parser("worker", help="serve a coordinator until shut down")
    worker.add_argument(
        "--connect",
        type=_parse_endpoint,
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint (DistributedBackend.address)",
    )
    worker.add_argument(
        "--workers", type=int, default=1, help="worker processes (connections) to run"
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        help="seconds to keep retrying the initial connection",
    )

    smoke = subcommands.add_parser(
        "smoke", help="launch local daemons and assert distributed == serial verdicts"
    )
    smoke.add_argument("--daemons", type=int, default=2, help="worker daemons to launch")
    smoke.add_argument("--workers", type=int, default=1, help="worker processes per daemon")
    smoke.add_argument("--verbose", action="store_true", help="print every report pair")

    args = parser.parse_args(argv)
    # Resolve entry points off the canonically imported module: under
    # ``python -m`` this file executes as ``__main__``, and spawned worker
    # processes must reference picklable, importable functions.
    from repro.engine import distributed as canonical

    if args.command == "worker":
        host, port = args.connect
        return canonical.run_worker(
            host, port, args.workers, connect_timeout=args.connect_timeout
        )
    return canonical._smoke(args.daemons, args.workers, args.verbose)


if __name__ == "__main__":
    raise SystemExit(main())
