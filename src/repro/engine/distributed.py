"""Distributed campaign execution over TCP worker daemons.

This module extends the backend abstraction of :mod:`repro.engine.backend`
beyond one machine.  A :class:`DistributedBackend` is a coordinator: it
listens on a TCP port, accepts connections from worker daemons started as

.. code-block:: console

    python -m repro.engine.distributed worker --connect HOST:PORT --workers N

and feeds them the same two payload shapes every other backend evaluates —
:class:`~repro.engine.campaign.CampaignTask` work items and
``(ExploreKey, [states])`` exploration shards.  Workers rebuild transition
systems and reduction pipelines from the specs inside the payloads
(exactly like :data:`~repro.engine.pool.ExploreKey` rebuilding works for
pool workers today), evaluate them with the battle-tested worker functions
(:func:`~repro.engine.campaign.run_task`,
:func:`~repro.engine.pool.expand_shard`) against their process-persistent
:func:`~repro.engine.pool.process_cache`, and stream the results back.

Wire protocol
=============
Every message is a **length-prefixed pickle**: an 8-byte big-endian
unsigned length followed by a one-byte encoding flag and the body —
``0x00`` for a raw ``pickle.dumps(obj, HIGHEST_PROTOCOL)``, ``0x01`` for
the same body zlib-compressed (bodies of ``COMPRESS_THRESHOLD`` bytes or
more, kept only when compression actually shrinks them).  Frames from
pre-compression peers — the bare pickle, no flag — still decode: a
protocol-2+ pickle always begins with ``0x80``, which collides with
neither flag.  Messages are tuples tagged by their first element:

=========================================  =======================================
worker -> coordinator                      coordinator -> worker
=========================================  =======================================
``("hello", info_dict)``                   ``("work", item_id, kind, payload)``
``("result", item_id, value)``             ``("shutdown",)``
``("error", item_id, traceback)``          ``("open", sid, key)``
``("heartbeat", item_id)``                 ``("wave", sid, wave, shard, entries)``
``("wave_result", sid, wave, shard,        ``("snapshot", sid, shard, table)``
rows, hm, red, watermark)``                ``("close", sid)``
=========================================  =======================================

``kind`` is ``"task"`` (evaluate with ``run_task``) or ``"shard"``
(evaluate with ``expand_shard``).  ``heartbeat`` frames are streamed while
a worker is evaluating a long item (every ``heartbeat_interval`` seconds),
so a coordinator running with a per-item deadline can tell *slow but
alive* from *wedged*.  Both the coordinator and the daemons are expected
to live inside one trust domain (pickle executes arbitrary code by design
— never expose the port to untrusted peers).

Stateful shard sessions
=======================
The ``open`` / ``snapshot`` / ``wave`` / ``close`` frames implement the
**stateful session** route behind
:meth:`DistributedBackend.open_exploration`.  One exploration opens a
session; each enrolled worker connection keeps a
:class:`~repro.engine.pool.ResidentShard` per logical shard it owns — the
shard's append-only intern table of every state it has ever exchanged —
mirrored coordinator-side by a :class:`_ShardMirror`.  Wave frames then
carry table *references* instead of full states wherever a state has been
exchanged before, so per-wave wire bytes track the cross-shard frontier
delta rather than the explored set.  ``snapshot`` frames (re)install a
shard's table on a worker: at session open (empty table), on worker
**join** (elastic rebalancing moves shards to the newcomer), and on
worker **leave** — where the shard is *restored* when the
:class:`~repro.engine.journal.ShardSnapshotStore` checkpoint is current
(its watermark, the table length, equals the mirror's) or
*re-partitioned* from the stale checkpoint prefix otherwise.  Either way
the exploration resumes mid-wave instead of restarting, and the merged
``Exploration`` stays byte-identical to the serial engine's (the
``advance_wave`` API speaks full states; compression is wire-internal).
See ``docs/architecture.md`` for the full protocol walk-through.

Scheduling, retries and determinism
===================================
The coordinator keeps one queue of outstanding items per job.  Each
connection is served by a thread that pulls an item, ships it, and blocks
for the reply — so a worker daemon started with ``--workers N`` (which
spawns N connections, each backed by its own OS process) pulls N items at
a time, and scheduling is naturally load-balanced: fast workers come back
for more.

Workers may join at any time (new connections start pulling from the
current queue) and die at any time: when a connection breaks with an item
in flight, the coordinator requeues that item for the next available
worker and drops the connection.  This is safe because both payload kinds
are **pure functions of their payload** — re-evaluating a task or a shard
on another worker yields the identical value, so at-least-once delivery
still produces exactly-once results.

Failure containment (PR 7)
==========================
Three resilience mechanisms bound how far a misbehaving item or worker can
propagate:

* **Per-item deadline** (``item_timeout=``): while an item is in flight,
  the coordinator expects *some* frame — heartbeat or result — within the
  deadline.  Silence retires the connection as *hung* (counted in
  :attr:`DistributedBackend.hung_retired`) and requeues the item, so a
  wedged-but-connected daemon can no longer stall a sweep forever.
* **Retry budget + poison quarantine** (``max_item_attempts=``): every
  requeue records an attempt (which worker, how it died).  An item whose
  attempts exhaust the budget is *quarantined* instead of requeued — a
  payload that deterministically kills its worker stops after N workers
  rather than cycling through the whole fleet.  Quarantined campaign
  tasks become structured failure reports naming the attempts (the rest
  of the job is unaffected); quarantined shards raise
  :class:`~repro.engine.backend.PoisonedItemError` (an exploration cannot
  proceed without its rows).
* **Structured fleet loss**: losing every worker mid-job raises
  :class:`~repro.engine.backend.FleetLostError` carrying the completed
  results and outstanding item ids, which is what lets the opt-in
  :class:`~repro.engine.backend.FallbackBackend` *finish* the job locally
  instead of recomputing it.

Deterministic fault injection for all of the above lives in
:mod:`repro.engine.faults` (``faults=`` on the backend, the daemon and the
campaign journal); the chaos parity suite and the ``chaos`` CLI
subcommand drive it.

Results are stored by item id and handed back in submission order, which
is the whole determinism story: the campaign engine's reports come back
in task order (identical to the serial engine's, because each report is a
pure function of its task), and the sharded explorer's rows come back in
shard order, after which the coordinator-side merge replays serial BFS
order exactly as it does for the in-process pool.  Which daemon evaluated
what, and in which order, is unobservable in the output.
"""

from __future__ import annotations

import argparse
import io
import os
import pickle
import random
import socket
import struct
import sys
import threading
import time
import traceback
import zlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from .backend import FleetLostError, NoWorkersError, PoisonedItemError
from .campaign import CampaignTask, VerificationReport, run_task
from .journal import ShardSnapshotStore
from .pool import ExploreKey, ResidentShard, expand_shard
from .reduction import normalize_reduction
from .states import SchedulerState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backend import ShardFrontier, ShardResult
    from .faults import FaultPlan

__all__ = [
    "DistributedBackend",
    "WorkerDaemon",
    "WorkerStatus",
    "send_message",
    "recv_message",
    "recv_message_sized",
    "run_worker",
    "main",
]

#: Frame header: 8-byte big-endian unsigned payload length.
_HEADER = struct.Struct("!Q")

#: Pickled bodies at or above this size are candidates for zlib
#: compression (small frames — acks, heartbeats, work headers — are not
#: worth the CPU or the flag-byte round trip through zlib).
COMPRESS_THRESHOLD = 1024

#: zlib level: 3 trades a few percent of ratio for ~3x faster compression
#: than the default 6 — successor rows are highly repetitive, so even
#: level 1-3 collapses them severalfold.
COMPRESS_LEVEL = 3

#: Body encoding flags (first byte after the length header).
_RAW, _ZLIB = b"\x00", b"\x01"

#: Refuse to allocate buffers for frames beyond this size (a corrupted or
#: hostile header would otherwise ask for up to 2**64 bytes).
MAX_FRAME_BYTES = 1 << 32


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame_info(obj: object) -> Tuple[bytes, int, int, bool]:
    """The wire form of one message plus its compression accounting.

    Returns ``(frame, raw_bytes, wire_bytes, compressed)``: the frame to
    send, the frame size had the body stayed uncompressed, the size
    actually hitting the wire, and whether the body was compressed.
    Callers that keep wire counters (the coordinator) record the sizes
    under their own locks; everyone else uses :func:`encode_frame`.
    """
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    payload = _RAW + body
    compressed = False
    if len(body) >= COMPRESS_THRESHOLD:
        packed = zlib.compress(body, COMPRESS_LEVEL)
        if len(packed) < len(body):
            payload = _ZLIB + packed
            compressed = True
    raw_bytes = _HEADER.size + 1 + len(body)
    return _HEADER.pack(len(payload)) + payload, raw_bytes, _HEADER.size + len(payload), compressed


def encode_frame(obj: object) -> bytes:
    """The wire form of one message: length header plus flagged body."""
    return encode_frame_info(obj)[0]


def decode_frame_body(body: bytes) -> object:
    """Decode one frame body, whichever encoding (or era) produced it."""
    flag = body[:1]
    if flag == _ZLIB:
        return pickle.loads(zlib.decompress(body[1:]))
    if flag == _RAW:
        return pickle.loads(body[1:])
    # A body starting with neither flag is a legacy bare pickle
    # (protocol >= 2 always leads with 0x80) from a pre-compression peer.
    return pickle.loads(body)


def send_message(sock: socket.socket, obj: object) -> None:
    """Send one length-prefixed pickle frame."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise :class:`ConnectionError` on EOF."""
    buffer = io.BytesIO()
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        buffer.write(chunk)
        remaining -= len(chunk)
    return buffer.getvalue()


def recv_message(sock: socket.socket) -> object:
    """Receive one length-prefixed pickle frame (blocking)."""
    return recv_message_sized(sock)[0]


def recv_message_sized(sock: socket.socket) -> Tuple[object, int]:
    """Receive one frame and report its full wire size (header + body).

    The sized variant backs the coordinator's ``bytes_received`` counters —
    wire accounting wants the bytes actually read off the socket, not a
    re-serialization estimate of the decoded object.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    return decode_frame_body(_recv_exact(sock, length)), _HEADER.size + length


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
class _Job:
    """One in-flight batch: payloads out, results (by item id) back in."""

    def __init__(self, kind: str, payloads: Sequence[object]) -> None:
        self.kind = kind
        self.payloads = list(payloads)
        self.results: List[object] = [None] * len(self.payloads)
        self.remaining = len(self.payloads)
        self.failure: Optional[str] = None
        #: Item ids whose first attempt died with its worker; kept for
        #: observability (tests assert the retry path actually ran).
        self.retried: List[int] = []
        #: Per-item attempt log: "worker: how it died" per failed attempt.
        #: Feeds the retry budget and the structured quarantine errors.
        self.attempts: List[List[str]] = [[] for _ in self.payloads]
        #: Items with a collected result (drives FleetLostError.completed).
        self.done: List[bool] = [False] * len(self.payloads)
        #: Items quarantined after exhausting the retry budget.
        self.poisoned: List[int] = []


def _poison_report(task: CampaignTask, attempts: Sequence[str]) -> VerificationReport:
    """The structured failure report of a quarantined campaign task."""
    detail = "; ".join(attempts)
    return VerificationReport(
        algorithm=task.algorithm,
        model=task.model,
        m=task.m,
        n=task.n,
        seed=None if task.kind == "check" else (0 if task.seed is None else task.seed),
        ok=False,
        steps=0,
        moves=0,
        reason=(
            f"poison task: {len(attempts)} failed attempt(s) exhausted the retry budget"
            f" ({detail})"
        ),
        kind=task.kind,
        reduction=normalize_reduction(task.reduction) if task.kind == "check" else None,
    )


# ---------------------------------------------------------------------------
# Stateful shard sessions (coordinator side)
# ---------------------------------------------------------------------------
class _ShardMirror:
    """Coordinator-side mirror of one shard's worker-resident intern table.

    The mirror and the owning worker's
    :class:`~repro.engine.pool.ResidentShard` append states in the same
    deterministic order — per wave: every downlink full-state entry, in
    entry order, then every uplink new-state reference, in report order —
    so the two tables stay identical without ever being compared.

    Downlink appends are *two-phase*: :meth:`encode_entry` stages them in a
    pending overlay that :meth:`commit` folds into the table only when the
    shard's wave result is delivered.  A worker that dies mid-wave never
    delivered, so :meth:`rollback` discards the overlay and the mirror
    still equals the table as of the last *delivered* wave — which makes
    "is the snapshot current?" a plain watermark (length) comparison, and
    re-encoding the in-flight wave against the mirror reproduce the exact
    frame the dead worker would have processed.
    """

    def __init__(self, table: Optional[List[SchedulerState]] = None) -> None:
        self.table: List[SchedulerState] = list(table) if table else []
        self.seen: Dict[SchedulerState, int] = {s: i for i, s in enumerate(self.table)}
        self._pending: List[SchedulerState] = []
        self._pending_seen: Dict[SchedulerState, int] = {}

    def encode_entry(self, state: SchedulerState) -> object:
        """The downlink wire entry for one frontier state: ref or full."""
        ref = self.seen.get(state)
        if ref is None:
            ref = self._pending_seen.get(state)
        if ref is not None:
            return ref
        self._pending_seen[state] = len(self.table) + len(self._pending)
        self._pending.append(state)
        return ("f", state)

    def commit(self) -> None:
        """Fold staged downlink appends in: the wave result was delivered."""
        for state in self._pending:
            self.seen[state] = len(self.table)
            self.table.append(state)
        self._pending = []
        self._pending_seen = {}

    def rollback(self) -> None:
        """Discard staged appends: the in-flight wave was never delivered."""
        self._pending = []
        self._pending_seen = {}

    def append(self, state: SchedulerState) -> None:
        """One uplink ``("n", state)`` intern, replayed at decode time."""
        self.seen[state] = len(self.table)
        self.table.append(state)


class _SessionMember:
    """One worker connection enrolled in a session.

    The connection's serve thread drains :attr:`outbox` — ``(frame,
    expects_reply)`` pairs, appended and popped under the backend lock —
    and feeds replies back through :meth:`_CoordSession.deliver`.
    """

    def __init__(self, conn: socket.socket, peer: str) -> None:
        self.conn = conn
        self.peer = peer
        self.outbox: deque = deque()
        self.shards: set = set()
        self.lost = False


class _CoordSession:
    """Coordinator end of one stateful shard session (a ``ShardSession``).

    Owns the fixed logical shard count, the per-shard
    :class:`_ShardMirror`\\ s, the shard-to-member assignment, and the
    elastic recovery policy: a lost member's shards are **restored** onto
    survivors when the :class:`~repro.engine.journal.ShardSnapshotStore`
    checkpoint is current, **re-partitioned** from the stale checkpoint
    prefix otherwise; a joining member is given shards from the most
    loaded members (never one with a wave in flight).  All mutable state
    is guarded by the owning backend's condition lock.
    """

    def __init__(
        self,
        backend: "DistributedBackend",
        session_id: str,
        key: ExploreKey,
        n_shards: int,
        store: ShardSnapshotStore,
        snapshot_every: int,
    ) -> None:
        self._backend = backend
        self.session_id = session_id
        self.key = key
        self.n_shards = n_shards
        self._store = store
        self._snapshot_every = snapshot_every
        self._mirrors = [_ShardMirror() for _ in range(n_shards)]
        self._owner: List[Optional[_SessionMember]] = [None] * n_shards
        self._members: List[_SessionMember] = []
        self._started = False
        self._wave_index = -1
        #: The in-flight wave's frontier (shard -> full states), kept so a
        #: reassigned shard's slice can be re-encoded and re-sent.
        self._current: Optional[Dict[int, List[SchedulerState]]] = None
        self._delivered: Dict[int, "ShardResult"] = {}
        #: Shards whose current-wave frame has been encoded and enqueued.
        #: Each slice must be encoded exactly once per mirror state — the
        #: encode stages mirror appends — so dispatch and recovery re-sends
        #: coordinate through this set instead of racing.
        self._dispatched: set = set()
        #: Per-shard attempt log for the current wave ("peer: how it
        #: died"); feeds the same ``max_item_attempts`` retry budget the
        #: stateless route enforces, so a poison wave raises a structured
        #: :class:`~repro.engine.backend.PoisonedItemError` instead of
        #: burning through the whole fleet.
        self._attempts: Dict[int, List[str]] = {}
        self._poisoned: Optional[PoisonedItemError] = None
        self._failure: Optional[str] = None
        self._closed = False
        # Per-session wire counters (the backend accumulates its own).
        self.bytes_sent = 0
        self.bytes_received = 0
        #: What ``bytes_sent`` would have been without frame compression.
        self.bytes_sent_raw = 0
        #: Outbound frames whose bodies actually shipped zlib-compressed.
        self.frames_compressed = 0
        self.rows_exchanged = 0
        self.waves = 0

    # -- membership (backend lock held unless noted) --------------------
    def _enroll_locked(self, conn: socket.socket, peer: str) -> _SessionMember:
        member = _SessionMember(conn, peer)
        self._members.append(member)
        member.outbox.append((("open", self.session_id, self.key), False))
        if self._started:
            orphans = [s for s in range(self.n_shards) if self._owner[s] is None]
            if orphans:
                # The whole fleet died with these shards outstanding; the
                # newcomer picks them up through the recovery path.
                for shard in orphans:
                    self._assign_locked(shard, member, cause="lost")
            else:
                self._rebalance_locked(member)
        self._backend._lock.notify_all()
        return member

    def _rebalance_locked(self, member: _SessionMember) -> None:
        """Move shards from the most loaded members to a fresh joiner.

        Only shards with no wave in flight move (their mirrors are exactly
        the owner's table, so the move is a snapshot send, not a recovery).
        """
        fair = max(1, self.n_shards // len(self._members))
        while len(member.shards) < fair:
            donor = max(
                (m for m in self._members if m is not member),
                key=lambda m: len(m.shards),
                default=None,
            )
            if donor is None or len(donor.shards) <= len(member.shards) + 1:
                return
            movable = [s for s in sorted(donor.shards) if not self._in_flight_locked(s)]
            if not movable:
                return
            self._assign_locked(movable[0], member, cause="join")
            self._backend.shards_moved += 1

    def _in_flight_locked(self, shard: int) -> bool:
        return (
            self._current is not None
            and shard in self._current
            and shard not in self._delivered
        )

    def _assign_locked(self, shard: int, member: _SessionMember, *, cause: str) -> None:
        """Give ``shard`` to ``member``; re-send its in-flight wave slice.

        ``cause`` is ``"open"`` (initial distribution), ``"join"`` (a
        voluntary rebalancing move — the mirror is authoritative and
        current) or ``"lost"`` (recovery — restore from a current
        checkpoint, or re-partition from the stale prefix).
        """
        backend = self._backend
        mirror = self._mirrors[shard]
        if cause == "lost":
            mirror.rollback()
            if self._store.watermark(self.session_id, shard) == len(mirror.table):
                backend.snapshots_restored += 1
            else:
                # The checkpoint lags the shard's delivered state (a sparse
                # or disabled snapshot cadence): fall back to the
                # checkpointed prefix — worker and mirror restart the
                # shard's compression from there.  Only wire savings are
                # lost; re-shipped states re-intern identically.
                table = self._store.restore(self.session_id, shard) or []
                mirror = self._mirrors[shard] = _ShardMirror(table)
                backend.shards_repartitioned += 1
        previous = self._owner[shard]
        if previous is not None and previous is not member:
            previous.shards.discard(shard)
            if not previous.lost:
                previous.outbox.append((("snapshot", self.session_id, shard, None), False))
        self._owner[shard] = member
        member.shards.add(shard)
        member.outbox.append(
            (("snapshot", self.session_id, shard, list(mirror.table)), False)
        )
        if self._in_flight_locked(shard):
            entries = [mirror.encode_entry(s) for s in self._current[shard]]
            member.outbox.append(
                (("wave", self.session_id, self._wave_index, shard, entries), True)
            )
            self._dispatched.add(shard)

    def member_lost(self, member: _SessionMember, reason: str) -> None:
        """A member's connection died: recover its shards onto survivors."""
        backend = self._backend
        with backend._lock:
            if member.lost:
                return
            member.lost = True
            if member in self._members:
                self._members.remove(member)
            if self._closed:
                return
            shards = sorted(member.shards)
            member.shards = set()
            for shard in shards:
                self._owner[shard] = None
                if self._in_flight_locked(shard):
                    log = self._attempts.setdefault(shard, [])
                    log.append(f"{member.peer}: {reason}")
                    if self._poisoned is None and len(log) >= backend.max_item_attempts:
                        self._poisoned = PoisonedItemError(self._wave_index, log)
            if self._members and self._poisoned is None:
                for shard in shards:
                    target = min(self._members, key=lambda m: len(m.shards))
                    self._assign_locked(shard, target, cause="lost")
            # No survivors: the shards stay orphaned; the next enrolling
            # connection (or advance_wave's fleet-loss deadline) resolves it.
            backend._lock.notify_all()

    # -- wave delivery (called without the lock) -------------------------
    def deliver(self, member: _SessionMember, reply: object) -> None:
        backend = self._backend
        with backend._lock:
            if self._closed:
                return
            if isinstance(reply, tuple) and reply and reply[0] == "error":
                self._failure = f"worker failed on a session wave:\n{reply[2]}"
                backend._lock.notify_all()
                return
            if not (isinstance(reply, tuple) and len(reply) == 8 and reply[0] == "wave_result"):
                self._failure = f"malformed session reply: {reply!r}"
                backend._lock.notify_all()
                return
            _tag, sid, wave_index, shard, rows_wire, hit_miss, red_delta, watermark = reply
            if (
                sid != self.session_id
                or wave_index != self._wave_index
                or not self._in_flight_locked(shard)
                or self._owner[shard] is not member
            ):
                return  # stale reply from a retired assignment
            mirror = self._mirrors[shard]
            mirror.commit()
            rows: list = []
            exchanged = 0
            for row_wire in rows_wire:
                row = []
                for ref, token in row_wire:
                    if isinstance(ref, int):
                        state = mirror.table[ref]
                    else:
                        state = ref[1]
                        mirror.append(state)
                    row.append((state, token))
                exchanged += len(row)
                rows.append(row)
            if watermark != len(mirror.table):
                self._failure = (
                    f"shard {shard} watermark skew: worker reports {watermark},"
                    f" coordinator mirror has {len(mirror.table)}"
                )
                backend._lock.notify_all()
                return
            self._delivered[shard] = (rows, tuple(hit_miss), red_delta)
            self.rows_exchanged += exchanged
            backend.rows_exchanged += exchanged
            if self._snapshot_every and (wave_index + 1) % self._snapshot_every == 0:
                start = self._store.watermark(self.session_id, shard)
                if len(mirror.table) > start:
                    self._store.append(
                        self.session_id, shard, start, mirror.table[start:]
                    )
            backend._lock.notify_all()

    # -- ShardSession API (called by the sharded coordinator) ------------
    def advance_wave(self, frontier: "ShardFrontier") -> List["ShardResult"]:
        """Expand one BFS wave on the resident shards; results in order."""
        backend = self._backend
        frontier = [(shard, list(states)) for shard, states in frontier]
        with backend._lock:
            if self._closed:
                raise RuntimeError("ShardSession is closed")
            if self._poisoned is not None:
                raise self._poisoned
            if self._failure is not None:
                raise RuntimeError(f"stateful session failed: {self._failure}")
            self._wave_index += 1
            self.waves += 1
            self._current = {shard: states for shard, states in frontier}
            self._delivered = {}
            self._dispatched = set()
            self._attempts = {}
            deadline = time.monotonic() + backend.start_timeout
            while not self._members:
                if backend._closed:
                    raise RuntimeError("DistributedBackend closed mid-session")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._current = None
                    raise FleetLostError(
                        f"all worker daemons left the session at {backend.address}"
                        f" and none rejoined within {backend.start_timeout:.0f}s",
                        kind="session",
                        completed={},
                        pending=list(range(len(frontier))),
                    )
                backend._lock.wait(timeout=remaining)
            for shard, states in frontier:
                if shard in self._dispatched:
                    continue  # a recovery/enroll path already (re-)sent it
                member = self._owner[shard]
                assert member is not None  # members nonempty => no orphans
                entries = [self._mirrors[shard].encode_entry(s) for s in states]
                member.outbox.append(
                    (("wave", self.session_id, self._wave_index, shard, entries), True)
                )
                self._dispatched.add(shard)
            backend._lock.notify_all()
            while len(self._delivered) < len(self._current):
                if backend._closed:
                    raise RuntimeError("DistributedBackend closed mid-session")
                if self._poisoned is not None:
                    raise self._poisoned
                if self._failure is not None:
                    raise RuntimeError(f"stateful session failed: {self._failure}")
                if not self._members:
                    if not backend._lock.wait(timeout=backend.start_timeout):
                        if not self._members:
                            delivered = dict(self._delivered)
                            self._current = None
                            raise FleetLostError(
                                f"all worker daemons left the session at"
                                f" {backend.address} mid-wave and none rejoined"
                                f" within {backend.start_timeout:.0f}s",
                                kind="session",
                                completed={
                                    position: delivered[shard]
                                    for position, (shard, _) in enumerate(frontier)
                                    if shard in delivered
                                },
                                pending=[
                                    position
                                    for position, (shard, _) in enumerate(frontier)
                                    if shard not in delivered
                                ],
                            )
                else:
                    backend._lock.wait()
            results = [self._delivered[shard] for shard, _ in frontier]
            self._current = None
            self._delivered = {}
            return results

    def wire_stats(self) -> Dict[str, int]:
        with self._backend._lock:
            return {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "bytes_sent_raw": self.bytes_sent_raw,
                "frames_compressed": self.frames_compressed,
                "rows_exchanged": self.rows_exchanged,
                "waves": self.waves,
            }

    def close(self) -> None:
        backend = self._backend
        with backend._lock:
            if self._closed:
                return
            self._closed = True
            self._current = None
            for member in self._members:
                if not member.lost:
                    member.outbox.append((("close", self.session_id), False))
            if backend._session is self:
                backend._session = None
            backend._lock.notify_all()
        # The durable log (when configured) keeps history; the in-memory
        # tables of a finished session are dead weight.
        self._store.drop_session(self.session_id)


class DistributedBackend:
    """Coordinator end of the TCP worker protocol; an ``ExecutionBackend``.

    Binds ``host:port`` (``port=0`` picks an ephemeral port, published as
    :attr:`port`) and accepts worker-daemon connections in the background.
    ``min_workers`` is how many connections :meth:`run_tasks` /
    :meth:`map_shards` wait for before shipping work (daemons may be
    launched before or after the backend — workers retry connecting, the
    backend waits for registrations), and ``start_timeout`` bounds that
    wait plus any mid-job window in which every worker has died and no
    replacement joins.

    One job (one batch of tasks or one wave of shards) runs at a time;
    results return in submission order.  Items in flight on a connection
    that breaks are requeued for the remaining workers — see the module
    docstring for why retries cannot change results.

    ``item_timeout`` (seconds; ``None`` disables) is the per-item silence
    deadline: an in-flight item whose connection produces neither a
    heartbeat nor a result within it is retired as hung and re-executed
    elsewhere.  ``max_item_attempts`` is the per-item retry budget — an
    item whose attempts (worker deaths, hangs, undecodable replies) reach
    it is quarantined instead of requeued, so a poison payload stops after
    that many workers instead of consuming the fleet.  ``faults`` installs
    a :class:`~repro.engine.faults.FaultPlan` on the coordinator's frame
    path (test/chaos machinery; ``None`` in production).

    ``sessions`` enables the stateful shard-session route behind
    :meth:`open_exploration` (on by default; ``False`` pins every
    exploration to the stateless ``map_shards`` path, which the parity
    tests and benchmarks use as the comparison baseline).
    ``snapshot_store`` checkpoints each session shard's intern table — a
    :class:`~repro.engine.journal.ShardSnapshotStore`, a path (opens a
    durable store in the journal record format), or ``None`` for a fresh
    in-memory store — and ``snapshot_every`` is the checkpoint cadence in
    delivered waves (``1`` keeps every shard restorable at its latest
    watermark; ``0`` disables checkpointing, so a lost shard is always
    re-partitioned from scratch).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        min_workers: int = 1,
        start_timeout: float = 60.0,
        item_timeout: Optional[float] = None,
        max_item_attempts: int = 3,
        faults: Optional["FaultPlan"] = None,
        sessions: bool = True,
        snapshot_store=None,
        snapshot_every: int = 1,
    ) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_item_attempts < 1:
            raise ValueError("max_item_attempts must be >= 1")
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.min_workers = min_workers
        self.start_timeout = start_timeout
        self.item_timeout = item_timeout
        self.max_item_attempts = max_item_attempts
        self.snapshot_every = snapshot_every
        self._sessions_enabled = bool(sessions)
        if isinstance(snapshot_store, ShardSnapshotStore):
            self._snapshot_store = snapshot_store
            self._owns_snapshot_store = False
        else:
            self._snapshot_store = ShardSnapshotStore(snapshot_store)
            self._owns_snapshot_store = True
        self._faults = faults
        self._lock = threading.Condition()
        self._queue: deque = deque()  # (job, item_id) pairs
        self._job: Optional[_Job] = None
        self._session: Optional[_CoordSession] = None
        self._session_counter = 0
        self._closed = False
        self._live_workers = 0
        self._workers_ever = 0
        #: Items requeued after their worker connection died mid-flight
        #: (observability: the smoke/regression tests assert on it).
        self.retries_total = 0
        #: Connections retired because an in-flight item produced neither
        #: a heartbeat nor a result within ``item_timeout``.
        self.hung_retired = 0
        #: Items quarantined after exhausting ``max_item_attempts``.
        self.poisoned_total = 0
        #: Wire-level accounting, both routes (stateless jobs and stateful
        #: sessions): bytes actually written to / read from worker sockets,
        #: and successor-row entries exchanged in shard results.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: What ``bytes_sent`` would have been without frame compression,
        #: and how many outbound frames shipped compressed — together they
        #: put a number on what the zlib layer saves.
        self.bytes_sent_raw = 0
        self.frames_compressed = 0
        self.rows_exchanged = 0
        #: Session lifecycle counters: shards restored from a current
        #: checkpoint, re-partitioned from a stale one, and voluntarily
        #: moved to a joining worker.
        self.sessions_opened = 0
        self.snapshots_restored = 0
        self.shards_repartitioned = 0
        self.shards_moved = 0
        self._threads: List[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen()
            self.host, self.port = self._listener.getsockname()[:2]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="distributed-accept", daemon=True
            )
            self._accept_thread.start()
        except BaseException:
            # Partial construction must not leak the socket.
            self._listener.close()
            raise

    # -- introspection -------------------------------------------------
    @property
    def address(self) -> str:
        """The ``HOST:PORT`` string daemons should ``--connect`` to."""
        return f"{self.host}:{self.port}"

    @property
    def parallelism(self) -> int:
        """The backend's shard/fan-out width.

        At least ``min_workers`` even before any daemon has registered:
        stateless consumers read this *before* the first job ships (the
        sharded explorer's fallback route freezes its shard count up
        front, while the worker wait happens inside the first
        ``map_shards`` call), and partitioning for fewer shards than the
        promised workers would silently serialize the whole workload onto
        one connection.  The stateful route does not have that freeze:
        :meth:`open_exploration` re-reads the live connection count
        *after* its worker wait, so late-joining daemons are visible to
        session partitioning.
        """
        with self._lock:
            return max(1, self.min_workers, self._live_workers)

    @property
    def workers_ever(self) -> int:
        """Total worker connections accepted over the backend's lifetime."""
        with self._lock:
            return self._workers_ever

    @property
    def stats(self) -> Dict[str, int]:
        """Resilience + wire counters: retries, quarantines, bytes, shards."""
        with self._lock:
            return {
                "retries_total": self.retries_total,
                "hung_retired": self.hung_retired,
                "poisoned_total": self.poisoned_total,
                "workers_ever": self._workers_ever,
                "live_workers": self._live_workers,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "bytes_sent_raw": self.bytes_sent_raw,
                "frames_compressed": self.frames_compressed,
                "rows_exchanged": self.rows_exchanged,
                "sessions_opened": self.sessions_opened,
                "snapshots_restored": self.snapshots_restored,
                "shards_repartitioned": self.shards_repartitioned,
                "shards_moved": self.shards_moved,
            }

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), name="distributed-serve", daemon=True
            )
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            hello = recv_message(conn)
        except Exception:  # noqa: BLE001 - bad handshake, drop the connection
            conn.close()
            return
        if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
            conn.close()
            return
        info = hello[1] if len(hello) > 1 and isinstance(hello[1], dict) else {}
        try:
            peername = "%s:%s" % conn.getpeername()[:2]
        except OSError:  # pragma: no cover - racing close
            peername = "?"
        peer = f"worker {peername} (pid {info.get('pid', '?')}@{info.get('host', '?')})"
        with self._lock:
            if self._closed:
                conn.close()
                return
            self._live_workers += 1
            self._workers_ever += 1
            self._lock.notify_all()
        try:
            self._pull_loop(conn, peer)
        finally:
            with self._lock:
                self._live_workers -= 1
                # Retired connections must not accumulate: a long-lived
                # coordinator sees arbitrarily many daemons come and go.
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:  # pragma: no cover - close() raced us
                    pass
                self._lock.notify_all()
            conn.close()

    def _pull_loop(self, conn: socket.socket, peer: str) -> None:
        """Pull items for one connection until shutdown or connection death."""
        # The per-item deadline rides on the socket: while an item is in
        # flight, every recv (heartbeat or result) must land within it.
        conn.settimeout(self.item_timeout)
        while True:
            with self._lock:
                while not self._queue and self._session is None and not self._closed:
                    self._lock.wait()
                if self._closed:
                    try:
                        send_message(conn, ("shutdown",))
                    except OSError:
                        pass
                    return
                session = self._session
                if session is not None:
                    # A stateful session is active: this connection enrolls
                    # as a member and serves session frames until the
                    # session ends (then resumes pulling ordinary items).
                    member = session._enroll_locked(conn, peer)
                else:
                    job, item_id = self._queue.popleft()
            if session is not None:
                self._session_serve(session, member, conn)
                if member.lost:
                    return  # the connection died inside the session
                continue
            try:
                # Serialize before touching the socket: an unpicklable
                # payload is a deterministic caller error, and requeueing
                # it would just kill every worker in turn.
                frame, raw_bytes, _, compressed = encode_frame_info(
                    ("work", item_id, job.kind, job.payloads[item_id])
                )
            except Exception:  # noqa: BLE001 - reported as the job's failure
                self._record_reply(
                    job,
                    item_id,
                    ("error", item_id, f"unpicklable payload:\n{traceback.format_exc()}"),
                )
                continue
            if self._faults is not None:
                frame = self._faults.frame_out("coordinator.send", frame, item=item_id)
            try:
                conn.sendall(frame)
                with self._lock:
                    self.bytes_sent += len(frame)
                    self.bytes_sent_raw += raw_bytes
                    self.frames_compressed += int(compressed)
                while True:
                    reply, frame_bytes = recv_message_sized(conn)
                    with self._lock:
                        self.bytes_received += frame_bytes
                    # Heartbeats only reset the silence deadline (the
                    # socket timeout re-arms per recv); the worker is slow
                    # but alive, so keep waiting for the real reply.
                    if isinstance(reply, tuple) and reply and reply[0] == "heartbeat":
                        continue
                    break
            except TimeoutError:
                # Neither a heartbeat nor a result within item_timeout:
                # the worker is wedged (or its network is).  Retire the
                # connection and hand the item to a live worker.
                self._retire_in_flight(
                    job, item_id, peer, f"no heartbeat within {self.item_timeout}s", hung=True
                )
                return
            except Exception:  # noqa: BLE001 - any transport/decode failure
                # The worker died — or sent something the coordinator
                # cannot deserialize (version skew raises AttributeError/
                # ImportError from pickle.loads, not just UnpicklingError).
                # Either way: hand the in-flight item to the surviving
                # workers and retire this connection, so the job can never
                # hang on an item nobody owns.
                reason = traceback.format_exception_only(*sys.exc_info()[:2])[-1].strip()
                self._retire_in_flight(job, item_id, peer, reason, hung=False)
                return
            self._record_reply(job, item_id, reply)

    def _session_serve(self, session: _CoordSession, member: _SessionMember, conn: socket.socket) -> None:
        """Serve one enrolled connection's session frames until the end.

        Drains the member's outbox (open / snapshot / wave / close frames,
        enqueued under the backend lock), waits for one reply per wave
        frame (heartbeats only re-arm the silence deadline), and feeds
        deliveries back into the session.  Any transport failure — or
        per-item-deadline silence — marks the member lost, which triggers
        the session's shard recovery.
        """
        try:
            while True:
                with self._lock:
                    while True:
                        if member.outbox:
                            frame_obj, expects_reply = member.outbox.popleft()
                            break
                        if member.lost or self._closed or session._closed:
                            return
                        self._lock.wait()
                frame, raw_bytes, _, compressed = encode_frame_info(frame_obj)
                if self._faults is not None and expects_reply:
                    # Wave frames count as coordinator.send events, keyed
                    # by wave index, so chaos plans target them the same
                    # way they target stateless work frames.
                    frame = self._faults.frame_out("coordinator.send", frame, item=frame_obj[2])
                conn.sendall(frame)
                with self._lock:
                    self.bytes_sent += len(frame)
                    self.bytes_sent_raw += raw_bytes
                    self.frames_compressed += int(compressed)
                    session.bytes_sent += len(frame)
                    session.bytes_sent_raw += raw_bytes
                    session.frames_compressed += int(compressed)
                if not expects_reply:
                    continue
                while True:
                    reply, frame_bytes = recv_message_sized(conn)
                    with self._lock:
                        self.bytes_received += frame_bytes
                        session.bytes_received += frame_bytes
                    if isinstance(reply, tuple) and reply and reply[0] == "heartbeat":
                        continue
                    break
                session.deliver(member, reply)
        except TimeoutError:
            with self._lock:
                self.hung_retired += 1
            session.member_lost(member, f"no heartbeat within {self.item_timeout}s")
        except Exception:  # noqa: BLE001 - any transport/decode failure
            reason = traceback.format_exception_only(*sys.exc_info()[:2])[-1].strip()
            session.member_lost(member, reason)

    def _retire_in_flight(self, job: _Job, item_id: int, peer: str, reason: str, *, hung: bool) -> None:
        """An in-flight item lost its connection: requeue or quarantine.

        Items of a job that has already been abandoned (failed and purged
        by ``_run_job``) are dropped instead — requeueing them would make
        the *next* job's workers evaluate stale payloads.
        """
        with self._lock:
            if self._job is not job:
                return
            job.attempts[item_id].append(f"{peer}: {reason}")
            if hung:
                self.hung_retired += 1
            if len(job.attempts[item_id]) >= self.max_item_attempts:
                # Retry budget exhausted: quarantine the item instead of
                # feeding it to yet another worker.
                self.poisoned_total += 1
                job.poisoned.append(item_id)
                if job.kind == "task":
                    # A campaign job survives a poison task — the item
                    # fails alone, with a structured report naming every
                    # attempt (shard jobs fail at _run_job instead).
                    job.results[item_id] = _poison_report(
                        job.payloads[item_id], job.attempts[item_id]
                    )
                job.done[item_id] = True
                job.remaining -= 1
            else:
                job.retried.append(item_id)
                self.retries_total += 1
                self._queue.append((job, item_id))
            self._lock.notify_all()

    def _record_reply(self, job: _Job, item_id: int, reply: object) -> None:
        with self._lock:
            if not (isinstance(reply, tuple) and len(reply) == 3 and reply[1] == item_id):
                job.failure = f"malformed reply for item {item_id}: {reply!r}"
            elif reply[0] == "error":
                job.failure = f"worker failed on item {item_id}:\n{reply[2]}"
            elif reply[0] == "result":
                job.results[item_id] = reply[2]
                job.done[item_id] = True
                if job.kind == "shard" and isinstance(reply[2], tuple) and reply[2]:
                    # Successor-row entries exchanged on the stateless
                    # route, for stateless-vs-stateful wire comparisons.
                    self.rows_exchanged += sum(len(row) for row in reply[2][0])
            else:
                job.failure = f"unknown reply tag {reply[0]!r} for item {item_id}"
            job.remaining -= 1
            self._lock.notify_all()

    # -- job execution -------------------------------------------------
    def _wait_for_workers(self, deadline: float) -> None:
        with self._lock:
            while self._live_workers < self.min_workers:
                if self._closed:
                    raise RuntimeError("DistributedBackend is closed")
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    raise NoWorkersError(
                        f"no {self.min_workers} worker daemon(s) connected to {self.address}"
                        f" within {self.start_timeout:.0f}s"
                        f" ({self._live_workers} currently connected)"
                    )
                self._lock.wait(timeout=timeout)

    def _run_job(self, kind: str, payloads: Sequence[object]) -> List[object]:
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        payloads = list(payloads)
        if not payloads:
            return []
        deadline = time.monotonic() + self.start_timeout
        self._wait_for_workers(deadline)
        job = _Job(kind, payloads)
        with self._lock:
            if self._job is not None:
                raise RuntimeError("DistributedBackend runs one job at a time")
            self._job = job
            self._queue.extend((job, item_id) for item_id in range(len(payloads)))
            self._lock.notify_all()
            try:
                while job.remaining and job.failure is None:
                    if self._closed:
                        raise RuntimeError("DistributedBackend closed mid-job")
                    if self._live_workers == 0:
                        # Every worker is gone with work outstanding; allow
                        # the (re)connect window before declaring failure.
                        if not self._lock.wait(timeout=self.start_timeout):
                            if self._live_workers == 0:
                                # Quarantined campaign tasks carry a usable
                                # (synthesized) report and count as done;
                                # quarantined shards have no usable result,
                                # so they go back in pending for whoever
                                # finishes the job (FallbackBackend).
                                unusable = set() if kind == "task" else set(job.poisoned)
                                raise FleetLostError(
                                    f"all worker daemons disconnected from {self.address}"
                                    f" with {job.remaining} item(s) outstanding and none"
                                    f" rejoined within {self.start_timeout:.0f}s",
                                    kind=kind,
                                    completed={
                                        item_id: job.results[item_id]
                                        for item_id in range(len(payloads))
                                        if job.done[item_id] and item_id not in unusable
                                    },
                                    pending=[
                                        item_id
                                        for item_id in range(len(payloads))
                                        if not job.done[item_id] or item_id in unusable
                                    ],
                                )
                    else:
                        self._lock.wait()
            finally:
                self._job = None
                # Drop any unshipped items of an abandoned job so the next
                # job's queue starts clean.
                self._queue = deque(entry for entry in self._queue if entry[0] is not job)
        if job.failure is not None:
            raise RuntimeError(f"distributed {kind} execution failed: {job.failure}")
        if job.poisoned and kind != "task":
            # An exploration cannot proceed without its rows; campaign jobs
            # carry the quarantine inline as structured failure reports.
            item_id = job.poisoned[0]
            raise PoisonedItemError(item_id, job.attempts[item_id])
        return job.results

    # -- ExecutionBackend ----------------------------------------------
    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        """Evaluate campaign tasks on the worker daemons, in task order."""
        return self._run_job("task", tasks)  # type: ignore[return-value]

    def map_shards(self, payloads: Sequence[object]) -> List[object]:
        """Expand one BFS wave's shards on the worker daemons, in order."""
        return self._run_job("shard", payloads)

    def open_exploration(self, key: ExploreKey, n_shards: Optional[int] = None):
        """Open a stateful shard session for ``key`` on the live fleet.

        Waits for ``min_workers`` registrations (like the first job of the
        stateless route would), then fixes the logical shard count at
        ``max(n_shards, min_workers, live connections)`` — parallelism is
        re-read *here*, after the wait, so daemons that joined since the
        backend was constructed are visible to partitioning (the freeze
        footgun the stateless route's up-front ``parallelism`` read has).
        Idle connections enroll as session members and the shards are
        distributed round-robin; returns the session, or ``None`` when
        sessions are disabled (``sessions=False``).
        """
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        if not self._sessions_enabled:
            return None
        self._wait_for_workers(time.monotonic() + self.start_timeout)
        with self._lock:
            if self._job is not None or self._session is not None:
                raise RuntimeError("DistributedBackend runs one job at a time")
            shards = max(1, n_shards or 1, self.min_workers, self._live_workers)
            self._session_counter += 1
            session_id = f"{self.host}:{self.port}/{os.getpid()}#{self._session_counter}"
            session = _CoordSession(
                self, session_id, key, shards, self._snapshot_store, self.snapshot_every
            )
            self._session = session
            self.sessions_opened += 1
            self._lock.notify_all()  # wake idle pull loops to enroll
            # Enrollment is just thread wakeup; wait briefly for the idle
            # connections so the initial distribution spans the fleet
            # (latecomers still join elastically mid-exploration).
            deadline = time.monotonic() + min(5.0, self.start_timeout)
            while len(session._members) < min(shards, self._live_workers):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._lock.wait(timeout=remaining)
            if not session._members:
                self._session = None
                raise NoWorkersError(
                    f"no worker connection enrolled in the session at {self.address}"
                )
            members = list(session._members)
            for shard in range(shards):
                session._assign_locked(shard, members[shard % len(members)], cause="open")
            session._started = True
            self._lock.notify_all()
        return session

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop accepting, tell connected daemons to shut down, free the port."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        # Connection threads are daemonic and exit on the closed flag (or
        # their socket erroring); give them a moment so well-behaved
        # daemons receive their shutdown frame before we return.
        for thread in list(self._threads):
            thread.join(timeout=1.0)
        if self._owns_snapshot_store:
            self._snapshot_store.close()

    def __enter__(self) -> "DistributedBackend":
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker daemon
# ---------------------------------------------------------------------------
def _backoff_delays(
    *, base: float = 0.05, cap: float = 1.0, rng: Optional[random.Random] = None
) -> Iterator[float]:
    """Full-jitter exponential backoff delays: ``uniform(0, min(cap, base*2^n)]``.

    A fleet of daemons launched side by side (CI starts them in a loop)
    would otherwise retry a not-yet-bound coordinator port in lockstep;
    jitter decorrelates the retry storms.  ``rng`` is injectable so tests
    can assert the sequence deterministically.
    """
    rng = rng or random.Random()
    ceiling = base
    while True:
        yield rng.uniform(0.0, ceiling) or ceiling * 0.5
        ceiling = min(ceiling * 2, cap)


def _connect_with_retry(
    host: str, port: int, timeout: float, *, rng: Optional[random.Random] = None
) -> socket.socket:
    """Dial the coordinator, retrying until ``timeout`` elapses.

    Daemons may legitimately start before the coordinator binds its port
    (CI launches them side by side), so refused connections retry on a
    jittered exponential backoff instead of failing fast.
    """
    deadline = time.monotonic() + timeout
    delays = _backoff_delays(rng=rng)
    while True:
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(next(delays))


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    item_id: int,
    interval: float,
    stop: threading.Event,
) -> None:
    """Stream ``("heartbeat", item_id)`` frames until ``stop`` is set.

    Runs beside the evaluation so a deadline-aware coordinator can tell a
    long evaluation (heartbeats flowing) from a wedged worker (silence).
    Send failures just end the loop — the coordinator owns the connection
    verdict, not the heartbeat.
    """
    while not stop.wait(interval):
        try:
            with send_lock:
                send_message(sock, ("heartbeat", item_id))
        except OSError:
            return


def worker_connection_loop(
    host: str,
    port: int,
    *,
    connect_timeout: float = 60.0,
    heartbeat_interval: Optional[float] = None,
    faults: Optional["FaultPlan"] = None,
    worker_index: int = 0,
) -> Tuple[int, bool]:
    """One worker connection: register, pull work, stream results back.

    Runs in its own process (one per ``--workers`` slot), so the matcher
    tables :func:`~repro.engine.pool.process_cache` accumulates survive
    across every task and shard this connection ever evaluates — the
    distributed analogue of a pool worker's cache persistence.

    ``heartbeat_interval`` (seconds; ``None`` disables) streams
    ``heartbeat`` frames while an item is being evaluated.  ``faults`` and
    ``worker_index`` are the chaos hooks: the plan's ``worker.item`` site
    fires per pulled item (kill/hang/delay) and ``worker.result`` per
    outbound reply frame (corrupt).

    Returns ``(evaluated, orderly)``: the item count, and whether the loop
    ended via the coordinator's shutdown frame (``True``) or abnormally —
    connection loss, decode failure, injected wedge (``False``).
    """
    sock = _connect_with_retry(host, port, connect_timeout)
    send_lock = threading.Lock()
    evaluated = 0
    #: Resident session state: session id -> (ExploreKey, {shard: ResidentShard}).
    #: This is the whole point of the stateful route — the tables (and the
    #: process's matcher/system caches behind them) survive across waves.
    sessions: Dict[str, Tuple[ExploreKey, Dict[int, ResidentShard]]] = {}
    try:
        send_message(sock, ("hello", {"pid": os.getpid(), "host": socket.gethostname()}))
        while True:
            try:
                message = recv_message(sock)
            except Exception:  # noqa: BLE001 - treat any decode failure as loss
                return evaluated, False  # coordinator went away (or frame rot)
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "shutdown":
                return evaluated, True
            if message[0] == "open":
                sessions[message[1]] = (message[2], {})
                continue
            if message[0] == "snapshot":
                _tag, session_id, shard, table = message
                entry = sessions.get(session_id)
                if entry is not None:
                    if table is None:  # the shard moved away: drop it
                        entry[1].pop(shard, None)
                    else:
                        entry[1][shard] = ResidentShard(entry[0], table)
                continue
            if message[0] == "close":
                sessions.pop(message[1], None)
                continue
            if message[0] == "wave":
                _tag, session_id, wave_index, shard, entries = message
                fault = (
                    faults.fire("worker.item", item=wave_index, worker=worker_index)
                    if faults is not None
                    else None
                )
                if fault is not None and fault.action == "kill":
                    os._exit(17)  # the resident shard dies with the process
                if fault is not None and fault.action == "hang":
                    time.sleep(fault.seconds)
                    return evaluated, False
                stop = threading.Event()
                beat = None
                if heartbeat_interval is not None:
                    beat = threading.Thread(
                        target=_heartbeat_loop,
                        args=(sock, send_lock, wave_index, heartbeat_interval, stop),
                        name="worker-heartbeat",
                        daemon=True,
                    )
                    beat.start()
                try:
                    if fault is not None and fault.action == "delay":
                        time.sleep(fault.seconds)
                    try:
                        entry = sessions.get(session_id)
                        if entry is None:
                            raise ValueError(f"wave for unknown session {session_id!r}")
                        resident = entry[1].get(shard)
                        if resident is None:
                            raise ValueError(
                                f"wave for shard {shard} never installed by a snapshot frame"
                            )
                        rows, hit_miss, red_delta = resident.expand_wave(entries)
                    except Exception:  # noqa: BLE001 - shipped back, not swallowed
                        reply = ("error", wave_index, traceback.format_exc())
                    else:
                        reply = (
                            "wave_result",
                            session_id,
                            wave_index,
                            shard,
                            rows,
                            hit_miss,
                            red_delta,
                            resident.watermark,
                        )
                        evaluated += 1
                finally:
                    stop.set()
                    if beat is not None:
                        beat.join()
                frame = encode_frame(reply)
                if faults is not None:
                    frame = faults.frame_out(
                        "worker.result", frame, item=wave_index, worker=worker_index
                    )
                with send_lock:
                    sock.sendall(frame)
                continue
            if message[0] != "work":
                continue
            _tag, item_id, kind, payload = message
            fault = (
                faults.fire("worker.item", item=item_id, worker=worker_index)
                if faults is not None
                else None
            )
            if fault is not None and fault.action == "kill":
                os._exit(17)  # poison payload: die with the frame unflushed
            if fault is not None and fault.action == "hang":
                # A wedged worker from the coordinator's viewpoint: no
                # heartbeats, no result, connection still open.
                time.sleep(fault.seconds)
                return evaluated, False
            stop = threading.Event()
            beat: Optional[threading.Thread] = None
            if heartbeat_interval is not None:
                beat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(sock, send_lock, item_id, heartbeat_interval, stop),
                    name="worker-heartbeat",
                    daemon=True,
                )
                beat.start()
            try:
                if fault is not None and fault.action == "delay":
                    # Slow but alive: heartbeats keep flowing through the
                    # sleep, so a deadline-aware coordinator must wait.
                    time.sleep(fault.seconds)
                try:
                    if kind == "task":
                        value = run_task(payload)
                    elif kind == "shard":
                        value = expand_shard(payload)
                    else:
                        raise ValueError(f"unknown work kind {kind!r}")
                except Exception:  # noqa: BLE001 - shipped back, not swallowed
                    reply = ("error", item_id, traceback.format_exc())
                else:
                    reply = ("result", item_id, value)
                    evaluated += 1
            finally:
                # The result frame must never interleave with a heartbeat:
                # stop the beat and join before taking the send lock.
                stop.set()
                if beat is not None:
                    beat.join()
            frame = encode_frame(reply)
            if faults is not None:
                frame = faults.frame_out("worker.result", frame, item=item_id, worker=worker_index)
            with send_lock:
                sock.sendall(frame)
    finally:
        sock.close()


def _worker_process_main(
    host: str,
    port: int,
    *,
    connect_timeout: float,
    heartbeat_interval: Optional[float],
    faults: Optional["FaultPlan"],
    worker_index: int,
) -> None:
    """Process target wrapping :func:`worker_connection_loop`.

    Maps the loop's ``orderly`` flag onto the process exit code (0 orderly
    shutdown, 1 abnormal end) so the parent daemon — and through it the
    ``worker`` CLI — can report connection loops that died without a
    shutdown frame.
    """
    _evaluated, orderly = worker_connection_loop(
        host,
        port,
        connect_timeout=connect_timeout,
        heartbeat_interval=heartbeat_interval,
        faults=faults,
        worker_index=worker_index,
    )
    raise SystemExit(0 if orderly else 1)


@dataclass(frozen=True)
class WorkerStatus:
    """One worker process's state as reported by :meth:`WorkerDaemon.join`."""

    pid: Optional[int]
    alive: bool
    exitcode: Optional[int]


class WorkerDaemon:
    """N worker connections to one coordinator, each in its own process.

    The object the ``worker`` CLI subcommand drives, and the in-process
    handle tests and benchmarks use.  Spawning is all-or-nothing: if the
    ``i``-th worker process fails to start, the ``i-1`` already running are
    terminated and joined before the error propagates — a partially
    started daemon never leaks processes.

    ``heartbeat_interval`` is threaded to every connection loop (see
    :func:`worker_connection_loop`); ``faults`` ships a pickled
    :class:`~repro.engine.faults.FaultPlan` into each worker process, with
    ``worker_index`` set to the process's slot so plans can target
    "worker 1" specifically.
    """

    def __init__(
        self,
        host: str,
        port: int,
        workers: int = 1,
        *,
        connect_timeout: float = 60.0,
        heartbeat_interval: Optional[float] = 5.0,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.port = port
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.faults = faults
        self.processes: list = []

    def start(self) -> "WorkerDaemon":
        import multiprocessing

        context = multiprocessing.get_context()
        try:
            for index in range(self.workers):
                process = context.Process(
                    target=_worker_process_main,
                    args=(self.host, self.port),
                    kwargs={
                        "connect_timeout": self.connect_timeout,
                        "heartbeat_interval": self.heartbeat_interval,
                        "faults": self.faults,
                        "worker_index": index,
                    },
                    daemon=True,
                )
                self.processes.append(process)
                process.start()
        except BaseException:
            self.terminate()
            raise
        return self

    def join(self, timeout: Optional[float] = None) -> List[WorkerStatus]:
        """Wait for the worker processes to exit (orderly shutdown).

        Returns the :class:`WorkerStatus` of every process that had not
        exited when the (optional) timeout ran out — an empty list means a
        clean join.  Callers shutting a fleet down can therefore *name*
        the stragglers (pid and aliveness) instead of hanging silently.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for process in self.processes:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            process.join(remaining)
        return [
            WorkerStatus(pid=process.pid, alive=process.is_alive(), exitcode=process.exitcode)
            for process in self.processes
            if process.is_alive()
        ]

    def statuses(self) -> List[WorkerStatus]:
        """A point-in-time status snapshot of every worker process."""
        return [
            WorkerStatus(pid=process.pid, alive=process.is_alive(), exitcode=process.exitcode)
            for process in self.processes
        ]

    def terminate(self) -> None:
        """Hard-stop every worker process that is still alive."""
        for process in self.processes:
            if process.pid is not None and process.is_alive():
                process.terminate()
        for process in self.processes:
            if process.pid is not None:
                process.join(timeout=5.0)
        self.processes = []

    @property
    def alive(self) -> int:
        return sum(1 for process in self.processes if process.is_alive())

    def __enter__(self) -> "WorkerDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()


def run_worker(
    host: str,
    port: int,
    workers: int = 1,
    *,
    connect_timeout: float = 60.0,
    heartbeat_interval: Optional[float] = 5.0,
) -> int:
    """Blocking daemon entry point: serve until the coordinator shuts us down.

    Exits 0 only if every connection loop ended on an orderly shutdown
    frame; a loop that died abnormally (connection loss, frame rot, crash)
    makes the daemon exit 1 and name the culprits on stderr, so a babysat
    fleet (systemd, CI) notices worker attrition instead of hiding it.
    """
    daemon = WorkerDaemon(
        host, port, workers, connect_timeout=connect_timeout, heartbeat_interval=heartbeat_interval
    )
    daemon.start()
    try:
        daemon.join()
        abnormal = [
            status for status in daemon.statuses() if status.exitcode not in (0, None)
        ]
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        daemon.terminate()
        return 130
    finally:
        daemon.terminate()
    if abnormal:
        detail = ", ".join(f"pid {s.pid} exit {s.exitcode}" for s in abnormal)
        print(f"worker daemon: {len(abnormal)} connection loop(s) died abnormally: {detail}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _parse_endpoint(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _smoke(daemons: int, workers_per_daemon: int, verbose: bool) -> int:
    """The CI smoke check: distributed vs serial verdict parity.

    Starts a coordinator on an ephemeral port, launches ``daemons`` worker
    daemons through the real CLI (``python -m repro.engine.distributed
    worker --connect ...``, each its own OS process tree), runs a tiny
    exhaustive sweep through the :class:`DistributedBackend`, and compares
    the reports against the serial engine's.  Exits nonzero on any
    divergence — this is the job CI runs on every push.
    """
    import subprocess

    from ..algorithms import get
    from .campaign import ParallelCampaignEngine

    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(2, 3), (3, 3), (3, 4)]
    serial = ParallelCampaignEngine(workers=1).exhaustive_sweep(
        algorithm, sizes=sizes, model="FSYNC", reduction="grid"
    )
    with DistributedBackend(min_workers=daemons) as backend:
        command = [
            sys.executable,
            "-m",
            "repro.engine.distributed",
            "worker",
            "--connect",
            backend.address,
            "--workers",
            str(workers_per_daemon),
        ]
        print(f"coordinator listening on {backend.address}")
        print(f"launching {daemons} daemon(s): {' '.join(command)}")
        procs = [subprocess.Popen(command) for _ in range(daemons)]
        try:
            distributed = ParallelCampaignEngine(backend=backend).exhaustive_sweep(
                algorithm, sizes=sizes, model="FSYNC", reduction="grid"
            )
        finally:
            backend.close()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
    if verbose:
        for serial_report, dist_report in zip(serial.reports, distributed.reports):
            marker = "==" if serial_report == dist_report else "!!"
            print(f"  {marker} {dist_report}")
    if distributed.reports != serial.reports:
        print("FAIL: distributed reports diverged from the serial engine", file=sys.stderr)
        return 1
    print(
        f"OK: {len(distributed.reports)} exhaustive-check reports identical to the serial"
        f" engine across {backend.workers_ever} worker connection(s)"
    )
    return 0


def _chaos(verbose: bool) -> int:
    """The CI chaos check: verdict parity under injected faults.

    Three scenarios, each compared against a serial baseline:

    1. **Worker kill mid-wave** — a 2-worker in-process daemon whose
       worker 0 hard-exits on the first item it pulls; the coordinator
       must retry the orphaned item on the survivor and still produce
       byte-identical reports.
    2. **Coordinator crash + journal resume** — a journalled sweep whose
       coordinator is killed after two durable appends; a second engine
       pointed at the same journal must resume and produce byte-identical
       reports without recomputing the journaled verdicts.
    3. **Session kill + restore from snapshot** — a stateful shard
       session whose worker 0 hard-exits on a wave frame; the dead
       worker's shard must be restored from its checkpointed snapshot
       onto the survivor mid-wave, and the merged exploration must stay
       byte-identical to the serial explorer's.
    """
    import tempfile

    from ..algorithms import get
    from .campaign import ParallelCampaignEngine
    from .faults import FaultInjected, FaultPlan
    from .journal import CampaignJournal

    algorithm = get("fsync_phi2_l2_chir_k2")
    sizes = [(2, 3), (3, 3), (3, 4), (4, 3)]
    sweep = dict(sizes=sizes, model="FSYNC", reduction="grid")
    serial = ParallelCampaignEngine(workers=1).exhaustive_sweep(algorithm, **sweep)

    def report_parity(label: str, campaign) -> bool:
        if verbose:
            for serial_report, chaos_report in zip(serial.reports, campaign.reports):
                marker = "==" if serial_report == chaos_report else "!!"
                print(f"  {marker} {chaos_report}")
        if campaign.reports != serial.reports:
            print(f"FAIL [{label}]: reports diverged from the serial engine", file=sys.stderr)
            return False
        print(f"OK [{label}]: {len(campaign.reports)} reports identical to the serial engine")
        return True

    # Scenario 1: worker 0 dies on its first pulled item; survivor finishes.
    plan = FaultPlan(seed=7).kill_worker(index=0, worker=0)
    with DistributedBackend(min_workers=2, item_timeout=30.0) as backend:
        with WorkerDaemon(
            backend.host, backend.port, workers=2, heartbeat_interval=0.5, faults=plan
        ).start():
            campaign = ParallelCampaignEngine(backend=backend).exhaustive_sweep(algorithm, **sweep)
        stats = backend.stats
    if not report_parity("worker-kill", campaign):
        return 1
    if stats["retries_total"] < 1:
        print("FAIL [worker-kill]: the injected kill never triggered a retry", file=sys.stderr)
        return 1
    print(f"OK [worker-kill]: backend stats {stats}")

    # Scenario 2: coordinator crashes after 2 journaled verdicts; resume.
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "chaos.journal")
        crash_plan = FaultPlan().crash_coordinator(after_records=2)
        try:
            with CampaignJournal(journal_path, faults=crash_plan) as journal:
                ParallelCampaignEngine(workers=1).exhaustive_sweep(
                    algorithm, journal=journal, **sweep
                )
        except FaultInjected:
            pass
        else:
            print("FAIL [journal-resume]: injected coordinator crash never fired", file=sys.stderr)
            return 1
        with CampaignJournal(journal_path) as journal:
            survived = len(journal)
            if survived < 1:
                print("FAIL [journal-resume]: no verdicts survived the crash", file=sys.stderr)
                return 1
            campaign = ParallelCampaignEngine(workers=1).exhaustive_sweep(
                algorithm, journal=journal, **sweep
            )
    if not report_parity("journal-resume", campaign):
        return 1
    print(f"OK [journal-resume]: resumed from {survived} journaled verdict(s)")

    # Scenario 3: stateful session — worker 0 dies on a wave frame; its
    # shard is restored from the checkpointed snapshot onto the survivor.
    from ..core.grid import Grid
    from .sharded import explore_sharded

    grid = Grid(4, 4)
    baseline = explore_sharded(algorithm, grid, "FSYNC", workers=1)
    plan = FaultPlan(seed=11).kill_worker(index=1, worker=0)
    with DistributedBackend(min_workers=2, item_timeout=30.0) as backend:
        with WorkerDaemon(
            backend.host, backend.port, workers=2, heartbeat_interval=0.5, faults=plan
        ).start():
            exploration = explore_sharded(algorithm, grid, "FSYNC", backend=backend)
        stats = backend.stats
    if (
        exploration.states != baseline.states
        or exploration.succ != baseline.succ
        or exploration.index != baseline.index
    ):
        print(
            "FAIL [session-restore]: stateful exploration diverged from the serial engine",
            file=sys.stderr,
        )
        return 1
    if stats["sessions_opened"] < 1:
        print("FAIL [session-restore]: the stateful session route never engaged", file=sys.stderr)
        return 1
    if stats["snapshots_restored"] + stats["shards_repartitioned"] < 1:
        print(
            "FAIL [session-restore]: the injected kill never triggered shard recovery",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK [session-restore]: {exploration.num_states} states identical to the serial"
        f" engine after shard recovery; backend stats {stats}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.distributed",
        description="TCP worker daemons for distributed verification campaigns.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    worker = subcommands.add_parser("worker", help="serve a coordinator until shut down")
    worker.add_argument(
        "--connect",
        type=_parse_endpoint,
        required=True,
        metavar="HOST:PORT",
        help="coordinator endpoint (DistributedBackend.address)",
    )
    worker.add_argument(
        "--workers", type=int, default=1, help="worker processes (connections) to run"
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=60.0,
        help="seconds to keep retrying the initial connection",
    )

    worker.add_argument(
        "--heartbeat",
        type=float,
        default=5.0,
        help="seconds between heartbeat frames while evaluating (0 disables)",
    )

    smoke = subcommands.add_parser(
        "smoke", help="launch local daemons and assert distributed == serial verdicts"
    )
    smoke.add_argument("--daemons", type=int, default=2, help="worker daemons to launch")
    smoke.add_argument("--workers", type=int, default=1, help="worker processes per daemon")
    smoke.add_argument("--verbose", action="store_true", help="print every report pair")

    chaos = subcommands.add_parser(
        "chaos",
        help="inject worker kills and a coordinator crash; assert verdict parity and resume",
    )
    chaos.add_argument("--verbose", action="store_true", help="print every report pair")

    args = parser.parse_args(argv)
    # Resolve entry points off the canonically imported module: under
    # ``python -m`` this file executes as ``__main__``, and spawned worker
    # processes must reference picklable, importable functions.
    from repro.engine import distributed as canonical

    if args.command == "worker":
        host, port = args.connect
        return canonical.run_worker(
            host,
            port,
            args.workers,
            connect_timeout=args.connect_timeout,
            heartbeat_interval=args.heartbeat or None,
        )
    if args.command == "chaos":
        return canonical._chaos(args.verbose)
    return canonical._smoke(args.daemons, args.workers, args.verbose)


if __name__ == "__main__":
    raise SystemExit(main())
