"""Pluggable execution backends for campaigns and sharded exploration.

Every parallel consumer in the engine funnels its work through two
primitive shapes, both picklable by construction since PR 3/4:

* **campaign tasks** — :class:`~repro.engine.campaign.CampaignTask` work
  items executed by :func:`~repro.engine.campaign.run_task`, each a pure
  function of the task (algorithms travel by registry name, runs are
  driven by explicit seeds);
* **shard payloads** — ``(ExploreKey, [states])`` slices of one BFS wave
  expanded by :func:`~repro.engine.pool.expand_shard`, which rebuilds the
  transition system and reduction pipeline from the specs in the key —
  including the successor-kernel slot added in PR 6 (``"object"`` /
  ``"packed"``; legacy five-slot keys still work and mean the object
  kernel, so a new coordinator can talk to old daemons and vice versa).

An :class:`ExecutionBackend` is anything that can evaluate those two
shapes and hand the results back *in submission order*:

* :class:`SerialBackend` — in the calling process, on one persistent
  :class:`~repro.engine.matcher.MatcherCache`;
* :class:`PoolBackend` — on a (possibly shared) long-lived
  :class:`~repro.engine.pool.ExplorationPool`, one machine;
* :class:`~repro.engine.distributed.DistributedBackend` — on TCP worker
  daemons that may live on other machines (see
  :mod:`repro.engine.distributed`).

Because the work shapes are pure functions of their payloads and every
backend returns results in submission order, swapping the backend never
changes a report or an exploration: the campaign engine merges reports by
task index and the sharded coordinator replays successor rows in serial
BFS order, so the output is the one the serial engine produces.  (The
only fields that may differ are the cache hit/miss counters, which are
excluded from report equality for exactly this reason.)

``backend=`` is accepted — and takes precedence over ``pool=`` /
``workers=`` — on :class:`~repro.engine.campaign.ParallelCampaignEngine`,
:func:`~repro.engine.sharded.explore_sharded`, the three
:mod:`repro.checking` entry points, the :mod:`repro.verification`
campaigns and the :mod:`repro.analysis.scaling` sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from .campaign import CampaignTask, VerificationReport, run_task
from .matcher import MatcherCache
from .pool import ExploreKey, ExplorationPool, expand_shard, process_cache
from .states import SchedulerState

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "ShardPayload",
    "ShardResult",
    "backend_cache",
]

#: One shard of a BFS wave: the exploration context plus the states to
#: expand (the input of :func:`repro.engine.pool.expand_shard`).
ShardPayload = Tuple[ExploreKey, List[SchedulerState]]

#: One expanded shard: successor rows in input order, the matcher
#: hit/miss delta, and the reduction-counter delta (the output of
#: :func:`repro.engine.pool.expand_shard`).
ShardResult = Tuple[list, Tuple[int, int], Dict[str, int]]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where campaign tasks and exploration shards actually run.

    Implementations promise that :meth:`run_tasks` and :meth:`map_shards`
    return one result per submitted item, *in submission order*, each the
    value the corresponding worker function (``run_task`` /
    ``expand_shard``) produces for that item — regardless of which worker
    evaluated it, in which order, or how many times a failed attempt was
    retried.  That ordering contract is what lets every consumer stay
    byte-identical to the serial engine.
    """

    #: How many items the backend can usefully evaluate concurrently; the
    #: sharded explorer uses this as its wave shard count.
    parallelism: int

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        """Evaluate campaign tasks; reports come back in task order."""
        ...

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        """Expand one BFS wave's shards; results come back in payload order."""
        ...

    def close(self) -> None:
        """Release workers/sockets; the backend cannot be used afterwards."""
        ...

    def __enter__(self) -> "ExecutionBackend": ...

    def __exit__(self, exc_type, exc, tb) -> None: ...


class SerialBackend:
    """Evaluate everything in the calling process, on one persistent cache.

    The reference implementation of the backend contract: tasks and shards
    run through the very same worker functions the parallel backends ship
    out (:func:`~repro.engine.campaign.run_task`,
    :func:`~repro.engine.pool.expand_shard`), so its results *are* the
    parity baseline the other backends are tested against.  Matching runs
    against this process's persistent
    :func:`~repro.engine.pool.process_cache`, exactly as it would inside a
    pool worker — the backend equivalent of a one-worker pool that stays
    warm across workloads.
    """

    def __init__(self) -> None:
        self.parallelism = 1
        self._closed = False

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        self._check_open()
        return [run_task(task) for task in tasks]

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        self._check_open()
        return [expand_shard(payload) for payload in payloads]

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "SerialBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PoolBackend:
    """Evaluate on a persistent :class:`~repro.engine.pool.ExplorationPool`.

    Wraps an existing pool (not closed with the backend — it may be shared
    with other consumers) or owns a fresh one built from ``workers=``
    (closed with the backend).  Tasks and shards run on the pool's
    long-lived workers, whose per-process matcher caches stay warm across
    workloads; ``pool.map`` preserves submission order, which discharges
    the ordering contract.
    """

    def __init__(
        self,
        pool: Optional[ExplorationPool] = None,
        *,
        workers: Optional[int] = None,
    ) -> None:
        if pool is not None and workers is not None and workers != pool.workers:
            raise ValueError("pass either an existing pool or a workers count, not both")
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ExplorationPool(workers=workers)
        self._closed = False

    @property
    def parallelism(self) -> int:
        return self.pool.workers

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        self._check_open()
        return self.pool.map(run_task, tasks, chunksize=4)

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        self._check_open()
        return self.pool.map(expand_shard, payloads)

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "PoolBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def backend_cache(backend) -> Optional[MatcherCache]:
    """The in-process cache of ``backend``, when it has one.

    Serial fallbacks (unregistered ad-hoc algorithms cannot cross a
    process boundary) run in the calling process; routing them onto the
    backend's own cache — the pool's coordinator cache for
    :class:`PoolBackend`, this process's
    :func:`~repro.engine.pool.process_cache` for :class:`SerialBackend`
    (whose "worker" *is* this process) — keeps them as warm as the
    backend's registered workloads.  Backends without an in-process cache
    (TCP daemons keep theirs remote) return ``None`` and the caller falls
    back to a fresh/explicit cache.
    """
    if isinstance(backend, SerialBackend):
        return process_cache()
    pool = getattr(backend, "pool", None)
    if isinstance(pool, ExplorationPool):
        return pool.cache
    return None
