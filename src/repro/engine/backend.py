"""Pluggable execution backends for campaigns and sharded exploration.

Every parallel consumer in the engine funnels its work through two
primitive shapes, both picklable by construction since PR 3/4:

* **campaign tasks** — :class:`~repro.engine.campaign.CampaignTask` work
  items executed by :func:`~repro.engine.campaign.run_task`, each a pure
  function of the task (algorithms travel by registry name, runs are
  driven by explicit seeds);
* **shard payloads** — ``(ExploreKey, [states])`` slices of one BFS wave
  expanded by :func:`~repro.engine.pool.expand_shard`, which rebuilds the
  transition system and reduction pipeline from the specs in the key —
  including the successor-kernel slot added in PR 6 (``"object"`` /
  ``"packed"``; legacy five-slot keys still work and mean the object
  kernel, so a new coordinator can talk to old daemons and vice versa).

An :class:`ExecutionBackend` is anything that can evaluate those two
shapes and hand the results back *in submission order*:

* :class:`SerialBackend` — in the calling process, on one persistent
  :class:`~repro.engine.matcher.MatcherCache`;
* :class:`PoolBackend` — on a (possibly shared) long-lived
  :class:`~repro.engine.pool.ExplorationPool`, one machine;
* :class:`~repro.engine.distributed.DistributedBackend` — on TCP worker
  daemons that may live on other machines (see
  :mod:`repro.engine.distributed`).

Because the work shapes are pure functions of their payloads and every
backend returns results in submission order, swapping the backend never
changes a report or an exploration: the campaign engine merges reports by
task index and the sharded coordinator replays successor rows in serial
BFS order, so the output is the one the serial engine produces.  (The
only fields that may differ are the cache hit/miss counters, which are
excluded from report equality for exactly this reason.)

``backend=`` is accepted — and takes precedence over ``pool=`` /
``workers=`` — on :class:`~repro.engine.campaign.ParallelCampaignEngine`,
:func:`~repro.engine.sharded.explore_sharded`, the three
:mod:`repro.checking` entry points, the :mod:`repro.verification`
campaigns and the :mod:`repro.analysis.scaling` sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from .campaign import CampaignTask, VerificationReport, run_task
from .matcher import MatcherCache
from .pool import ExploreKey, ExplorationPool, expand_shard, process_cache
from .states import SchedulerState

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "FallbackBackend",
    "FleetLostError",
    "NoWorkersError",
    "PoisonedItemError",
    "ShardFrontier",
    "ShardPayload",
    "ShardResult",
    "ShardSession",
    "backend_cache",
]

#: One shard of a BFS wave: the exploration context plus the states to
#: expand (the input of :func:`repro.engine.pool.expand_shard`).
ShardPayload = Tuple[ExploreKey, List[SchedulerState]]

#: One expanded shard: successor rows in input order, the matcher
#: hit/miss delta, and the reduction-counter delta (the output of
#: :func:`repro.engine.pool.expand_shard`).
ShardResult = Tuple[list, Tuple[int, int], Dict[str, int]]

#: One wave's frontier for a stateful session: ``(shard_id, states)``
#: slices in shard-id order, occupied shards only.  Shard ids are the
#: coordinator's hash-partition indices in ``range(session.n_shards)``.
ShardFrontier = List[Tuple[int, List[SchedulerState]]]


@runtime_checkable
class ShardSession(Protocol):
    """A stateful exploration session: resident shards, delta-only waves.

    Returned by :meth:`ExecutionBackend.open_exploration` on backends that
    can keep per-shard state resident between BFS waves (today the TCP
    :class:`~repro.engine.distributed.DistributedBackend`).  The shard
    count is fixed at :attr:`n_shards` for the session's lifetime — hash
    partitioning bakes it into every wave — while *where* each logical
    shard lives may change underneath (worker leave/join; see
    :mod:`repro.engine.distributed`).

    :meth:`advance_wave` takes the wave's frontier as full states and
    returns one :data:`ShardResult` per frontier slice, in input order,
    with full-state successor rows — exactly the values
    :meth:`ExecutionBackend.map_shards` would produce for the equivalent
    ``(key, states)`` payloads.  Any wire-level compression (reference
    tables, watermarks) is internal to the session; the sharded
    coordinator merges both routes with the same code, which is the
    byte-identical-merge argument (see ``docs/architecture.md``).
    """

    #: The fixed logical shard count the coordinator must partition by.
    n_shards: int

    def advance_wave(self, frontier: ShardFrontier) -> List[ShardResult]:
        """Expand one BFS wave; results align with the frontier slices."""
        ...

    def wire_stats(self) -> Dict[str, int]:
        """Cumulative wire counters (``bytes_sent`` / ``bytes_received`` /
        ``rows_exchanged`` / ``waves``) for this session so far."""
        ...

    def close(self) -> None:
        """End the session and release its resident shard state."""
        ...


# ---------------------------------------------------------------------------
# Structured execution failures (raised by the distributed backend, handled
# by the fallback policy below)
# ---------------------------------------------------------------------------
class NoWorkersError(TimeoutError):
    """No worker ever registered within the start timeout.

    A :class:`TimeoutError` subclass (the exception this condition always
    raised), but now a *named* one so a fallback policy can catch "the
    fleet never showed up" without matching message strings.
    """


class FleetLostError(RuntimeError):
    """Every worker died mid-job and none rejoined within the grace window.

    Carries the partial progress so a fallback policy can *finish* the job
    instead of recomputing it: ``completed`` maps item id to the result
    already collected, ``pending`` lists the item ids still outstanding
    (in submission order), and ``kind`` is the job's work shape
    (``"task"`` / ``"shard"``).
    """

    def __init__(self, message: str, *, kind: str, completed: Dict[int, object], pending: List[int]) -> None:
        super().__init__(message)
        self.kind = kind
        self.completed = dict(completed)
        self.pending = list(pending)


class PoisonedItemError(RuntimeError):
    """An item exhausted its retry budget by killing every worker that took it.

    Raised for shard jobs (an exploration cannot proceed without the
    shard's rows); task jobs instead absorb the poison as a structured
    failure report for that one item.  ``attempts`` names every attempt —
    which worker took the item and how that attempt died.
    """

    def __init__(self, item_id: int, attempts: Sequence[str]) -> None:
        self.item_id = item_id
        self.attempts = tuple(attempts)
        detail = "; ".join(self.attempts)
        super().__init__(
            f"item {item_id} poisoned its workers: {len(self.attempts)} failed attempt(s)"
            f" exhausted the retry budget ({detail})"
        )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where campaign tasks and exploration shards actually run.

    Implementations promise that :meth:`run_tasks` and :meth:`map_shards`
    return one result per submitted item, *in submission order*, each the
    value the corresponding worker function (``run_task`` /
    ``expand_shard``) produces for that item — regardless of which worker
    evaluated it, in which order, or how many times a failed attempt was
    retried.  That ordering contract is what lets every consumer stay
    byte-identical to the serial engine.
    """

    #: How many items the backend can usefully evaluate concurrently; the
    #: sharded explorer uses this as its wave shard count.
    parallelism: int

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        """Evaluate campaign tasks; reports come back in task order."""
        ...

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        """Expand one BFS wave's shards; results come back in payload order."""
        ...

    def open_exploration(
        self, key: ExploreKey, n_shards: Optional[int] = None
    ) -> Optional[ShardSession]:
        """Open a stateful :class:`ShardSession` for ``key``, or ``None``.

        ``None`` means "this backend has no resident-state advantage" (the
        serial and pool backends: their workers already keep caches warm
        and pay no wire bytes) and the caller should stay on the stateless
        :meth:`map_shards` route.  ``n_shards`` is a floor on the logical
        shard count; a session may choose more (one per live worker).
        """
        ...

    def close(self) -> None:
        """Release workers/sockets; the backend cannot be used afterwards."""
        ...

    def __enter__(self) -> "ExecutionBackend": ...

    def __exit__(self, exc_type, exc, tb) -> None: ...


class SerialBackend:
    """Evaluate everything in the calling process, on one persistent cache.

    The reference implementation of the backend contract: tasks and shards
    run through the very same worker functions the parallel backends ship
    out (:func:`~repro.engine.campaign.run_task`,
    :func:`~repro.engine.pool.expand_shard`), so its results *are* the
    parity baseline the other backends are tested against.  Matching runs
    against this process's persistent
    :func:`~repro.engine.pool.process_cache`, exactly as it would inside a
    pool worker — the backend equivalent of a one-worker pool that stays
    warm across workloads.
    """

    def __init__(self) -> None:
        self.parallelism = 1
        self._closed = False

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        self._check_open()
        return [run_task(task) for task in tasks]

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        self._check_open()
        return [expand_shard(payload) for payload in payloads]

    def open_exploration(
        self, key: ExploreKey, n_shards: Optional[int] = None
    ) -> Optional[ShardSession]:
        # No wire to save bytes on: the serial route *is* the resident
        # state.  Callers fall back to map_shards.
        self._check_open()
        return None

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "SerialBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PoolBackend:
    """Evaluate on a persistent :class:`~repro.engine.pool.ExplorationPool`.

    Wraps an existing pool (not closed with the backend — it may be shared
    with other consumers) or owns a fresh one built from ``workers=``
    (closed with the backend).  Tasks and shards run on the pool's
    long-lived workers, whose per-process matcher caches stay warm across
    workloads; ``pool.map`` preserves submission order, which discharges
    the ordering contract.
    """

    def __init__(
        self,
        pool: Optional[ExplorationPool] = None,
        *,
        workers: Optional[int] = None,
    ) -> None:
        if pool is not None and workers is not None and workers != pool.workers:
            raise ValueError("pass either an existing pool or a workers count, not both")
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ExplorationPool(workers=workers)
        self._closed = False

    @property
    def parallelism(self) -> int:
        return self.pool.workers

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        self._check_open()
        return self.pool.map(run_task, tasks, chunksize=4)

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        self._check_open()
        return self.pool.map(expand_shard, payloads)

    def open_exploration(
        self, key: ExploreKey, n_shards: Optional[int] = None
    ) -> Optional[ShardSession]:
        # ``multiprocessing.Pool`` cannot pin work to a specific worker, so
        # per-shard resident state cannot live pool-side; the stateless
        # route already keeps the matcher caches warm per process.
        self._check_open()
        return None

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "PoolBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FallbackBackend:
    """Finish a job locally when the primary backend loses its fleet.

    The opt-in graceful-degradation policy: wraps a *primary* backend
    (typically the TCP :class:`~repro.engine.distributed.DistributedBackend`)
    and a local *fallback* (a fresh :class:`SerialBackend` by default; pass
    a :class:`PoolBackend` to degrade onto the local pool instead).  When
    the primary raises :class:`NoWorkersError` (the fleet never arrived) or
    :class:`FleetLostError` (the fleet died mid-job), the fallback
    evaluates only the *outstanding* items and the results are merged with
    whatever the primary completed — legal because both work shapes are
    pure functions of their payloads, so where an item ran is unobservable
    in the output.

    Degradations are counted in :attr:`stats` (``fallback_jobs`` /
    ``fallback_items``) rather than raised: a sweep that limps home on the
    local machine reports *that it did so*, but still reports.
    :class:`~PoisonedItemError` is deliberately **not** absorbed — a
    payload that killed every remote worker that touched it must not be
    handed to the local process.
    """

    def __init__(self, primary, fallback=None) -> None:
        self.primary = primary
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.stats: Dict[str, int] = {"fallback_jobs": 0, "fallback_items": 0}
        self._closed = False

    @property
    def parallelism(self) -> int:
        return self.primary.parallelism

    def _finish(self, kind: str, payloads: Sequence[object], exc) -> List[object]:
        completed = getattr(exc, "completed", {})
        pending = getattr(exc, "pending", None)
        if pending is None:  # NoWorkersError: nothing ever ran
            pending = list(range(len(payloads)))
        remainder = [payloads[item_id] for item_id in pending]
        if kind == "task":
            finished = self.fallback.run_tasks(remainder)
        else:
            finished = self.fallback.map_shards(remainder)
        self.stats["fallback_jobs"] += 1
        self.stats["fallback_items"] += len(remainder)
        results: List[object] = [None] * len(payloads)
        for item_id, value in completed.items():
            results[item_id] = value
        for item_id, value in zip(pending, finished):
            results[item_id] = value
        return results

    def run_tasks(self, tasks: Sequence[CampaignTask]) -> List[VerificationReport]:
        self._check_open()
        tasks = list(tasks)
        try:
            return self.primary.run_tasks(tasks)
        except (NoWorkersError, FleetLostError) as exc:
            return self._finish("task", tasks, exc)  # type: ignore[return-value]

    def map_shards(self, payloads: Sequence[ShardPayload]) -> List[ShardResult]:
        self._check_open()
        payloads = list(payloads)
        try:
            return self.primary.map_shards(payloads)
        except (NoWorkersError, FleetLostError) as exc:
            return self._finish("shard", payloads, exc)  # type: ignore[return-value]

    def open_exploration(
        self, key: ExploreKey, n_shards: Optional[int] = None
    ) -> Optional[ShardSession]:
        """Open a degradable session on the primary, or ``None``.

        A fleet that never arrives (:class:`NoWorkersError` at open) means
        no session — the caller takes the stateless route, whose every
        ``map_shards`` call this wrapper already degrades.  A session that
        *does* open is wrapped so a mid-exploration fleet loss switches
        the remaining waves onto the local fallback instead of raising:
        legal because :meth:`ShardSession.advance_wave` speaks full states
        at the API boundary (compression is wire-internal), so the wave
        the session could not finish is simply re-expanded locally.
        """
        self._check_open()
        opener = getattr(self.primary, "open_exploration", None)
        if opener is None:
            return None
        try:
            session = opener(key, n_shards)
        except (NoWorkersError, FleetLostError):
            return None
        if session is None:
            return None
        return _DegradingSession(self, key, session)

    # -- lifecycle -----------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.primary.close()
        finally:
            self.fallback.close()

    def __enter__(self) -> "FallbackBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _DegradingSession:
    """A :class:`ShardSession` that finishes locally when the fleet dies.

    Wraps the primary backend's session for :class:`FallbackBackend`.
    While the primary is healthy every call passes straight through; the
    first :class:`FleetLostError`/:class:`NoWorkersError` out of
    ``advance_wave`` closes the remote session and pins this wrapper to
    the fallback backend's stateless ``map_shards`` for the rest of the
    exploration.  The shard count must not change on degradation — hash
    partitioning fixed it at open — so the fallback expands the same
    frontier slices the session would have.
    """

    def __init__(self, owner: FallbackBackend, key: ExploreKey, session: ShardSession) -> None:
        self._owner = owner
        self._key = key
        self._session = session
        self.n_shards = session.n_shards
        self._degraded = False
        self._wire: Dict[str, int] = {}

    def advance_wave(self, frontier: ShardFrontier) -> List[ShardResult]:
        if not self._degraded:
            try:
                return self._session.advance_wave(frontier)
            except (NoWorkersError, FleetLostError):
                self._degrade()
        self._owner.stats["fallback_items"] += len(frontier)
        return self._owner.fallback.map_shards(
            [(self._key, states) for _, states in frontier]
        )

    def _degrade(self) -> None:
        self._degraded = True
        self._owner.stats["fallback_jobs"] += 1
        try:
            self._wire = dict(self._session.wire_stats())
            self._session.close()
        except Exception:  # noqa: BLE001 - the fleet is already gone
            pass

    def wire_stats(self) -> Dict[str, int]:
        return dict(self._wire) if self._degraded else dict(self._session.wire_stats())

    def close(self) -> None:
        if not self._degraded:
            self._session.close()


def backend_cache(backend) -> Optional[MatcherCache]:
    """The in-process cache of ``backend``, when it has one.

    Serial fallbacks (unregistered ad-hoc algorithms cannot cross a
    process boundary) run in the calling process; routing them onto the
    backend's own cache — the pool's coordinator cache for
    :class:`PoolBackend`, this process's
    :func:`~repro.engine.pool.process_cache` for :class:`SerialBackend`
    (whose "worker" *is* this process) — keeps them as warm as the
    backend's registered workloads.  Backends without an in-process cache
    (TCP daemons keep theirs remote) return ``None`` and the caller falls
    back to a fresh/explicit cache.
    """
    if isinstance(backend, SerialBackend):
        return process_cache()
    if isinstance(backend, FallbackBackend):
        # Serial fallbacks of a degradable backend should warm the cache
        # its local half would use, not a throwaway one.
        return backend_cache(backend.fallback)
    pool = getattr(backend, "pool", None)
    if isinstance(pool, ExplorationPool):
        return pool.cache
    return None
