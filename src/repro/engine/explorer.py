"""Frontier-based exploration of a transition system's state space.

The explorer is the checking half of the engine kernel: starting from the
transition system's initial state it discovers every reachable canonical
state with a breadth-first frontier, interning states into dense integer
indices (so the graph algorithms below run on plain int lists instead of
re-hashing dataclasses), and optionally quotienting by grid symmetry
(:mod:`repro.engine.symmetry`).

When symmetry reduction is on, every raw successor is replaced by its orbit
representative and the edge is labelled with the symmetry ``h`` mapping the
representative's coordinates back to the raw successor's.  Termination is
preserved by the quotient (a quotient cycle lifts to an infinite — hence,
on a finite space, cyclic — raw execution and vice versa); coverage is
computed exactly by pushing guaranteed-node sets through the edge labels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Node
from .states import SchedulerState
from .symmetry import GridSymmetry, canonicalize, grid_symmetries
from .transition import TransitionSystem

__all__ = ["Exploration", "explore", "has_cycle", "topological_order", "guaranteed_nodes"]


@dataclass
class Exploration:
    """The interned successor graph of one exploration."""

    #: Synchrony model the graph was built under.
    model: str
    #: Whether the graph is the symmetry-reduced quotient.
    reduced: bool
    #: Index -> canonical state (orbit representatives when ``reduced``).
    states: List[SchedulerState]
    #: Canonical state -> index (the interning table).
    index: Dict[SchedulerState, int]
    #: Index -> successor indices.
    succ: List[List[int]]
    #: When ``reduced``: per-edge symmetry ``h`` with ``raw = h(rep)``
    #: (``None`` entries mean the identity).  ``None`` when not reduced.
    edge_syms: Optional[List[List[Optional[GridSymmetry]]]]
    #: Index of the (canonicalised) initial state.
    root: int
    #: Symmetry mapping the canonical root back to the raw initial state
    #: (``None`` for the identity or when not reduced).
    root_sym: Optional[GridSymmetry] = field(default=None)
    #: Matcher cache counters accumulated *during this exploration* —
    #: ``{"hits", "misses", "hit_rate"}`` — observability for the
    #: snapshot/match memo layer (aggregated across workers when the
    #: exploration was sharded).  ``None`` when the transition system does
    #: not expose a matcher.
    matcher_stats: Optional[Dict[str, float]] = field(default=None)

    @property
    def num_states(self) -> int:
        return len(self.states)

    def terminal_indices(self) -> List[int]:
        return [i for i, children in enumerate(self.succ) if not children]

    def graph(self) -> Dict[SchedulerState, List[SchedulerState]]:
        """The state-keyed successor mapping (backward-compatible shape)."""
        states = self.states
        return {states[i]: [states[j] for j in children] for i, children in enumerate(self.succ)}


def explore(
    ts: TransitionSystem,
    *,
    symmetry_reduction: bool = False,
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
) -> Exploration:
    """Build the (optionally symmetry-reduced) reachable successor graph.

    Raises :class:`~repro.core.errors.StateSpaceLimitExceeded` — with the
    exploration context attached — as soon as more than ``max_states``
    distinct states have been discovered.
    """
    symmetries = grid_symmetries(ts.grid, ts.algorithm.chirality) if symmetry_reduction else ()
    reduce = symmetry_reduction and len(symmetries) > 1

    matcher = getattr(ts, "matcher", None)
    stats_before = matcher.stats.snapshot() if matcher is not None else None

    root_raw = start if start is not None else ts.initial()
    root_sym: Optional[GridSymmetry] = None
    if reduce:
        root_state, root_sym = canonicalize(root_raw, symmetries)
    else:
        root_state = root_raw

    states: List[SchedulerState] = [root_state]
    index: Dict[SchedulerState, int] = {root_state: 0}
    succ: List[List[int]] = []
    edge_syms: Optional[List[List[Optional[GridSymmetry]]]] = [] if reduce else None
    frontier = deque([0])

    while frontier:
        current = frontier.popleft()
        # BFS discovers states in index order, so expansions align with succ.
        assert current == len(succ)
        row: List[int] = []
        row_syms: List[Optional[GridSymmetry]] = []
        for raw in ts.successors(states[current]):
            if reduce:
                rep, h = canonicalize(raw, symmetries)
            else:
                rep, h = raw, None
            child = index.get(rep)
            if child is None:
                child = len(states)
                if child >= max_states:
                    raise StateSpaceLimitExceeded(
                        f"{ts.algorithm.name} on {ts.grid.m}x{ts.grid.n} [{ts.model}]:"
                        f" state budget of {max_states} exceeded after expanding"
                        f" {len(succ)} states ({len(states)} discovered,"
                        f" frontier size {len(frontier)}"
                        + (", symmetry reduction on)" if reduce else ")"),
                        algorithm=ts.algorithm.name,
                        model=ts.model,
                        max_states=max_states,
                        states_explored=len(succ),
                        frontier_size=len(frontier),
                    )
                index[rep] = child
                states.append(rep)
                frontier.append(child)
            row.append(child)
            if reduce:
                row_syms.append(h)
        succ.append(row)
        if reduce:
            assert edge_syms is not None
            edge_syms.append(row_syms)

    return Exploration(
        model=ts.model,
        reduced=reduce,
        states=states,
        index=index,
        succ=succ,
        edge_syms=edge_syms,
        root=0,
        root_sym=root_sym,
        matcher_stats=(
            matcher.stats.delta_since(stats_before).as_dict() if matcher is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# Graph analyses (over the interned int graph)
# ---------------------------------------------------------------------------
def has_cycle(succ: List[List[int]]) -> bool:
    """Iterative three-color DFS cycle detection."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * len(succ)
    for root in range(len(succ)):
        if color[root] != WHITE:
            continue
        stack = [(root, 0)]
        color[root] = GRAY
        while stack:
            state, child_index = stack[-1]
            children = succ[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[state] = BLACK
                stack.pop()
    return False


def topological_order(succ: List[List[int]]) -> List[int]:
    """Reverse-postorder DFS: children appear before parents (valid for DAGs)."""
    visited = [False] * len(succ)
    order: List[int] = []
    for root in range(len(succ)):
        if visited[root]:
            continue
        stack = [(root, 0)]
        visited[root] = True
        while stack:
            state, child_index = stack[-1]
            children = succ[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if not visited[child]:
                    visited[child] = True
                    stack.append((child, 0))
            else:
                order.append(state)
                stack.pop()
    return order


def guaranteed_nodes(exploration: Exploration) -> List[FrozenSet[Node]]:
    """The nodes *guaranteed* to be visited from each state, for acyclic graphs.

    Backward fixpoint over the DAG: a terminal state guarantees exactly its
    occupied nodes; an inner state guarantees its occupied nodes plus the
    intersection of its successors' guarantees.  Across symmetry-collapsed
    edges the successor's guarantee is mapped through the edge label first
    (``raw = h(rep)`` implies ``guaranteed(raw) = h(guaranteed(rep))``).
    """
    states = exploration.states
    succ = exploration.succ
    edge_syms = exploration.edge_syms
    result: List[Optional[FrozenSet[Node]]] = [None] * len(states)
    for current in topological_order(succ):  # children before parents
        occupied = frozenset(states[current].occupied_nodes())
        children = succ[current]
        if not children:
            result[current] = occupied
            continue
        syms = edge_syms[current] if edge_syms is not None else None

        def mapped(position: int) -> FrozenSet[Node]:
            guarantee = result[children[position]]
            assert guarantee is not None  # children precede parents in the order
            h = syms[position] if syms is not None else None
            if h is None:
                return guarantee
            return frozenset(h.node(node) for node in guarantee)

        common = mapped(0)
        for position in range(1, len(children)):
            common = common & mapped(position)
        result[current] = occupied | common
    return result  # type: ignore[return-value]
