"""Frontier-based exploration of a transition system's state space.

The explorer is the checking half of the engine kernel: starting from the
transition system's initial state it discovers every reachable canonical
state with a breadth-first frontier, interning states into dense integer
indices (so the graph algorithms below run on plain int lists instead of
re-hashing dataclasses), and optionally reducing the search through a
composable :class:`~repro.engine.reduction.ReductionPipeline` — the grid
automorphism quotient, color-permutation symmetry and ASYNC partial-order
reduction, selected by ``reduction=`` (``symmetry_reduction=True`` stays
as a deprecated alias for ``reduction="grid"``).

When a quotient is active, every raw successor is replaced by its orbit
representative and the edge is labelled with the witness ``h`` mapping the
representative's coordinates back to the raw successor's.  Termination is
preserved by the quotient (a quotient cycle lifts to an infinite — hence,
on a finite space, cyclic — raw execution and vice versa); coverage is
computed exactly by pushing guaranteed-node sets through the edge labels.
Partial-order reduction prunes interleavings *before* canonicalization;
see :mod:`repro.engine.reduction` for why every combination preserves both
verdicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional

from ..core.errors import StateSpaceLimitExceeded
from ..core.grid import Node
from .profile import KernelProfile, profiling_enabled
from .reduction import ReductionSpec, resolve_reduction
from .states import SchedulerState
from .transition import TransitionSystem

__all__ = ["Exploration", "explore", "has_cycle", "topological_order", "guaranteed_nodes"]


@dataclass
class Exploration:
    """The interned successor graph of one exploration."""

    #: Synchrony model the graph was built under.
    model: str
    #: Whether the graph is a symmetry-reduced quotient (grid and/or color).
    reduced: bool
    #: Index -> canonical state (orbit representatives when ``reduced``).
    states: List[SchedulerState]
    #: Canonical state -> index (the interning table).
    index: Dict[SchedulerState, int]
    #: Index -> successor indices.
    succ: List[List[int]]
    #: When ``reduced``: per-edge witness ``h`` with ``raw = h(rep)``
    #: (``None`` entries mean the identity).  A witness is a
    #: :class:`~repro.engine.symmetry.GridSymmetry` under the pure grid
    #: quotient and a :class:`~repro.engine.reduction.ProductWitness` when
    #: the color quotient participates.  ``None`` when not reduced.
    edge_syms: Optional[List[List[Optional[object]]]]
    #: Index of the (canonicalised) initial state.
    root: int
    #: Witness mapping the canonical root back to the raw initial state
    #: (``None`` for the identity or when not reduced).
    root_sym: Optional[object] = field(default=None)
    #: Matcher cache counters accumulated *during this exploration* —
    #: ``{"hits", "misses", "hit_rate"}`` — observability for the
    #: snapshot/match memo layer (aggregated across workers when the
    #: exploration was sharded).  ``None`` when the transition system does
    #: not expose a matcher.
    matcher_stats: Optional[Dict[str, float]] = field(default=None)
    #: The *active* reduction spec the graph was built under (``"none"``,
    #: ``"grid"``, ``"grid+color+por"``, ...); inert components (e.g. POR
    #: outside ASYNC, a trivial detected color group) drop out.
    reduction: str = field(default="none")
    #: Per-component reduction statistics accumulated during this
    #: exploration — orbit collapses for the quotients, ample states and
    #: interleavings pruned for POR.  Deterministic (identical across the
    #: serial, sharded and pooled routes); ``None`` when no component is
    #: active.
    reduction_stats: Optional[Dict[str, Dict[str, float]]] = field(default=None)
    #: Opt-in per-phase wall-clock split (``REPRO_PROFILE=1``; see
    #: :mod:`repro.engine.profile`) — ``{"kernel", "match_s",
    #: "canonicalise_s", "dedup_s", "inflate_s", "total_s"}``.  Timing is
    #: observability, not a result: excluded from equality.
    profile: Optional[Dict[str, object]] = field(default=None, compare=False)
    #: Wire accounting when the exploration ran over a stateful shard
    #: session (:mod:`repro.engine.distributed`) — ``{"bytes_sent",
    #: "bytes_received", "rows_exchanged", "waves"}``.  Transport
    #: observability, not a result: excluded from equality (the session
    #: route's graph is byte-identical to the serial one regardless).
    wire_stats: Optional[Dict[str, int]] = field(default=None, compare=False)
    #: Verdict-store counters when the exploration was requested through a
    #: :class:`~repro.engine.store.VerdictStore` — ``{"hits", "misses",
    #: "coalesced", "outcome"}``.  Cache observability, not a result:
    #: excluded from equality (a cached exploration is byte-identical to
    #: a freshly computed one).
    store_stats: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def num_states(self) -> int:
        return len(self.states)

    def terminal_indices(self) -> List[int]:
        return [i for i, children in enumerate(self.succ) if not children]

    def graph(self) -> Dict[SchedulerState, List[SchedulerState]]:
        """The state-keyed successor mapping (backward-compatible shape)."""
        states = self.states
        return {states[i]: [states[j] for j in children] for i, children in enumerate(self.succ)}


def explore(
    ts: TransitionSystem,
    *,
    reduction: ReductionSpec = None,
    symmetry_reduction: bool = False,
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
    kernel: Optional[str] = None,
    store: Optional[object] = None,
) -> Exploration:
    """Build the (optionally reduced) reachable successor graph.

    ``reduction`` selects the reduction pipeline — a spec string such as
    ``"grid"``, ``"grid+color"``, ``"grid+color+por"`` or ``"none"``, or a
    pre-built :class:`~repro.engine.reduction.ReductionPipeline`.
    ``symmetry_reduction=True`` is the deprecated boolean alias for
    ``reduction="grid"`` (ignored when ``reduction`` is given).

    ``kernel`` selects the successor kernel — ``"object"`` (the
    authoritative reference), ``"packed"`` (the table-driven fast path of
    :mod:`repro.engine.packed`) or ``"auto"``; ``None`` keeps whatever
    transition system the caller built.  Results are kernel-independent.
    Quotient-free pipelines over a packed system run the wave BFS
    (``explore_packed``); quotient specs run this loop with the packed
    system's table-driven ``successors``.

    ``store`` — a :class:`~repro.engine.store.VerdictStore` — serves the
    exploration from the verdict cache (or records a miss) under the same
    content key the sharded/pooled routes use, so all routes share
    entries.  Only registered algorithms on the stock kernels, from the
    default initial state, are cacheable; anything else computes as if no
    store were given.

    Raises :class:`~repro.core.errors.StateSpaceLimitExceeded` — with the
    exploration context attached — as soon as more than ``max_states``
    distinct states have been discovered.
    """
    if store is not None and start is None:
        cache_key = _store_key(ts, reduction, symmetry_reduction, kernel, max_states)
        if cache_key is not None:
            return store.fetch(
                cache_key,
                lambda: explore(
                    ts,
                    reduction=reduction,
                    symmetry_reduction=symmetry_reduction,
                    max_states=max_states,
                    kernel=kernel,
                ),
            )
    if kernel is not None:
        # Local import: packed imports this module at load time.
        from .packed import PackedTransitionSystem, normalize_kernel
        from .transition import AlgorithmTransitionSystem

        resolved = normalize_kernel(kernel)
        if resolved == "packed" and not isinstance(ts, PackedTransitionSystem):
            ts = PackedTransitionSystem(
                ts.algorithm, ts.grid, ts.model, matcher=getattr(ts, "matcher", None)
            )
        elif resolved == "object" and isinstance(ts, PackedTransitionSystem):
            ts = AlgorithmTransitionSystem(ts.algorithm, ts.grid, ts.model, matcher=ts.matcher)

    pipeline = resolve_reduction(reduction, symmetry_reduction, ts.algorithm, ts.grid, ts.model)
    reduce = pipeline.reduced

    if not reduce and hasattr(ts, "explore_packed"):
        return ts.explore_packed(pipeline, max_states=max_states, start=start)

    profile = KernelProfile("object") if profiling_enabled() else None
    matcher = getattr(ts, "matcher", None)
    stats_before = matcher.stats.snapshot() if matcher is not None else None
    counters_before = pipeline.counters_snapshot()

    root_raw = start if start is not None else ts.initial()
    root_state, root_sym = pipeline.canonicalize(root_raw)

    states: List[SchedulerState] = [root_state]
    index: Dict[SchedulerState, int] = {root_state: 0}
    succ: List[List[int]] = []
    edge_syms: Optional[List[List[Optional[object]]]] = [] if reduce else None
    frontier = deque([0])

    while frontier:
        current = frontier.popleft()
        # BFS discovers states in index order, so expansions align with succ.
        assert current == len(succ)
        row: List[int] = []
        row_syms: List[Optional[object]] = []
        if profile is None:
            raws = pipeline.successors(ts, states[current])
        else:
            t0 = perf_counter()
            raws = pipeline.successors(ts, states[current])
            profile.match_s += perf_counter() - t0
        for raw in raws:
            if profile is None:
                rep, h = pipeline.canonicalize(raw)
            else:
                t0 = perf_counter()
                rep, h = pipeline.canonicalize(raw)
                t1 = perf_counter()
                profile.canonicalise_s += t1 - t0
            child = index.get(rep)
            if child is None:
                child = len(states)
                if child >= max_states:
                    raise StateSpaceLimitExceeded(
                        f"{ts.algorithm.name} on {ts.grid.m}x{ts.grid.n} [{ts.model}]:"
                        f" state budget of {max_states} exceeded after expanding"
                        f" {len(succ)} states ({len(states)} discovered,"
                        f" frontier size {len(frontier)}"
                        f"{pipeline.budget_note})",
                        algorithm=ts.algorithm.name,
                        model=ts.model,
                        max_states=max_states,
                        states_explored=len(succ),
                        frontier_size=len(frontier),
                    )
                index[rep] = child
                states.append(rep)
                frontier.append(child)
            row.append(child)
            if reduce:
                row_syms.append(h)
            if profile is not None:
                profile.dedup_s += perf_counter() - t1
        succ.append(row)
        if reduce:
            assert edge_syms is not None
            edge_syms.append(row_syms)

    return Exploration(
        model=ts.model,
        reduced=reduce,
        states=states,
        index=index,
        succ=succ,
        edge_syms=edge_syms,
        root=0,
        root_sym=root_sym,
        matcher_stats=(
            matcher.stats.delta_since(stats_before).as_dict() if matcher is not None else None
        ),
        reduction=pipeline.active_spec,
        reduction_stats=pipeline.stats_report(pipeline.counters_delta(counters_before)),
        profile=profile.as_dict() if profile is not None else None,
    )


def _store_key(
    ts: TransitionSystem,
    reduction: ReductionSpec,
    symmetry_reduction: bool,
    kernel: Optional[str],
    max_states: int,
):
    """The shared explore-route content key, or ``None`` when uncacheable.

    Exactly the key ``explore_sharded`` derives — ``("explore",)`` +
    ``ExploreKey`` + budget — so the serial and sharded routes address the
    same store entries.  Custom transition systems (anything other than
    the two stock kernels) and unregistered algorithms carry semantics the
    key cannot see and are never cached.
    """
    # Local imports: packed/pool import this module at load time.
    from .packed import PackedTransitionSystem, normalize_kernel
    from .pool import registered
    from .reduction import normalize_reduction
    from .transition import AlgorithmTransitionSystem

    if type(ts) is PackedTransitionSystem:
        implied = "packed"
    elif type(ts) is AlgorithmTransitionSystem:
        implied = "object"
    else:
        return None
    if not registered(ts.algorithm):
        return None
    spec = normalize_reduction(reduction, symmetry_reduction)
    knorm = normalize_kernel(kernel) if kernel is not None else implied
    return (
        "explore",
        ts.algorithm.name,
        ts.grid.m,
        ts.grid.n,
        ts.model,
        spec,
        knorm,
        max_states,
    )


# ---------------------------------------------------------------------------
# Graph analyses (over the interned int graph)
# ---------------------------------------------------------------------------
def has_cycle(succ: List[List[int]]) -> bool:
    """Iterative three-color DFS cycle detection."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * len(succ)
    for root in range(len(succ)):
        if color[root] != WHITE:
            continue
        stack = [(root, 0)]
        color[root] = GRAY
        while stack:
            state, child_index = stack[-1]
            children = succ[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, 0))
            else:
                color[state] = BLACK
                stack.pop()
    return False


def topological_order(succ: List[List[int]]) -> List[int]:
    """Reverse-postorder DFS: children appear before parents (valid for DAGs)."""
    visited = [False] * len(succ)
    order: List[int] = []
    for root in range(len(succ)):
        if visited[root]:
            continue
        stack = [(root, 0)]
        visited[root] = True
        while stack:
            state, child_index = stack[-1]
            children = succ[state]
            if child_index < len(children):
                stack[-1] = (state, child_index + 1)
                child = children[child_index]
                if not visited[child]:
                    visited[child] = True
                    stack.append((child, 0))
            else:
                order.append(state)
                stack.pop()
    return order


def guaranteed_nodes(exploration: Exploration) -> List[FrozenSet[Node]]:
    """The nodes *guaranteed* to be visited from each state, for acyclic graphs.

    Backward fixpoint over the DAG: a terminal state guarantees exactly its
    occupied nodes; an inner state guarantees its occupied nodes plus the
    intersection of its successors' guarantees.  Across symmetry-collapsed
    edges the successor's guarantee is mapped through the edge label first
    (``raw = h(rep)`` implies ``guaranteed(raw) = h(guaranteed(rep))``; the
    color part of a product witness moves no nodes, so only the grid part
    acts here).
    """
    states = exploration.states
    succ = exploration.succ
    edge_syms = exploration.edge_syms
    result: List[Optional[FrozenSet[Node]]] = [None] * len(states)
    for current in topological_order(succ):  # children before parents
        occupied = frozenset(states[current].occupied_nodes())
        children = succ[current]
        if not children:
            result[current] = occupied
            continue
        syms = edge_syms[current] if edge_syms is not None else None

        def mapped(position: int) -> FrozenSet[Node]:
            guarantee = result[children[position]]
            assert guarantee is not None  # children precede parents in the order
            h = syms[position] if syms is not None else None
            if h is None:
                return guarantee
            return frozenset(h.node(node) for node in guarantee)

        common = mapped(0)
        for position in range(1, len(children)):
            common = common & mapped(position)
        result[current] = occupied | common
    return result  # type: ignore[return-value]
