"""Simulation-based verification campaigns for terminating exploration."""

from .campaigns import (
    GridSweepReport,
    ParallelCampaignEngine,
    VerificationReport,
    default_grid_suite,
    exhaustive_sweep,
    grid_sweep,
    stress_test,
    verify_algorithm,
    verify_terminating_exploration,
)

__all__ = [
    "VerificationReport",
    "GridSweepReport",
    "ParallelCampaignEngine",
    "verify_terminating_exploration",
    "verify_algorithm",
    "grid_sweep",
    "stress_test",
    "exhaustive_sweep",
    "default_grid_suite",
]
