"""Simulation-based verification campaigns for terminating exploration."""

from .campaigns import (
    GridSweepReport,
    VerificationReport,
    grid_sweep,
    stress_test,
    verify_algorithm,
    verify_terminating_exploration,
)

__all__ = [
    "VerificationReport",
    "GridSweepReport",
    "verify_terminating_exploration",
    "verify_algorithm",
    "grid_sweep",
    "stress_test",
]
