"""Simulation-based verification of the terminating exploration property.

The paper proves each algorithm correct with pencil and paper; this module
replaces the proofs with three executable checks of increasing strength:

1. :func:`verify_terminating_exploration` — one bounded execution under a
   given scheduler must terminate with full node coverage (Definition 1);
2. :func:`grid_sweep` — the same check over a family of grid sizes
   (both parities of ``m`` and ``n``, small and rectangular extremes);
3. :func:`stress_test` — for the SSYNC/ASYNC algorithms, many randomized
   scheduler seeds per grid, exercising adversarial-ish interleavings.

Exhaustive exploration of *all* scheduler behaviours on small grids is the
job of :mod:`repro.checking`; the campaigns here scale to larger grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import VerificationError
from ..core.execution import ExecutionResult
from ..core.grid import Grid
from ..core.scheduler import RandomAsync, RandomSubset, SingleRandom, SingleSequential
from ..core.simulator import TieBreak, run, run_async, run_fsync, run_ssync

__all__ = [
    "VerificationReport",
    "GridSweepReport",
    "verify_terminating_exploration",
    "verify_algorithm",
    "grid_sweep",
    "stress_test",
    "default_grid_suite",
]


@dataclass
class VerificationReport:
    """Outcome of a single verification run."""

    algorithm: str
    model: str
    m: int
    n: int
    seed: Optional[int]
    ok: bool
    steps: int
    moves: int
    reason: str

    def __str__(self) -> str:
        status = "ok" if self.ok else f"FAILED ({self.reason})"
        seed = "" if self.seed is None else f", seed={self.seed}"
        return f"{self.algorithm} {self.m}x{self.n} [{self.model}{seed}]: {status}"


@dataclass
class GridSweepReport:
    """Aggregated outcome of a verification campaign."""

    algorithm: str
    reports: List[VerificationReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every individual run succeeded."""
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> List[VerificationReport]:
        return [report for report in self.reports if not report.ok]

    def raise_on_failure(self) -> "GridSweepReport":
        """Raise :class:`VerificationError` if any run failed; return self."""
        if not self.ok:
            raise VerificationError(
                f"{self.algorithm}: {len(self.failures)} verification failures, e.g. {self.failures[0]}"
            )
        return self

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {len(self.reports) - len(self.failures)}/{len(self.reports)}"
            " verification runs succeeded"
        )


def default_grid_suite(algorithm: Algorithm, max_side: int = 9) -> List[Tuple[int, int]]:
    """A representative family of grid sizes for ``algorithm``.

    Covers both parities of each dimension, the minimum supported sizes,
    thin grids (2 rows / few columns) and a couple of larger squares.
    """
    m0, n0 = algorithm.min_m, algorithm.min_n
    candidates = {
        (m0, n0),
        (m0, n0 + 1),
        (m0 + 1, n0),
        (m0 + 1, n0 + 1),
        (2, max(n0, 7)),
        (max(m0, 7), n0),
        (5, max(n0, 6)),
        (6, max(n0, 5)),
        (max_side, max(n0, max_side - 1)),
        (max(m0, max_side - 1), max_side),
    }
    return sorted((m, n) for m, n in candidates if m >= m0 and n >= n0)


def _execute(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    seed: Optional[int],
    tie_break: str,
    max_steps: Optional[int],
) -> ExecutionResult:
    if model == "FSYNC":
        return run_fsync(algorithm, grid, tie_break=tie_break, max_steps=max_steps)
    if model == "SSYNC":
        return run_ssync(
            algorithm,
            grid,
            scheduler=RandomSubset(seed=seed or 0),
            tie_break=tie_break,
            max_steps=max_steps,
        )
    if model == "ASYNC":
        return run_async(
            algorithm,
            grid,
            scheduler=RandomAsync(seed=seed or 0),
            tie_break=tie_break,
            max_steps=max_steps,
        )
    raise VerificationError(f"unknown model {model!r}")


def verify_terminating_exploration(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
    max_steps: Optional[int] = None,
) -> VerificationReport:
    """Check Definition 1 on one bounded execution."""
    grid = Grid(m, n)
    try:
        result = _execute(algorithm, grid, model, seed, tie_break, max_steps)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return VerificationReport(
            algorithm=algorithm.name,
            model=model,
            m=m,
            n=n,
            seed=seed,
            ok=False,
            steps=0,
            moves=0,
            reason=f"{type(exc).__name__}: {exc}",
        )
    ok = result.is_terminating_exploration
    reason = "ok"
    if not result.terminated:
        reason = f"did not terminate within {result.steps} steps"
    elif not result.explored:
        reason = f"terminated with {len(result.unvisited)} unvisited nodes"
    return VerificationReport(
        algorithm=algorithm.name,
        model=model,
        m=m,
        n=n,
        seed=seed,
        ok=ok,
        steps=result.steps,
        moves=result.total_moves,
        reason=reason,
    )


def grid_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
) -> GridSweepReport:
    """Verify terminating exploration over a family of grid sizes."""
    sizes = list(sizes) if sizes is not None else default_grid_suite(algorithm)
    report = GridSweepReport(algorithm=algorithm.name)
    for m, n in sizes:
        if not algorithm.supports_grid(m, n):
            continue
        report.reports.append(
            verify_terminating_exploration(algorithm, m, n, model=model, seed=seed, tie_break=tie_break)
        )
    return report


def stress_test(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    models: Sequence[str] = ("SSYNC", "ASYNC"),
    seeds: Sequence[int] = tuple(range(10)),
    tie_break: str = TieBreak.FIRST,
) -> GridSweepReport:
    """Randomized-scheduler campaign for the SSYNC/ASYNC algorithms."""
    sizes = list(sizes) if sizes is not None else default_grid_suite(algorithm, max_side=7)
    report = GridSweepReport(algorithm=algorithm.name)
    for m, n in sizes:
        if not algorithm.supports_grid(m, n):
            continue
        for model in models:
            for seed in seeds:
                report.reports.append(
                    verify_terminating_exploration(
                        algorithm, m, n, model=model, seed=seed, tie_break=tie_break
                    )
                )
    return report


def verify_algorithm(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    seeds: Sequence[int] = tuple(range(5)),
) -> GridSweepReport:
    """The full campaign appropriate for an algorithm's claimed model.

    FSYNC algorithms get a deterministic FSYNC sweep; ASYNC algorithms
    additionally get randomized SSYNC and ASYNC stress runs.
    """
    report = grid_sweep(algorithm, sizes=sizes, model="FSYNC")
    if algorithm.synchrony == "ASYNC":
        stress = stress_test(algorithm, sizes=sizes, seeds=seeds)
        report.reports.extend(stress.reports)
    return report
