"""Simulation-based verification of the terminating exploration property.

The paper proves each algorithm correct with pencil and paper; this module
replaces the proofs with three executable checks of increasing strength:

1. :func:`verify_terminating_exploration` — one bounded execution under a
   given scheduler must terminate with full node coverage (Definition 1);
2. :func:`grid_sweep` — the same check over a family of grid sizes
   (both parities of ``m`` and ``n``, small and rectangular extremes);
3. :func:`stress_test` — for the SSYNC/ASYNC algorithms, many randomized
   scheduler seeds per grid, exercising adversarial-ish interleavings.

Exhaustive exploration of *all* scheduler behaviours on small grids is the
job of :mod:`repro.checking`; the campaigns here scale to larger grids.

The execution machinery lives in the engine kernel
(:mod:`repro.engine.campaign`): every campaign is a flat list of
independent :class:`~repro.engine.campaign.CampaignTask` work items, run
here serially by default.  The same task lists can be fanned across a
process pool — with byte-identical reports — through
:class:`~repro.engine.campaign.ParallelCampaignEngine`, re-exported here;
passing ``pool=`` (a persistent
:class:`~repro.engine.pool.ExplorationPool`) to any campaign below runs
its tasks on those long-lived, cache-warm workers instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..core.algorithm import Algorithm
from ..core.simulator import TieBreak
from ..engine.campaign import (
    CampaignTask,
    GridSweepReport,
    ParallelCampaignEngine,
    VerificationReport,
    execute_tasks,
    exhaustive_check_tasks,
    grid_sweep_tasks,
    stress_test_tasks,
    verify_one,
)
from ..engine.pool import ExplorationPool
from ..engine.suites import default_grid_suite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.backend import ExecutionBackend
    from ..engine.store import VerdictStore

__all__ = [
    "VerificationReport",
    "GridSweepReport",
    "ParallelCampaignEngine",
    "verify_terminating_exploration",
    "verify_algorithm",
    "grid_sweep",
    "stress_test",
    "exhaustive_sweep",
    "default_grid_suite",
]


def verify_terminating_exploration(
    algorithm: Algorithm,
    m: int,
    n: int,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
    max_steps: Optional[int] = None,
) -> VerificationReport:
    """Check Definition 1 on one bounded execution."""
    return verify_one(algorithm, m, n, model=model, seed=seed, tie_break=tie_break, max_steps=max_steps)


def _run_campaign(
    algorithm: Algorithm,
    tasks: List[CampaignTask],
    pool: Optional[ExplorationPool],
    backend: Optional["ExecutionBackend"] = None,
    journal=None,
    resume: bool = True,
    store: Optional["VerdictStore"] = None,
) -> GridSweepReport:
    """Run a task list serially, on a persistent pool, or on a backend.

    All paths produce byte-identical reports (every run is a pure function
    of its task), so ``pool=`` / ``backend=`` are purely throughput and
    cache-reuse decisions: pooled campaigns share the pool's long-lived
    workers — and their warm matcher caches — with every other workload on
    the pool, and a ``backend`` (``SerialBackend`` / ``PoolBackend`` /
    the TCP :class:`~repro.engine.distributed.DistributedBackend`) routes
    the same task list wherever its workers live.  ``backend`` supersedes
    ``pool``.  A backend's fan-out width is read live per wave (not frozen
    here), so daemons that enroll mid-campaign widen subsequent waves.

    ``journal`` (a :class:`~repro.engine.journal.CampaignJournal` or a
    path) makes the campaign durable and — with ``resume=True`` —
    resumable: completed verdicts are fsynced as they land and replayed
    instead of re-executed on the next run, with reports identical to an
    uninterrupted campaign's.

    ``store`` (a :class:`~repro.engine.store.VerdictStore`) memoizes every
    report by task content — across campaigns, processes and runs of the
    program.  Stored verdicts short-circuit dispatch entirely (they never
    reach the pool/backend), fresh ones are recorded before the campaign
    returns, and reports served from the store compare equal to freshly
    computed ones on every route.
    """
    if backend is not None or pool is not None or journal is not None or store is not None:
        engine = ParallelCampaignEngine(
            workers=None if (backend is not None or pool is not None) else 1,
            pool=pool,
            backend=backend,
            store=store,
        )
        return GridSweepReport(
            algorithm=algorithm.name,
            reports=engine.run_tasks(algorithm, tasks, journal=journal, resume=resume),
        )
    return GridSweepReport(algorithm=algorithm.name, reports=execute_tasks(algorithm, tasks))


def grid_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    seed: Optional[int] = None,
    tie_break: str = TieBreak.ERROR,
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    journal=None,
    resume: bool = True,
    store: Optional["VerdictStore"] = None,
) -> GridSweepReport:
    """Verify terminating exploration over a family of grid sizes."""
    tasks = grid_sweep_tasks(algorithm, sizes=sizes, model=model, seed=seed, tie_break=tie_break)
    return _run_campaign(algorithm, tasks, pool, backend, journal=journal, resume=resume, store=store)


def stress_test(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    models: Sequence[str] = ("SSYNC", "ASYNC"),
    seeds: Sequence[int] = tuple(range(10)),
    tie_break: str = TieBreak.FIRST,
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    journal=None,
    resume: bool = True,
    store: Optional["VerdictStore"] = None,
) -> GridSweepReport:
    """Randomized-scheduler campaign for the SSYNC/ASYNC algorithms."""
    tasks = stress_test_tasks(algorithm, sizes=sizes, models=models, seeds=seeds, tie_break=tie_break)
    return _run_campaign(algorithm, tasks, pool, backend, journal=journal, resume=resume, store=store)


def exhaustive_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    reduction: Optional[str] = "grid",
    max_states: int = 200_000,
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    kernel: str = "object",
    journal=None,
    resume: bool = True,
    store: Optional["VerdictStore"] = None,
) -> GridSweepReport:
    """Exhaustive model checks over a family of (small) grid sizes.

    Each task decides Definition 1 over *every* scheduler behaviour by
    exploring the full state space under the given ``reduction`` pipeline
    (``"grid"``, ``"grid+color"``, ``"grid+color+por"``, ... — see
    :mod:`repro.engine.reduction`); the verdicts are reduction-independent,
    only the explored state counts and wall time shrink.  Reports carry the
    per-component reduction statistics alongside the cache counters.
    ``kernel="packed"`` runs each check on the packed successor kernel
    (:mod:`repro.engine.packed`); verdicts are kernel-independent.
    """
    tasks = exhaustive_check_tasks(
        algorithm, sizes=sizes, model=model, reduction=reduction,
        max_states=max_states, kernel=kernel,
    )
    return _run_campaign(algorithm, tasks, pool, backend, journal=journal, resume=resume, store=store)


def verify_algorithm(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    seeds: Sequence[int] = tuple(range(5)),
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    journal=None,
    resume: bool = True,
    store: Optional["VerdictStore"] = None,
) -> GridSweepReport:
    """The full campaign appropriate for an algorithm's claimed model.

    FSYNC algorithms get a deterministic FSYNC sweep; ASYNC algorithms
    additionally get randomized SSYNC and ASYNC stress runs.  A single
    ``journal`` covers both phases (task content hashes never collide
    across them).
    """
    from ..engine.journal import CampaignJournal

    # Open a path-journal once up front: both phases share it, and opening
    # it per phase with ``resume=False`` would truncate phase one's records.
    owned = journal is not None and not isinstance(journal, CampaignJournal)
    jnl = CampaignJournal(journal, fresh=not resume) if owned else journal
    try:
        report = grid_sweep(
            algorithm, sizes=sizes, model="FSYNC", pool=pool, backend=backend,
            journal=jnl, resume=resume, store=store,
        )
        if algorithm.synchrony == "ASYNC":
            stress = stress_test(
                algorithm, sizes=sizes, seeds=seeds, pool=pool, backend=backend,
                journal=jnl, resume=resume, store=store,
            )
            report.reports.extend(stress.reports)
    finally:
        if owned:
            jnl.close()
    return report
