"""Plain-text rendering of grids and configurations.

No plotting dependency is available offline, and the paper's figures are
themselves small schematic grids, so ASCII rendering is both sufficient and
faithful.  Each node is drawn as a fixed-width cell containing the multiset
of lights hosted by the node (``.`` for an empty node).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.grid import Grid
from ..core.world import World

__all__ = ["render_configuration", "render_world", "render_trace"]


def _cell_text(colors: Sequence[str]) -> str:
    if not colors:
        return "."
    return "".join(colors)


def render_configuration(
    grid: Grid,
    configuration: Configuration,
    visited: Optional[Iterable] = None,
) -> str:
    """Render a configuration as a text grid.

    Occupied nodes show the (sorted) colors of their robots; empty nodes
    show ``.``; if ``visited`` is given, already-visited empty nodes show
    ``*`` instead, which makes exploration progress visible in traces.
    """
    visited_set = set(visited) if visited is not None else set()
    width = 1
    cells: List[List[str]] = []
    for i in range(grid.m):
        row = []
        for j in range(grid.n):
            colors = configuration.colors_at((i, j))
            if colors:
                text = _cell_text(colors)
            elif (i, j) in visited_set:
                text = "*"
            else:
                text = "."
            width = max(width, len(text))
            row.append(text)
        cells.append(row)
    lines = []
    for row in cells:
        lines.append(" ".join(text.rjust(width) for text in row))
    return "\n".join(lines)


def render_world(world: World, visited: Optional[Iterable] = None) -> str:
    """Render the current state of a :class:`~repro.core.world.World`."""
    return render_configuration(world.grid, world.configuration(), visited)


def render_trace(
    grid: Grid,
    trace: Sequence[Configuration],
    limit: Optional[int] = None,
    separator: str = "\n\n",
) -> str:
    """Render a sequence of configurations, numbered, separated by blank lines."""
    frames = []
    selected = trace if limit is None else trace[:limit]
    for index, configuration in enumerate(selected):
        body = render_configuration(grid, configuration)
        frames.append(f"[{index}]\n{body}")
    if limit is not None and len(trace) > limit:
        frames.append(f"... ({len(trace) - limit} more configurations)")
    return separator.join(frames)
