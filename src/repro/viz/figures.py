"""Reproduction helpers for the paper's execution figures (Figs. 3-25).

Each figure of Section 4 shows a short window of an execution: a sequence
of configurations annotated with the rules that fire between them.  The
tests and benchmarks reproduce those windows by running the corresponding
algorithm, locating the window inside the recorded trace and rendering it.

This module provides the small amount of machinery needed for that:
:class:`FigureFrame` (one labelled configuration), trace searching, and a
text renderer producing the figure as ASCII art.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.grid import Grid
from .ascii import render_configuration

__all__ = [
    "FigureFrame",
    "find_index",
    "find_subtrace",
    "render_figure_sequence",
]


@dataclass(frozen=True)
class FigureFrame:
    """One labelled sub-figure, e.g. ``("Fig. 4(a)", configuration)``."""

    label: str
    configuration: Configuration


def find_index(
    trace: Sequence[Configuration],
    predicate: Callable[[Configuration], bool],
    start: int = 0,
) -> Optional[int]:
    """Index of the first configuration satisfying ``predicate``, from ``start``."""
    for index in range(start, len(trace)):
        if predicate(trace[index]):
            return index
    return None


def find_subtrace(
    trace: Sequence[Configuration],
    frames: Sequence[Configuration],
) -> Optional[int]:
    """Find ``frames`` occurring in order (not necessarily contiguously) in ``trace``.

    Returns the index at which the first frame occurs, or ``None`` if the
    frames do not all occur in order.  Figure windows of the paper list the
    key configurations of a phase; between two of them the simulator may
    record additional intermediate configurations (for example in ASYNC
    executions), hence the subsequence — rather than substring — semantics.
    """
    cursor = 0
    first_index: Optional[int] = None
    for frame in frames:
        index = find_index(trace, lambda c, f=frame: c == f, start=cursor)
        if index is None:
            return None
        if first_index is None:
            first_index = index
        cursor = index + 1
    return first_index


def render_figure_sequence(grid: Grid, frames: Sequence[FigureFrame]) -> str:
    """Render a figure as a vertical sequence of labelled ASCII grids."""
    blocks: List[str] = []
    for frame in frames:
        body = render_configuration(grid, frame.configuration)
        blocks.append(f"--- {frame.label} ---\n{body}")
    return "\n".join(blocks)
