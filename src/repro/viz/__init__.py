"""ASCII visualisation of configurations, executions and paper figures."""

from .ascii import render_configuration, render_trace, render_world
from .figures import FigureFrame, render_figure_sequence

__all__ = [
    "render_configuration",
    "render_trace",
    "render_world",
    "FigureFrame",
    "render_figure_sequence",
]
