"""repro — Terminating Grid Exploration with Myopic Luminous Robots.

A faithful, executable reproduction of

    S. Nagahama, F. Ooshita, M. Inoue,
    "Terminating Grid Exploration with Myopic Luminous Robots",
    IPPS 2021 (arXiv:2102.06006).

The library provides

* the Look-Compute-Move grid simulation substrate (``repro.core``) for the
  FSYNC, SSYNC and ASYNC synchrony models, with myopic luminous robots and
  the rotation/reflection view semantics of the paper;
* the unified transition-system kernel (``repro.engine``): one
  authoritative implementation of the successor semantics consumed by the
  simulator, the model checker (with grid-symmetry reduction) and the
  parallel campaign engine — see ``docs/architecture.md``;
* executable encodings of the paper's fourteen terminating-exploration
  algorithms (``repro.algorithms``);
* verification utilities (``repro.verification``) and an exhaustive model
  checker (``repro.checking``) establishing terminating exploration over
  all scheduler behaviours on small grids;
* the impossibility machinery of Theorem 1 (``repro.impossibility``);
* analysis and visualisation helpers (``repro.analysis``, ``repro.viz``)
  used to regenerate Table 1 and the paper's figures.

Quickstart
----------
>>> from repro import algorithms, core
>>> algorithm = algorithms.get("fsync_phi2_l2_chir_k2")
>>> result = core.run_fsync(algorithm, core.Grid(5, 6))
>>> result.is_terminating_exploration
True
"""

from __future__ import annotations

from . import core, engine

__version__ = "1.1.0"

#: The paper reproduced by this library.
PAPER_REFERENCE = (
    "S. Nagahama, F. Ooshita, M. Inoue. "
    "Terminating Grid Exploration with Myopic Luminous Robots. "
    "IPPS 2021. arXiv:2102.06006."
)

__all__ = ["core", "engine", "PAPER_REFERENCE", "__version__"]
