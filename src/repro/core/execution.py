"""Execution traces and results.

An execution of the paper (Section 2.3) is a maximal sequence of
configurations.  The simulator additionally records *events* (which robot
executed which rule under which symmetry) and the set of visited nodes,
because the terminating exploration property is about node coverage and
termination together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from .configuration import Configuration
from .grid import Grid, Node

__all__ = ["Event", "ExecutionResult"]


@dataclass(frozen=True)
class Event:
    """One applied action: robot ``rid`` executed ``rule`` at ``time``.

    ``time`` counts FSYNC/SSYNC rounds or ASYNC atomic steps; ``phase`` is
    ``"cycle"`` for the synchronous models and one of ``"look"``,
    ``"compute"``, ``"move"`` for ASYNC.
    """

    time: int
    rid: int
    phase: str
    rule: Optional[str]
    symmetry: Optional[str]
    old_pos: Node
    new_pos: Node
    old_color: str
    new_color: str

    def moved(self) -> bool:
        """Whether the event changed the robot's position."""
        return self.old_pos != self.new_pos

    def recolored(self) -> bool:
        """Whether the event changed the robot's light."""
        return self.old_color != self.new_color


@dataclass
class ExecutionResult:
    """The outcome of one simulated execution."""

    algorithm_name: str
    model: str
    grid: Grid
    initial: Configuration
    final: Configuration
    trace: List[Configuration]
    events: List[Event]
    visited: Set[Node]
    steps: int
    terminated: bool
    termination_reason: str
    #: The seed that drove every random choice of the run (tie-breaking and
    #: the default schedulers); re-running with the same seed replays the
    #: execution exactly.  ``None`` for results built by external tooling.
    seed: Optional[int] = None
    #: The tie-break policy the run was executed under.
    tie_break: Optional[str] = None

    # ------------------------------------------------------------------
    # Terminating-exploration predicate (Definition 1)
    # ------------------------------------------------------------------
    @property
    def explored(self) -> bool:
        """Whether every node of the grid was visited by at least one robot."""
        return len(self.visited) == self.grid.num_nodes

    @property
    def unvisited(self) -> List[Node]:
        """Nodes never visited during the execution."""
        return [node for node in self.grid.nodes() if node not in self.visited]

    @property
    def is_terminating_exploration(self) -> bool:
        """Definition 1: every node visited and the execution reached a terminal configuration."""
        return self.terminated and self.explored

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def total_moves(self) -> int:
        """Total number of robot moves performed during the execution."""
        return sum(1 for event in self.events if event.moved())

    @property
    def total_color_changes(self) -> int:
        """Total number of light changes performed during the execution."""
        return sum(1 for event in self.events if event.recolored())

    def first_visit_order(self) -> List[Node]:
        """Nodes ordered by the time of their first visit.

        Initially occupied nodes come first (in configuration order), then
        nodes in the order robots first stepped onto them.  Used to check
        the Figure 3 boustrophedon route.
        """
        order: List[Node] = []
        seen: Set[Node] = set()
        for node, _colors in self.initial:
            if node not in seen:
                order.append(node)
                seen.add(node)
        for event in self.events:
            if event.moved() and event.new_pos not in seen:
                order.append(event.new_pos)
                seen.add(event.new_pos)
        return order

    def rule_census(self) -> dict:
        """How many times each rule label fired."""
        census: dict = {}
        for event in self.events:
            if event.rule is not None and event.phase in ("cycle", "compute"):
                census[event.rule] = census.get(event.rule, 0) + 1
        return census

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "terminating exploration" if self.is_terminating_exploration else (
            "terminated without full coverage" if self.terminated else "did not terminate"
        )
        return (
            f"{self.algorithm_name} on {self.grid.m}x{self.grid.n} [{self.model}]: "
            f"{status} after {self.steps} steps, {self.total_moves} moves, "
            f"{len(self.visited)}/{self.grid.num_nodes} nodes visited"
        )
