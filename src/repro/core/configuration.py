"""Configurations: the global system states of the paper.

Section 2.2 defines a configuration ``C(t) = {(v_{i,j}, M_{i,j}(t))}`` as the
set of occupied nodes together with the multiset of light colors present on
each of them.  Robots are anonymous, so the configuration deliberately
forgets robot identities; this is the object the paper's figures draw, the
object algorithm guards constrain, and the object used to define terminal
configurations.

:class:`Configuration` is immutable and hashable, which the model checker
relies on for state deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from .colors import Color, ColorMultiset, multiset
from .errors import ConfigurationError
from .grid import Grid, Node
from .robot import Robot

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """An immutable mapping from occupied nodes to color multisets."""

    entries: Tuple[Tuple[Node, ColorMultiset], ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[Node, Iterable[Color]]) -> "Configuration":
        """Build a configuration from ``{node: colors}``.

        Empty color collections are dropped (an unoccupied node is simply
        absent from the configuration, as in the paper).
        """
        entries = []
        for node, colors in mapping.items():
            ms = multiset(*colors)
            if ms:
                entries.append((node, ms))
        return cls(entries=tuple(sorted(entries)))

    @classmethod
    def from_robots(cls, robots: Iterable[Robot]) -> "Configuration":
        """Build a configuration from a collection of robots."""
        accum: Dict[Node, list] = {}
        for robot in robots:
            accum.setdefault(robot.pos, []).append(robot.color)
        return cls.from_mapping(accum)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Node, Iterable[Color]]]) -> "Configuration":
        """Build a configuration from ``(node, colors)`` pairs.

        Pairs naming the same node are merged (their multisets are united),
        which mirrors the paper's set-of-pairs notation.
        """
        accum: Dict[Node, list] = {}
        for node, colors in pairs:
            accum.setdefault(node, []).extend(colors)
        return cls.from_mapping(accum)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[Node, ColorMultiset]:
        """A plain ``{node: multiset}`` dictionary copy."""
        return dict(self.entries)

    def occupied_nodes(self) -> Tuple[Node, ...]:
        """The paper's ``Q(t)``: nodes hosting at least one robot."""
        return tuple(node for node, _ in self.entries)

    def colors_at(self, node: Node) -> ColorMultiset:
        """The multiset of colors on ``node`` (empty tuple if unoccupied)."""
        for entry_node, colors in self.entries:
            if entry_node == node:
                return colors
        return ()

    def is_occupied(self, node: Node) -> bool:
        """Whether some robot occupies ``node``."""
        return any(entry_node == node for entry_node, _ in self.entries)

    @property
    def robot_count(self) -> int:
        """Total number of robots in the configuration."""
        return sum(len(colors) for _, colors in self.entries)

    def color_census(self) -> Dict[Color, int]:
        """Number of robots per color."""
        census: Dict[Color, int] = {}
        for _, colors in self.entries:
            for color in colors:
                census[color] = census.get(color, 0) + 1
        return census

    def validate_on(self, grid: Grid) -> "Configuration":
        """Check every occupied node lies on ``grid``; return ``self``."""
        for node, _ in self.entries:
            if not grid.contains(node):
                raise ConfigurationError(
                    f"configuration occupies {node}, outside the {grid.m}x{grid.n} grid"
                )
        return self

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Node, ColorMultiset]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, node: Node) -> bool:
        return self.is_occupied(node)

    def __str__(self) -> str:
        parts = [
            "(v[%d,%d], {%s})" % (node[0], node[1], ",".join(colors))
            for node, colors in self.entries
        ]
        return "{" + ", ".join(parts) + "}"

    # ------------------------------------------------------------------
    # Comparisons used by tests against the paper's explicit configurations
    # ------------------------------------------------------------------
    def matches_pairs(self, pairs: Sequence[Tuple[Node, Sequence[Color]]]) -> bool:
        """Whether this configuration equals the explicitly listed ``pairs``.

        Convenience used by figure-reproduction tests: the paper writes
        configurations like ``{(v_{m-1,1}, {G, W})}``; tests pass the same
        pairs and compare.
        """
        return self == Configuration.from_pairs([(node, tuple(colors)) for node, colors in pairs])
