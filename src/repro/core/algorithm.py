"""Algorithm specifications and the rule matching engine.

An :class:`Algorithm` bundles everything the paper fixes when it states
"a terminating exploration algorithm for ``m x n`` grids in case of
``phi = ..., ell = ..., (no) common chirality and k = ...``":

* the synchrony model it is designed for (FSYNC, or ASYNC which subsumes
  SSYNC and FSYNC),
* the visibility radius ``phi``,
* the color set,
* whether a common chirality is assumed,
* the number of robots ``k``,
* the rule set,
* the initial configuration, given as a function of the grid size
  (the paper anchors initial configurations at the northwest corner).

The matching engine implements Section 2.2/2.4 semantics: a robot is
*enabled* when some rule guard matches one of its views, i.e. matches its
snapshot under one of the allowed symmetries.  All matches are reported;
which one is executed when several disagree is the scheduler's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .colors import Color
from .errors import AlgorithmError
from .grid import Grid, Node
from .robot import Robot
from .rules import Rule
from .views import Offset, Snapshot, Symmetry, symmetries_for
from .world import World

__all__ = ["Synchrony", "Action", "Match", "Algorithm"]


class Synchrony:
    """Synchrony model names.

    The paper's FSYNC algorithms (Section 4.2) are only claimed for the
    fully synchronous scheduler; its ASYNC algorithms (Section 4.3) work
    under ASYNC and therefore also under SSYNC and FSYNC.
    """

    FSYNC = "FSYNC"
    SSYNC = "SSYNC"
    ASYNC = "ASYNC"

    #: Orders models from strongest scheduler assumption to weakest.
    ORDER = (FSYNC, SSYNC, ASYNC)

    @classmethod
    def validate(cls, model: str) -> str:
        if model not in cls.ORDER:
            raise AlgorithmError(f"unknown synchrony model {model!r}")
        return model

    @classmethod
    def subsumes(cls, designed_for: str, run_under: str) -> bool:
        """Whether an algorithm designed for ``designed_for`` is claimed under ``run_under``.

        An ASYNC algorithm is claimed under all three models; an SSYNC
        algorithm under SSYNC and FSYNC; an FSYNC algorithm only under
        FSYNC.
        """
        return cls.ORDER.index(run_under) <= cls.ORDER.index(designed_for)


@dataclass(frozen=True)
class Action:
    """The outcome of executing a matched rule: new color and world movement."""

    new_color: Color
    world_move: Optional[Offset]

    @property
    def is_idle(self) -> bool:
        return self.world_move is None

    def __str__(self) -> str:
        if self.world_move is None:
            return f"({self.new_color}, Idle)"
        return f"({self.new_color}, move {self.world_move})"


@dataclass(frozen=True)
class Match:
    """A (rule, symmetry) pair whose guard matched a robot's snapshot."""

    rule: Rule
    symmetry: Symmetry
    action: Action

    def __str__(self) -> str:
        return f"{self.rule.name}@{self.symmetry.name} -> {self.action}"


@dataclass(frozen=True)
class Algorithm:
    """A complete terminating-exploration algorithm specification."""

    name: str
    synchrony: str
    phi: int
    colors: Tuple[Color, ...]
    chirality: bool
    k: int
    rules: Tuple[Rule, ...]
    initial_placement: Callable[[int, int], Sequence[Tuple[Node, Color]]] = field(compare=False)
    min_m: int = 2
    min_n: int = 3
    paper_section: str = ""
    description: str = ""
    optimal: bool = False

    def __post_init__(self) -> None:
        Synchrony.validate(self.synchrony)
        if self.phi not in (1, 2):
            raise AlgorithmError(f"{self.name}: unsupported phi={self.phi}")
        if self.k < 1:
            raise AlgorithmError(f"{self.name}: k must be positive")
        if len(set(self.colors)) != len(self.colors):
            raise AlgorithmError(f"{self.name}: duplicate colors in palette")
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise AlgorithmError(f"{self.name}: duplicate rule names")
        for rule in self.rules:
            if rule.self_color not in self.colors:
                raise AlgorithmError(
                    f"{self.name}: rule {rule.name} self color {rule.self_color!r}"
                    " not in the algorithm palette"
                )
            if rule.new_color not in self.colors:
                raise AlgorithmError(
                    f"{self.name}: rule {rule.name} new color {rule.new_color!r}"
                    " not in the algorithm palette"
                )
            if rule.phi != self.phi:
                raise AlgorithmError(
                    f"{self.name}: rule {rule.name} has phi={rule.phi}, expected {self.phi}"
                )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def ell(self) -> int:
        """Number of colors ``ℓ = |Col|``."""
        return len(self.colors)

    def symmetries(self) -> Tuple[Symmetry, ...]:
        """The symmetries under which guards may match (4 or 8)."""
        return symmetries_for(self.chirality)

    def supports_grid(self, m: int, n: int) -> bool:
        """Whether the paper claims the algorithm for an ``m x n`` grid."""
        return m >= self.min_m and n >= self.min_n

    def rules_for_color(self, color: Color) -> Tuple[Rule, ...]:
        """The rules whose ``self_color`` is ``color``."""
        return tuple(rule for rule in self.rules if rule.self_color == color)

    def rule_named(self, name: str) -> Rule:
        """Look a rule up by its label (e.g. ``"R4"``)."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(f"{self.name}: no rule named {name!r}")

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def placement(self, m: int, n: int) -> List[Tuple[Node, Color]]:
        """The initial ``(node, color)`` placement for an ``m x n`` grid."""
        if not self.supports_grid(m, n):
            raise AlgorithmError(
                f"{self.name} requires m >= {self.min_m} and n >= {self.min_n},"
                f" got {m}x{n}"
            )
        placement = list(self.initial_placement(m, n))
        if len(placement) != self.k:
            raise AlgorithmError(
                f"{self.name}: initial placement produced {len(placement)} robots,"
                f" expected k={self.k}"
            )
        return placement

    def initial_world(self, grid: Grid) -> World:
        """A freshly initialised :class:`~repro.core.world.World`."""
        return World.from_placement(grid, self.placement(grid.m, grid.n))

    # ------------------------------------------------------------------
    # Matching engine
    # ------------------------------------------------------------------
    def matches_for_snapshot(self, snapshot: Snapshot, color: Color) -> List[Match]:
        """All (rule, symmetry) matches for a robot with light ``color``.

        Matches are returned in a deterministic order (rule declaration
        order, then symmetry order) so that deterministic tie-breaking
        policies are reproducible.
        """
        result: List[Match] = []
        for rule in self.rules_for_color(color):
            for symmetry in self.symmetries():
                if rule.matches(snapshot, symmetry):
                    action = Action(
                        new_color=rule.new_color,
                        world_move=rule.world_move(symmetry),
                    )
                    result.append(Match(rule=rule, symmetry=symmetry, action=action))
        return result

    def matches_for_robot(self, world: World, robot: Robot) -> List[Match]:
        """All matches for ``robot`` in the current ``world``."""
        snapshot = world.snapshot(robot.pos, self.phi)
        return self.matches_for_snapshot(snapshot, robot.color)

    def distinct_actions(self, matches: Sequence[Match]) -> List[Action]:
        """The distinct outcomes among a list of matches, in first-seen order."""
        seen: Dict[Action, None] = {}
        for match in matches:
            seen.setdefault(match.action, None)
        return list(seen)

    def enabled(self, world: World, robot: Robot) -> bool:
        """Whether ``robot`` is enabled (some rule matches some of its views)."""
        return bool(self.matches_for_robot(world, robot))

    def enabled_robots(self, world: World) -> List[Robot]:
        """All enabled robots in ``world``."""
        return [robot for robot in world.robots if self.enabled(world, robot)]

    def is_terminal(self, world: World) -> bool:
        """Whether the configuration is terminal (no robot enabled)."""
        return not self.enabled_robots(world)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A one-line summary used by the registry and the benchmarks."""
        chirality = "chirality" if self.chirality else "no chirality"
        star = " (optimal)" if self.optimal else ""
        return (
            f"{self.name}: {self.synchrony}, phi={self.phi}, ell={self.ell},"
            f" {chirality}, k={self.k}{star}"
        )

    def __str__(self) -> str:
        return self.summary()
