"""The Look-Compute-Move execution entry points.

The actual engines live in :mod:`repro.engine.walk` — the lazy single-path
side of the unified transition-system kernel — so that the simulator, the
exhaustive model checker and the campaign runner all share one
implementation of the FSYNC/SSYNC/ASYNC semantics.  This module remains the
stable public import path:

* :func:`run_fsync` — every robot executes a full cycle at every instant;
* :func:`run_ssync` — a scheduler-selected non-empty subset of the robots
  executes a full synchronous cycle at every instant;
* :func:`run_async` — Look, Compute and Move phases of different robots
  interleave arbitrarily;
* :func:`run` — dispatch by model name;
* :class:`TieBreak` / :func:`default_step_budget` — shared policies.
"""

from __future__ import annotations

from ..engine.walk import (
    TieBreak,
    default_step_budget,
    run,
    run_async,
    run_fsync,
    run_ssync,
)

__all__ = [
    "TieBreak",
    "default_step_budget",
    "run_fsync",
    "run_ssync",
    "run_async",
    "run",
]
