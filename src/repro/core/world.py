"""Mutable simulation state: a grid plus a population of robots.

The :class:`World` is the simulator's working object.  It knows robot
identities (for scheduling and traces) but exposes the anonymous
:class:`~repro.core.configuration.Configuration` view whenever paper-level
semantics are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .colors import Color
from .configuration import Configuration
from .errors import ConfigurationError, IllegalMoveError
from .grid import Grid, Node
from .robot import Robot
from .views import Snapshot, snapshot_contents

__all__ = ["World"]


@dataclass
class World:
    """A grid populated by robots."""

    grid: Grid
    robots: List[Robot] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_placement(
        cls, grid: Grid, placement: Sequence[Tuple[Node, Color]]
    ) -> "World":
        """Create a world with one robot per ``(node, color)`` entry.

        Robot identifiers are assigned in the order of ``placement``.
        """
        robots = []
        for rid, (node, color) in enumerate(placement):
            if not grid.contains(node):
                raise ConfigurationError(
                    f"initial placement puts a robot at {node}, outside the grid"
                )
            robots.append(Robot(rid=rid, pos=node, color=color))
        return cls(grid=grid, robots=robots)

    def clone(self) -> "World":
        """An independent copy of this world (robots are immutable, so shallow)."""
        return World(grid=self.grid, robots=list(self.robots))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of robots."""
        return len(self.robots)

    def robot(self, rid: int) -> Robot:
        """The robot with identifier ``rid``."""
        for robot in self.robots:
            if robot.rid == rid:
                return robot
        raise KeyError(f"no robot with id {rid}")

    def robots_at(self, node: Node) -> List[Robot]:
        """All robots currently hosted by ``node``."""
        return [robot for robot in self.robots if robot.pos == node]

    def occupied_nodes(self) -> List[Node]:
        """Nodes hosting at least one robot."""
        return sorted({robot.pos for robot in self.robots})

    def configuration(self) -> Configuration:
        """The anonymous configuration (paper's ``C(t)``)."""
        return Configuration.from_robots(self.robots)

    def snapshot(self, center: Node, phi: int) -> Snapshot:
        """The local snapshot taken by a robot located at ``center``."""
        return snapshot_contents(self.grid, self.robots, center, phi)

    # ------------------------------------------------------------------
    # Mutation (used by the simulator)
    # ------------------------------------------------------------------
    def set_color(self, rid: int, color: Color) -> None:
        """Change the light of robot ``rid``."""
        for index, robot in enumerate(self.robots):
            if robot.rid == rid:
                self.robots[index] = robot.recolored(color)
                return
        raise KeyError(f"no robot with id {rid}")

    def move(self, rid: int, offset: Optional[Tuple[int, int]]) -> Node:
        """Move robot ``rid`` by a unit ``offset`` (``None`` for Idle).

        Returns the robot's (possibly unchanged) position.  Raises
        :class:`IllegalMoveError` when the destination is off the grid,
        which can only happen if a rule set is buggy: the paper's robots
        never attempt to leave the grid.
        """
        for index, robot in enumerate(self.robots):
            if robot.rid == rid:
                if offset is None:
                    return robot.pos
                destination = (robot.pos[0] + offset[0], robot.pos[1] + offset[1])
                if not self.grid.contains(destination):
                    raise IllegalMoveError(
                        f"robot {rid} attempted to move from {robot.pos} to {destination},"
                        f" outside the {self.grid.m}x{self.grid.n} grid"
                    )
                self.robots[index] = robot.moved_to(destination)
                return destination
        raise KeyError(f"no robot with id {rid}")

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return f"World({self.grid.m}x{self.grid.n}, {self.configuration()})"
