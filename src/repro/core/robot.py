"""Robot state.

A robot of the paper is anonymous, oblivious except for its persistent
light, and myopic.  The simulator nevertheless assigns each robot a small
integer identifier ``rid`` for bookkeeping (scheduling, traces, ASYNC phase
state); identifiers are *never* visible to the algorithm, which only ever
sees positions and colors, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from .colors import Color, validate_color
from .grid import Node

__all__ = ["Robot"]


@dataclass(frozen=True)
class Robot:
    """An individual robot: identifier, position and light color.

    Instances are immutable; the simulator replaces robots rather than
    mutating them, which keeps execution traces cheap to snapshot and makes
    the model checker's state hashing trivial.
    """

    rid: int
    pos: Node
    color: Color

    def __post_init__(self) -> None:
        validate_color(self.color)

    def moved_to(self, pos: Node) -> "Robot":
        """A copy of this robot relocated to ``pos``."""
        return replace(self, pos=pos)

    def recolored(self, color: Color) -> "Robot":
        """A copy of this robot with its light set to ``color``."""
        return replace(self, color=color)

    def key(self) -> Tuple[int, Node, Color]:
        """A hashable summary ``(rid, pos, color)``."""
        return (self.rid, self.pos, self.color)
