"""Core LCM-model substrate: grids, robots, views, rules, schedulers, simulator."""

from .algorithm import Action, Algorithm, Match, Synchrony
from .colors import B, DEFAULT_PALETTE, G, W, multiset
from .configuration import Configuration
from .errors import (
    AlgorithmError,
    AmbiguousActionError,
    ConfigurationError,
    GridError,
    GuardError,
    IllegalMoveError,
    ModelCheckingError,
    NonTerminationError,
    ReproError,
    RuleError,
    SchedulerError,
    SimulationError,
    StateSpaceLimitExceeded,
    VerificationError,
)
from .execution import Event, ExecutionResult
from .grid import DIRECTIONS, EAST, NORTH, SOUTH, WEST, Grid
from .robot import Robot
from .rules import ANY, EMPTY, FREE, IDLE, WALL, CellKind, CellSpec, Guard, Rule, occ, parse_guard_art
from .scheduler import (
    AsyncScheduler,
    FullActivation,
    RandomAsync,
    RandomSubset,
    SequentialAsync,
    SingleRandom,
    SingleSequential,
    SsyncScheduler,
)
from .simulator import TieBreak, default_step_budget, run, run_async, run_fsync, run_ssync
from .views import (
    ALL_SYMMETRIES,
    IDENTITY,
    REFLECTIONS,
    ROTATIONS,
    Symmetry,
    ball_offsets,
    snapshot_contents,
    symmetries_for,
    view_tuple,
)
from .world import World

__all__ = [
    # algorithm
    "Action",
    "Algorithm",
    "Match",
    "Synchrony",
    # colors
    "B",
    "G",
    "W",
    "DEFAULT_PALETTE",
    "multiset",
    # configuration / world / robot
    "Configuration",
    "World",
    "Robot",
    # errors
    "ReproError",
    "GridError",
    "ConfigurationError",
    "RuleError",
    "GuardError",
    "AlgorithmError",
    "SchedulerError",
    "SimulationError",
    "AmbiguousActionError",
    "IllegalMoveError",
    "NonTerminationError",
    "VerificationError",
    "ModelCheckingError",
    "StateSpaceLimitExceeded",
    # execution
    "Event",
    "ExecutionResult",
    # grid
    "Grid",
    "NORTH",
    "SOUTH",
    "EAST",
    "WEST",
    "DIRECTIONS",
    # rules
    "CellKind",
    "CellSpec",
    "Guard",
    "Rule",
    "EMPTY",
    "WALL",
    "FREE",
    "ANY",
    "IDLE",
    "occ",
    "parse_guard_art",
    # schedulers
    "SsyncScheduler",
    "FullActivation",
    "SingleSequential",
    "SingleRandom",
    "RandomSubset",
    "AsyncScheduler",
    "SequentialAsync",
    "RandomAsync",
    # simulator
    "TieBreak",
    "run",
    "run_fsync",
    "run_ssync",
    "run_async",
    "default_step_budget",
    # views
    "Symmetry",
    "IDENTITY",
    "ROTATIONS",
    "REFLECTIONS",
    "ALL_SYMMETRIES",
    "ball_offsets",
    "symmetries_for",
    "snapshot_contents",
    "view_tuple",
]
