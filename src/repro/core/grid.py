"""Finite grid graphs (the paper's ``m x n`` grids).

The paper (Section 2.1) considers a simple connected graph ``G = (V, E)``
where ``V = {v_{i,j}}`` for ``i in [0, m)`` and ``j in [0, n)`` and two nodes
are adjacent iff their index distance is one.  Indices are for notation
only: robots cannot read them.  This module provides the topology together
with the node classifications used in the impossibility proof (Section 3):

* an *end node* has degree smaller than four (equivalently, it lies on the
  grid boundary);
* an *inner node* is at distance at least three from every end node.

Global directions (Figure 1) are named North (``i - 1``), South (``i + 1``),
West (``j - 1``) and East (``j + 1``); they exist only in the simulator's
frame of reference, never in a robot's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from .errors import GridError

__all__ = [
    "Node",
    "Direction",
    "NORTH",
    "SOUTH",
    "EAST",
    "WEST",
    "DIRECTIONS",
    "DIRECTION_NAMES",
    "opposite",
    "Grid",
]

#: A grid node, identified by its (row, column) pair ``(i, j)``.
Node = Tuple[int, int]

#: A unit step on the grid expressed as an ``(di, dj)`` offset.
Direction = Tuple[int, int]

#: One step toward smaller row index (the paper's North).
NORTH: Direction = (-1, 0)
#: One step toward larger row index (the paper's South).
SOUTH: Direction = (1, 0)
#: One step toward larger column index (the paper's East).
EAST: Direction = (0, 1)
#: One step toward smaller column index (the paper's West).
WEST: Direction = (0, -1)

#: Name -> offset mapping for the four global directions.
DIRECTIONS: Dict[str, Direction] = {
    "N": NORTH,
    "S": SOUTH,
    "E": EAST,
    "W": WEST,
}

#: Offset -> name mapping (inverse of :data:`DIRECTIONS`).
DIRECTION_NAMES: Dict[Direction, str] = {offset: name for name, offset in DIRECTIONS.items()}


def opposite(direction: Direction) -> Direction:
    """Return the opposite of a unit direction."""
    return (-direction[0], -direction[1])


@dataclass(frozen=True)
class Grid:
    """A finite ``m x n`` grid graph.

    Parameters
    ----------
    m:
        Number of rows (the paper's first index, increasing toward South).
    n:
        Number of columns (the paper's second index, increasing toward East).
    """

    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise GridError(f"grid dimensions must be positive, got {self.m}x{self.n}")

    # ------------------------------------------------------------------
    # Basic topology
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``m * n``."""
        return self.m * self.n

    @property
    def num_edges(self) -> int:
        """Total number of edges of the grid graph."""
        return self.m * (self.n - 1) + self.n * (self.m - 1)

    def contains(self, node: Node) -> bool:
        """Whether ``node`` is a node of the grid."""
        i, j = node
        return 0 <= i < self.m and 0 <= j < self.n

    def require(self, node: Node) -> Node:
        """Return ``node`` if it belongs to the grid, raise otherwise."""
        if not self.contains(node):
            raise GridError(f"node {node} is outside the {self.m}x{self.n} grid")
        return node

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in row-major (North-to-South, West-to-East) order."""
        for i in range(self.m):
            for j in range(self.n):
                yield (i, j)

    def neighbors(self, node: Node) -> List[Node]:
        """The (2 to 4) neighbors of a node, in N, S, E, W order."""
        self.require(node)
        i, j = node
        result = []
        for di, dj in (NORTH, SOUTH, EAST, WEST):
            candidate = (i + di, j + dj)
            if self.contains(candidate):
                result.append(candidate)
        return result

    def degree(self, node: Node) -> int:
        """Degree of ``node`` in the grid graph."""
        return len(self.neighbors(node))

    def step(self, node: Node, direction: Direction) -> Node:
        """The node one step from ``node`` in ``direction`` (may be off-grid)."""
        return (node[0] + direction[0], node[1] + direction[1])

    # ------------------------------------------------------------------
    # Distances and node classes
    # ------------------------------------------------------------------
    @staticmethod
    def distance(first: Node, second: Node) -> int:
        """Graph (Manhattan) distance between two nodes."""
        return abs(first[0] - second[0]) + abs(first[1] - second[1])

    def is_end_node(self, node: Node) -> bool:
        """Whether ``node`` is an *end node* (degree smaller than four).

        On a grid these are exactly the boundary nodes.
        """
        return self.degree(node) < 4

    def boundary_distance(self, node: Node) -> int:
        """Distance from ``node`` to the nearest end (boundary) node."""
        self.require(node)
        i, j = node
        if self.m == 1 and self.n == 1:
            return 0
        return min(i, self.m - 1 - i, j, self.n - 1 - j)

    def is_inner_node(self, node: Node) -> bool:
        """Whether ``node`` is an *inner node*.

        The paper (Section 3) defines an inner node as a node whose distance
        to every end node is at least three; on a grid that is equivalent to
        being at distance at least three from the boundary.
        """
        return self.boundary_distance(node) >= 3

    def end_nodes(self) -> List[Node]:
        """All end nodes of the grid."""
        return [node for node in self.nodes() if self.is_end_node(node)]

    def inner_nodes(self) -> List[Node]:
        """All inner nodes of the grid."""
        return [node for node in self.nodes() if self.is_inner_node(node)]

    def corners(self) -> List[Node]:
        """The (up to four distinct) corner nodes."""
        unique = {(0, 0), (0, self.n - 1), (self.m - 1, 0), (self.m - 1, self.n - 1)}
        return sorted(unique)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def ball(self, node: Node, radius: int) -> List[Node]:
        """All grid nodes within graph distance ``radius`` of ``node``."""
        self.require(node)
        i, j = node
        result = []
        for di in range(-radius, radius + 1):
            remaining = radius - abs(di)
            for dj in range(-remaining, remaining + 1):
                candidate = (i + di, j + dj)
                if self.contains(candidate):
                    result.append(candidate)
        return result

    def boustrophedon_order(self) -> List[Node]:
        """The snake-like route of Figure 3.

        Starting at the northwest corner ``v_{0,0}``, traverse row 0 toward
        the East, then row 1 toward the West, and so on, alternating
        direction on every row.  Every terminating-exploration algorithm of
        the paper visits nodes in an order compatible with this route.
        """
        order: List[Node] = []
        for i in range(self.m):
            columns = range(self.n) if i % 2 == 0 else range(self.n - 1, -1, -1)
            for j in columns:
                order.append((i, j))
        return order

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Grid({self.m}x{self.n})"
