"""Light colors of luminous robots.

The paper uses at most three colors, written ``G`` (green), ``W`` (white)
and ``B`` (black/blue) — see Algorithms 1–11.  Colors in this library are
plain strings so that user-defined algorithms may use arbitrary labels; the
constants below cover the paper's palette.

A *multiset of colors* (the ``M_{i,j}`` of the paper, i.e. the colors of the
robots hosted by one node) is represented canonically as a sorted tuple of
color strings, produced by :func:`multiset`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = [
    "G",
    "W",
    "B",
    "DEFAULT_PALETTE",
    "Color",
    "ColorMultiset",
    "multiset",
    "multiset_union",
    "multiset_remove",
    "validate_color",
]

#: Green light (the paper's ``G``).
G = "G"
#: White light (the paper's ``W``).
W = "W"
#: Black light (the paper's ``B``).
B = "B"

#: The three colors used across the paper's algorithms, in a fixed order.
DEFAULT_PALETTE: Tuple[str, ...] = (G, W, B)

#: Type alias for a single color.
Color = str

#: Type alias for a canonical (sorted) multiset of colors.
ColorMultiset = Tuple[str, ...]


def validate_color(color: Color) -> Color:
    """Return ``color`` unchanged if it is a valid color label.

    A valid color is a non-empty string.  Raises :class:`ValueError`
    otherwise.
    """
    if not isinstance(color, str) or not color:
        raise ValueError(f"invalid color label: {color!r}")
    return color


def multiset(*colors: Color) -> ColorMultiset:
    """Build a canonical multiset of colors.

    >>> multiset("W", "G")
    ('G', 'W')
    >>> multiset()
    ()
    """
    for color in colors:
        validate_color(color)
    return tuple(sorted(colors))


def multiset_union(first: Iterable[Color], second: Iterable[Color]) -> ColorMultiset:
    """Union (with multiplicities) of two color multisets, canonicalised."""
    return tuple(sorted((*first, *second)))


def multiset_remove(source: Iterable[Color], color: Color) -> ColorMultiset:
    """Remove one occurrence of ``color`` from ``source``.

    Raises :class:`ValueError` if ``color`` is not present.
    """
    items = list(source)
    items.remove(color)
    return tuple(sorted(items))
