"""Views, visibility balls and the symmetry group of the grid.

A myopic robot observes the multiset of colors of every node within graph
distance ``phi`` of its own node (Section 2.2 of the paper).  Because robots
have no compass, the snapshot is only defined up to a rotation of the plane;
without a common chirality it is additionally only defined up to a mirror
reflection.  The paper expresses this by saying the robot "obtains" four
(resp. eight) views ``V_{phi,nu}, V_{phi,e}, ...`` and cannot tell which is
which.

This module provides

* :func:`ball_offsets` — the relative offsets of the radius-``phi``
  visibility ball (13 cells for ``phi = 2``, 5 for ``phi = 1``);
* :class:`Symmetry` and the :data:`ROTATIONS` / :data:`ALL_SYMMETRIES`
  groups — the dihedral group D4 acting on offsets, split into the four
  orientation-preserving rotations (available with a common chirality) and
  all eight symmetries (no common chirality);
* :func:`snapshot_contents` — extraction of the local snapshot around a
  node: a mapping from relative offsets to either ``None`` (the paper's
  ``⊥``: the node does not exist) or a sorted color multiset (possibly
  empty, the paper's ``∅``);
* :func:`view_tuple` — the flattened view sequences of Section 2.2, mostly
  useful for documentation and for tests that cross-check the symmetry
  machinery against the paper's explicit view definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from .colors import ColorMultiset
from .grid import Grid, Node

__all__ = [
    "Offset",
    "CellContent",
    "ball_offsets",
    "Symmetry",
    "IDENTITY",
    "ROTATIONS",
    "REFLECTIONS",
    "ALL_SYMMETRIES",
    "symmetries_for",
    "snapshot_contents",
    "Snapshot",
    "view_tuple",
]

#: A relative offset ``(di, dj)`` from the observing robot's node.
Offset = Tuple[int, int]

#: The content of one visible cell: ``None`` encodes the paper's ``⊥``
#: (the node does not exist), a tuple of colors encodes the multiset of
#: lights on the node (the empty tuple is the paper's ``∅``).
CellContent = Optional[ColorMultiset]

#: A full local snapshot: offset -> cell content over the visibility ball.
Snapshot = Dict[Offset, CellContent]


@lru_cache(maxsize=None)
def ball_offsets(phi: int) -> Tuple[Offset, ...]:
    """Relative offsets of the radius-``phi`` visibility ball, centre included.

    Offsets are returned sorted lexicographically so that iteration order is
    deterministic across the library.
    """
    if phi < 0:
        raise ValueError("phi must be non-negative")
    offsets: List[Offset] = []
    for di in range(-phi, phi + 1):
        remaining = phi - abs(di)
        for dj in range(-remaining, remaining + 1):
            offsets.append((di, dj))
    return tuple(sorted(offsets))


@dataclass(frozen=True)
class Symmetry:
    """An element of the dihedral group D4 acting on relative offsets.

    The action is the integer linear map ``(di, dj) -> (a*di + b*dj,
    c*di + d*dj)``.  Rotations have determinant ``+1`` and are exactly the
    transformations available to robots sharing a common chirality;
    reflections (determinant ``-1``) additionally arise when robots do not
    agree on a chirality.
    """

    name: str
    a: int
    b: int
    c: int
    d: int

    def apply(self, offset: Offset) -> Offset:
        """Apply the symmetry to a relative offset."""
        di, dj = offset
        return (self.a * di + self.b * dj, self.c * di + self.d * dj)

    @property
    def determinant(self) -> int:
        """Determinant of the underlying linear map (+1 or -1)."""
        return self.a * self.d - self.b * self.c

    @property
    def is_rotation(self) -> bool:
        """Whether the symmetry preserves orientation (chirality)."""
        return self.determinant == 1

    def compose(self, other: "Symmetry") -> "Symmetry":
        """The symmetry ``self ∘ other`` (first ``other``, then ``self``)."""
        return Symmetry(
            name=f"{self.name}*{other.name}",
            a=self.a * other.a + self.b * other.c,
            b=self.a * other.b + self.b * other.d,
            c=self.c * other.a + self.d * other.c,
            d=self.c * other.b + self.d * other.d,
        )

    def matrix(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """The 2x2 integer matrix of the map."""
        return ((self.a, self.b), (self.c, self.d))


#: The identity symmetry.
IDENTITY = Symmetry("id", 1, 0, 0, 1)
#: Rotation by 90 degrees.
ROT90 = Symmetry("rot90", 0, -1, 1, 0)
#: Rotation by 180 degrees.
ROT180 = Symmetry("rot180", -1, 0, 0, -1)
#: Rotation by 270 degrees.
ROT270 = Symmetry("rot270", 0, 1, -1, 0)
#: Reflection swapping East and West (mirror across the North-South axis).
FLIP_EW = Symmetry("flipEW", 1, 0, 0, -1)
#: Reflection swapping North and South.
FLIP_NS = Symmetry("flipNS", -1, 0, 0, 1)
#: Reflection across the main diagonal.
TRANSPOSE = Symmetry("transpose", 0, 1, 1, 0)
#: Reflection across the anti-diagonal.
ANTITRANSPOSE = Symmetry("antitranspose", 0, -1, -1, 0)

#: Orientation-preserving symmetries: available with a common chirality.
ROTATIONS: Tuple[Symmetry, ...] = (IDENTITY, ROT90, ROT180, ROT270)
#: Orientation-reversing symmetries.
REFLECTIONS: Tuple[Symmetry, ...] = (FLIP_EW, FLIP_NS, TRANSPOSE, ANTITRANSPOSE)
#: The full dihedral group: available without a common chirality.
ALL_SYMMETRIES: Tuple[Symmetry, ...] = ROTATIONS + REFLECTIONS


def symmetries_for(chirality: bool) -> Tuple[Symmetry, ...]:
    """The symmetries under which a guard may match.

    With a common chirality the robots agree on clockwise, so only the four
    rotations are possible; without it, mirror images must be considered as
    well (Section 2.2).
    """
    return ROTATIONS if chirality else ALL_SYMMETRIES


def snapshot_contents(grid: Grid, robots, center: Node, phi: int) -> Snapshot:
    """The local snapshot a robot located at ``center`` would take.

    Parameters
    ----------
    grid:
        The grid graph.
    robots:
        Iterable of :class:`~repro.core.robot.Robot`; every robot within
        distance ``phi`` of ``center`` contributes its color (including any
        robot located *at* ``center`` — the paper's ``M_{i,j}`` contains the
        observer itself).
    center:
        The observing robot's node.
    phi:
        Visibility radius.

    Returns
    -------
    dict
        Mapping each relative offset of the visibility ball to ``None``
        (off-grid) or to the sorted multiset of colors on that node.
    """
    per_node: Dict[Node, List[str]] = {}
    for robot in robots:
        if Grid.distance(robot.pos, center) <= phi:
            per_node.setdefault(robot.pos, []).append(robot.color)

    snapshot: Snapshot = {}
    for offset in ball_offsets(phi):
        node = (center[0] + offset[0], center[1] + offset[1])
        if not grid.contains(node):
            snapshot[offset] = None
        else:
            snapshot[offset] = tuple(sorted(per_node.get(node, ())))
    return snapshot


# ---------------------------------------------------------------------------
# Paper-style flattened views (Section 2.2)
# ---------------------------------------------------------------------------

#: Reading order of the phi = 1 North view
#: ``V_{1,nu} = (c_r, M_{i-1,j}, M_{i,j-1}, M_{i,j}, M_{i,j+1}, M_{i+1,j})``.
_VIEW_ORDER_PHI1: Tuple[Offset, ...] = ((-1, 0), (0, -1), (0, 0), (0, 1), (1, 0))

#: Reading order of the phi = 2 North view (Section 2.2), row by row.
_VIEW_ORDER_PHI2: Tuple[Offset, ...] = (
    (-2, 0),
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -2),
    (0, -1),
    (0, 0),
    (0, 1),
    (0, 2),
    (1, -1),
    (1, 0),
    (1, 1),
    (2, 0),
)


def view_tuple(snapshot: Snapshot, observer_color: str, symmetry: Symmetry, phi: int):
    """The paper's flattened view sequence under a given symmetry.

    ``view_tuple(snapshot, c, IDENTITY, 1)`` equals the North view
    ``V_{1,nu}``; applying the other rotations yields the East, South and
    West views, and the reflections yield their mirror images — exactly the
    eight sequences listed in Section 2.2.
    """
    order = _VIEW_ORDER_PHI1 if phi == 1 else _VIEW_ORDER_PHI2
    cells = tuple(snapshot[symmetry.apply(offset)] for offset in order)
    return (observer_color,) + cells
