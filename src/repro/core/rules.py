"""Guards, actions and rules: the algorithm description formalism.

Section 2.4 of the paper describes an algorithm as a set of rules, each
rule being a combination of a label, a *guard* and an *action*.  A guard
constrains every node of the visibility ball:

* a node painted **white** must be empty (``∅``);
* a node painted **black** must not exist (``⊥`` — beyond the grid
  boundary);
* a node painted **gray** may be either empty or non-existent;
* a node annotated with a multiset (for instance ``{G, W}``) must host
  exactly the robots whose lights form that multiset;
* the centre cell carries the observing robot's own color ``c_r`` together
  with the multiset of the node it occupies.

The action is a pair ``(c_new, Movement)`` where ``Movement`` is one of
``Idle``, ``←``, ``→``, ``↑``, ``↓`` interpreted in the *guard's frame* and
mapped into the world through whichever symmetry made the guard match.

This module provides the executable counterpart of that formalism:
:class:`CellSpec`, :class:`Guard`, :class:`Rule`, a compact keyword-based
guard constructor and an ASCII-art guard parser used by the algorithm
modules and the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple

from .colors import Color, ColorMultiset, multiset, validate_color
from .errors import GuardError, RuleError
from .views import CellContent, Offset, Snapshot, Symmetry, ball_offsets

__all__ = [
    "CellKind",
    "CellSpec",
    "EMPTY",
    "WALL",
    "FREE",
    "ANY",
    "occ",
    "OFFSET_NAMES",
    "NAMED_OFFSETS",
    "Guard",
    "Movement",
    "IDLE",
    "Rule",
    "parse_guard_art",
    "guard_to_art",
]


class CellKind(Enum):
    """The kinds of constraints a guard may place on one visible cell."""

    #: The node exists and hosts no robot (white cell, ``∅``).
    EMPTY = "empty"
    #: The node does not exist (black cell, ``⊥``).
    WALL = "wall"
    #: Either empty or non-existent (gray cell).
    FREE = "free"
    #: The node exists and hosts exactly the given multiset of lights.
    OCCUPIED = "occupied"
    #: No constraint at all (not used by the paper's figures, available for
    #: user-defined algorithms).
    ANY = "any"


@dataclass(frozen=True)
class CellSpec:
    """A constraint on the content of a single visible cell."""

    kind: CellKind
    colors: ColorMultiset = ()

    def __post_init__(self) -> None:
        if self.kind is CellKind.OCCUPIED:
            if not self.colors:
                raise GuardError("an OCCUPIED cell spec needs at least one color")
            object.__setattr__(self, "colors", multiset(*self.colors))
        elif self.colors:
            raise GuardError(f"{self.kind} cell spec cannot carry colors")

    def matches(self, content: CellContent) -> bool:
        """Whether a snapshot cell satisfies this constraint."""
        if self.kind is CellKind.ANY:
            return True
        if self.kind is CellKind.WALL:
            return content is None
        if self.kind is CellKind.EMPTY:
            return content == ()
        if self.kind is CellKind.FREE:
            return content is None or content == ()
        # OCCUPIED
        return content is not None and content == self.colors

    def __str__(self) -> str:
        if self.kind is CellKind.OCCUPIED:
            return "{" + ",".join(self.colors) + "}"
        return {
            CellKind.EMPTY: "o",
            CellKind.WALL: "#",
            CellKind.FREE: ".",
            CellKind.ANY: "?",
        }[self.kind]


#: The node must be empty (paper: white cell).
EMPTY = CellSpec(CellKind.EMPTY)
#: The node must not exist (paper: black cell).
WALL = CellSpec(CellKind.WALL)
#: The node must be empty or non-existent (paper: gray cell).
FREE = CellSpec(CellKind.FREE)
#: No constraint.
ANY = CellSpec(CellKind.ANY)


def occ(*colors: Color) -> CellSpec:
    """Constraint: the node hosts exactly the robots with these lights.

    >>> occ("G", "W").matches(("G", "W"))
    True
    >>> occ("G").matches(())
    False
    """
    return CellSpec(CellKind.OCCUPIED, multiset(*colors))


#: Compass-style names for the offsets of the radius-2 visibility ball.
#: ``C`` is the observing robot's own node.  Single letters are the four
#: neighbors, doubled letters are two steps away along an axis and the
#: two-letter diagonals are the distance-2 diagonal cells.
NAMED_OFFSETS: Dict[str, Offset] = {
    "C": (0, 0),
    "N": (-1, 0),
    "S": (1, 0),
    "E": (0, 1),
    "W": (0, -1),
    "NN": (-2, 0),
    "SS": (2, 0),
    "EE": (0, 2),
    "WW": (0, -2),
    "NE": (-1, 1),
    "NW": (-1, -1),
    "SE": (1, 1),
    "SW": (1, -1),
}

#: Inverse of :data:`NAMED_OFFSETS`.
OFFSET_NAMES: Dict[Offset, str] = {offset: name for name, offset in NAMED_OFFSETS.items()}


#: Movement labels: the four guard-frame directions plus ``Idle``.
Movement = Optional[str]

#: The ``Idle`` movement (the robot stays on its node).
IDLE: Movement = None

_MOVE_OFFSETS: Dict[str, Offset] = {
    "N": (-1, 0),
    "S": (1, 0),
    "E": (0, 1),
    "W": (0, -1),
}


@dataclass(frozen=True)
class Guard:
    """A constraint on the full radius-``phi`` view, in the guard's frame.

    Cells omitted from ``cells`` default to :data:`FREE` (the gray cells of
    the paper's figures): they may be empty or off-grid but may *not* host a
    robot.  This default keeps guard declarations compact while remaining
    faithful — the paper's guards never leave an occupied cell undrawn.
    """

    phi: int
    cells: Tuple[Tuple[Offset, CellSpec], ...]
    default: CellSpec = FREE

    def __post_init__(self) -> None:
        if self.phi not in (1, 2):
            raise GuardError(f"unsupported visibility radius phi={self.phi}")
        valid = set(ball_offsets(self.phi))
        seen = set()
        for offset, spec in self.cells:
            if offset not in valid:
                raise GuardError(
                    f"guard cell offset {offset} outside the radius-{self.phi} ball"
                )
            if offset in seen:
                raise GuardError(f"guard cell offset {offset} specified twice")
            if not isinstance(spec, CellSpec):
                raise GuardError(f"guard cell at {offset} is not a CellSpec: {spec!r}")
            seen.add(offset)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        phi: int,
        default: CellSpec = FREE,
        **named_cells: CellSpec,
    ) -> "Guard":
        """Build a guard from compass-named cells.

        >>> g = Guard.build(1, W=occ("G"), E=EMPTY)
        >>> g.spec_at((0, -1))
        CellSpec(kind=<CellKind.OCCUPIED: 'occupied'>, colors=('G',))
        """
        cells = []
        for name, spec in named_cells.items():
            try:
                offset = NAMED_OFFSETS[name]
            except KeyError as exc:
                raise GuardError(f"unknown guard cell name {name!r}") from exc
            cells.append((offset, spec))
        return cls(phi=phi, cells=tuple(sorted(cells)), default=default)

    @classmethod
    def from_mapping(
        cls, phi: int, mapping: Mapping[Offset, CellSpec], default: CellSpec = FREE
    ) -> "Guard":
        """Build a guard from an offset -> spec mapping."""
        return cls(phi=phi, cells=tuple(sorted(mapping.items())), default=default)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def spec_at(self, offset: Offset) -> CellSpec:
        """The constraint on a given guard-frame offset."""
        for cell_offset, spec in self.cells:
            if cell_offset == offset:
                return spec
        return self.default

    def as_dict(self) -> Dict[Offset, CellSpec]:
        """All constrained cells as a dictionary (defaults not expanded)."""
        return dict(self.cells)

    def occupied_offsets(self) -> Tuple[Offset, ...]:
        """Guard-frame offsets that require a specific non-empty multiset."""
        return tuple(
            offset for offset, spec in self.cells if spec.kind is CellKind.OCCUPIED
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches(
        self,
        snapshot: Snapshot,
        symmetry: Symmetry,
        center_default: Optional[CellSpec] = None,
    ) -> bool:
        """Whether ``snapshot`` satisfies the guard under ``symmetry``.

        The guard-frame offset ``o`` is checked against the snapshot cell at
        the world offset ``symmetry(o)``.

        ``center_default`` is the constraint applied to the centre cell when
        the guard does not specify one.  The centre always hosts at least
        the observing robot, so the gray default used for the surrounding
        cells would never match there; :class:`Rule` passes "exactly the
        observing robot's own color", matching the paper's convention of
        drawing only ``c_r`` at the centre when the robot is alone on its
        node.
        """
        explicit = self.as_dict()
        for offset in ball_offsets(self.phi):
            if offset == (0, 0):
                spec = explicit.get(offset)
                if spec is None:
                    spec = center_default if center_default is not None else self.default
            else:
                spec = explicit.get(offset, self.default)
            if spec.kind is CellKind.ANY:
                continue
            if not spec.matches(snapshot[symmetry.apply(offset)]):
                return False
        return True


@dataclass(frozen=True)
class Rule:
    """One rule ``label : guard -> (c_new, movement)`` of an algorithm.

    ``self_color`` is the color ``c_r`` the observing robot must currently
    display for the rule to apply; ``move`` is expressed in the guard's
    frame (``"N"``, ``"S"``, ``"E"``, ``"W"`` or ``None`` for ``Idle``).
    """

    name: str
    self_color: Color
    guard: Guard
    new_color: Color
    move: Movement = IDLE

    def __post_init__(self) -> None:
        validate_color(self.self_color)
        validate_color(self.new_color)
        if self.move is not None and self.move not in _MOVE_OFFSETS:
            raise RuleError(f"rule {self.name}: invalid movement {self.move!r}")

    @property
    def phi(self) -> int:
        """Visibility radius of the rule's guard."""
        return self.guard.phi

    def move_offset(self) -> Optional[Offset]:
        """The guard-frame unit offset of the movement (``None`` for Idle)."""
        if self.move is None:
            return None
        return _MOVE_OFFSETS[self.move]

    def world_move(self, symmetry: Symmetry) -> Optional[Offset]:
        """The world-frame movement offset once the guard matched under ``symmetry``."""
        offset = self.move_offset()
        if offset is None:
            return None
        return symmetry.apply(offset)

    def center_spec(self) -> CellSpec:
        """The constraint on the robot's own node.

        If the guard names the centre cell explicitly (for instance
        ``C=occ("G", "W")`` for a robot stacked with another one) that
        constraint is used verbatim; otherwise the robot must be alone on
        its node, i.e. the centre multiset is exactly ``{self_color}``.
        """
        explicit = self.guard.as_dict().get((0, 0))
        if explicit is not None:
            return explicit
        return occ(self.self_color)

    def matches(self, snapshot: Snapshot, symmetry: Symmetry) -> bool:
        """Whether the rule's guard matches ``snapshot`` under ``symmetry``.

        The observing robot's own color is *not* checked here (the caller
        filters rules by ``self_color`` first); only the cell contents are.
        """
        return self.guard.matches(snapshot, symmetry, center_default=occ(self.self_color))

    def action_label(self) -> str:
        """Human-readable action, e.g. ``"G,->"`` or ``"W,Idle"``."""
        arrow = {None: "Idle", "N": "^", "S": "v", "E": "->", "W": "<-"}[self.move]
        return f"{self.new_color},{arrow}"

    def __str__(self) -> str:
        return f"{self.name}: {self.self_color} / {self.action_label()}"


# ---------------------------------------------------------------------------
# ASCII guard art
# ---------------------------------------------------------------------------

_ART_SIZE = {1: 3, 2: 5}


def parse_guard_art(phi: int, art: str, default: CellSpec = FREE) -> Guard:
    """Parse a guard drawn as ASCII art.

    The drawing is a ``3x3`` (phi = 1) or ``5x5`` (phi = 2) token grid whose
    centre is the observing robot.  Tokens:

    * ``.``   gray cell (empty or off-grid) — the default;
    * ``o``   white cell (must be empty);
    * ``#``   black cell (must be off-grid);
    * ``?``   unconstrained;
    * ``_``   cell outside the visibility diamond (ignored);
    * a comma-free string of color letters, e.g. ``G`` or ``GW``, meaning
      the node hosts exactly those robots.

    Example (phi = 1)::

        parse_guard_art(1, '''
            _ o _
            G * o
            _ . _
        ''')

    The centre token must be ``*`` (the centre constraint, which also covers
    the observing robot itself, is supplied through the ``C`` keyword of
    :meth:`Guard.build`) or a color string constraining the full multiset on
    the robot's own node.
    """
    size = _ART_SIZE.get(phi)
    if size is None:
        raise GuardError(f"unsupported visibility radius phi={phi}")
    rows = [line.split() for line in art.strip().splitlines() if line.strip()]
    if len(rows) != size or any(len(row) != size for row in rows):
        raise GuardError(f"guard art for phi={phi} must be a {size}x{size} token grid")
    half = size // 2
    cells: Dict[Offset, CellSpec] = {}
    for r, row in enumerate(rows):
        for c, token in enumerate(row):
            offset = (r - half, c - half)
            inside = abs(offset[0]) + abs(offset[1]) <= phi
            if token == "_":
                if inside:
                    raise GuardError(f"cell {offset} is inside the ball, cannot be '_'")
                continue
            if not inside:
                raise GuardError(f"cell {offset} is outside the ball, use '_'")
            if offset == (0, 0):
                if token == "*":
                    continue
                cells[offset] = occ(*token)
                continue
            if token == ".":
                continue
            if token == "o":
                cells[offset] = EMPTY
            elif token == "#":
                cells[offset] = WALL
            elif token == "?":
                cells[offset] = ANY
            else:
                cells[offset] = occ(*token)
    return Guard.from_mapping(phi, cells, default=default)


def guard_to_art(guard: Guard) -> str:
    """Render a guard back to the ASCII-art syntax of :func:`parse_guard_art`."""
    size = _ART_SIZE[guard.phi]
    half = size // 2
    lines = []
    for r in range(size):
        tokens = []
        for c in range(size):
            offset = (r - half, c - half)
            if abs(offset[0]) + abs(offset[1]) > guard.phi:
                tokens.append("_")
                continue
            spec = guard.spec_at(offset)
            if offset == (0, 0) and spec == guard.default:
                tokens.append("*")
                continue
            if spec.kind is CellKind.OCCUPIED:
                tokens.append("".join(spec.colors))
            elif spec.kind is CellKind.EMPTY:
                tokens.append("o")
            elif spec.kind is CellKind.WALL:
                tokens.append("#")
            elif spec.kind is CellKind.ANY:
                tokens.append("?")
            else:
                tokens.append(".")
        lines.append(" ".join(tokens))
    return "\n".join(lines)
