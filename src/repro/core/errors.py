"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by the simulator, the rule engine, or the model
checker with a single ``except`` clause, while still being able to
distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridError",
    "ConfigurationError",
    "RuleError",
    "GuardError",
    "AlgorithmError",
    "SchedulerError",
    "SimulationError",
    "AmbiguousActionError",
    "IllegalMoveError",
    "NonTerminationError",
    "VerificationError",
    "ModelCheckingError",
    "StateSpaceLimitExceeded",
]


class ReproError(Exception):
    """Base class of every error raised by the :mod:`repro` library."""


class GridError(ReproError):
    """Raised for invalid grid dimensions or out-of-grid node references."""


class ConfigurationError(ReproError):
    """Raised for malformed robot configurations (e.g. robots off the grid)."""


class RuleError(ReproError):
    """Raised for malformed rules (unknown colors, invalid movements...)."""


class GuardError(RuleError):
    """Raised for malformed guards (offsets outside the visibility ball...)."""


class AlgorithmError(ReproError):
    """Raised for inconsistent algorithm specifications."""


class SchedulerError(ReproError):
    """Raised when a scheduler produces an invalid activation choice."""


class SimulationError(ReproError):
    """Base class of errors occurring while executing an algorithm."""


class AmbiguousActionError(SimulationError):
    """A robot matched several rules/views with *different* outcomes.

    The paper resolves such ties through the scheduler; deterministic
    simulation modes may instead treat ambiguity as an error to surface
    unintended nondeterminism in a rule set.
    """


class IllegalMoveError(SimulationError):
    """A robot attempted to move off the grid."""


class NonTerminationError(SimulationError):
    """A bounded simulation exceeded its step budget without terminating."""


class VerificationError(ReproError):
    """A verification campaign found a violated property."""


class ModelCheckingError(ReproError):
    """Base class of model-checker errors."""


class StateSpaceLimitExceeded(ModelCheckingError):
    """The exhaustive state-space exploration hit its state budget.

    Carries the exploration context so callers can report or react to the
    blow-up precisely: ``algorithm`` and ``model`` identify the check,
    ``max_states`` the budget, ``states_explored`` how many states had been
    expanded and ``frontier_size`` how many were still waiting when the
    budget tripped.
    """

    def __init__(
        self,
        message: str,
        *,
        algorithm: "str | None" = None,
        model: "str | None" = None,
        max_states: "int | None" = None,
        states_explored: "int | None" = None,
        frontier_size: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.algorithm = algorithm
        self.model = model
        self.max_states = max_states
        self.states_explored = states_explored
        self.frontier_size = frontier_size
