"""Schedulers (the paper's adversarial "daemon").

Section 2.1: a scheduler decides when each robot executes its Look, Compute
and Move phases.

* **FSYNC**: at every instant, all robots execute a full synchronous cycle.
* **SSYNC**: at every instant, a non-empty subset of the robots executes a
  full synchronous cycle.
* **ASYNC**: Look, Compute and Move phases of different robots interleave
  arbitrarily; a robot may move based on an outdated snapshot.

The scheduler is always assumed *fair*: every robot is activated infinitely
often.  The simulator enforces an operational version of fairness (a robot
that stays enabled is eventually activated); exhaustive exploration of
scheduler nondeterminism is the job of :mod:`repro.checking`.

For the SSYNC and ASYNC simulators this module provides concrete scheduler
policies: random (seeded), sequential/round-robin, and single-robot-at-a-
time policies that reproduce the step-by-step executions drawn in the
paper's figures for the ASYNC algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .errors import SchedulerError

__all__ = [
    "SsyncScheduler",
    "FullActivation",
    "SingleSequential",
    "SingleRandom",
    "RandomSubset",
    "AsyncScheduler",
    "SequentialAsync",
    "RandomAsync",
    "PhaseChoice",
]


# ---------------------------------------------------------------------------
# SSYNC schedulers
# ---------------------------------------------------------------------------
class SsyncScheduler:
    """Base class of SSYNC activation policies.

    Subclasses implement :meth:`select`, which receives the identifiers of
    the currently *enabled* robots and must return a non-empty subset of
    them.  (Activating a disabled robot is a no-op, so restricting the
    choice to enabled robots loses no behaviours.)
    """

    def select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def checked_select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        """Call :meth:`select` and validate the result."""
        chosen = list(self.select(round_index, enabled))
        if not chosen:
            raise SchedulerError("SSYNC scheduler selected an empty activation set")
        if not set(chosen) <= set(enabled):
            raise SchedulerError(
                f"SSYNC scheduler selected robots {chosen} outside the enabled set {list(enabled)}"
            )
        return sorted(set(chosen))


@dataclass
class FullActivation(SsyncScheduler):
    """Activate every enabled robot: the FSYNC scheduler seen as an SSYNC one."""

    def select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        return list(enabled)


@dataclass
class SingleSequential(SsyncScheduler):
    """Activate exactly one enabled robot per round, cycling by identifier.

    This is the "centralised" scheduler: it is a legal SSYNC (and ASYNC)
    scheduler, and it is the schedule under which the paper's ASYNC
    algorithm figures are drawn (one robot acts at a time).
    """

    _cursor: int = 0

    def select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        ordered = sorted(enabled)
        for candidate in ordered:
            if candidate >= self._cursor:
                self._cursor = candidate + 1
                return [candidate]
        self._cursor = ordered[0] + 1
        return [ordered[0]]


@dataclass
class SingleRandom(SsyncScheduler):
    """Activate one enabled robot chosen uniformly at random (seeded)."""

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        return [self._rng.choice(sorted(enabled))]


@dataclass
class RandomSubset(SsyncScheduler):
    """Activate a uniformly random non-empty subset of the enabled robots."""

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, round_index: int, enabled: Sequence[int]) -> List[int]:
        ordered = sorted(enabled)
        chosen = [rid for rid in ordered if self._rng.random() < 0.5]
        if not chosen:
            chosen = [self._rng.choice(ordered)]
        return chosen


# ---------------------------------------------------------------------------
# ASYNC schedulers
# ---------------------------------------------------------------------------

#: A pending atomic step offered to the ASYNC scheduler: the robot identifier
#: and the phase it would execute next (``"look"``, ``"compute"`` or
#: ``"move"``).
PhaseChoice = Tuple[int, str]


class AsyncScheduler:
    """Base class of ASYNC interleaving policies.

    Subclasses implement :meth:`choose`, which receives the list of pending
    atomic steps (one per robot that can currently advance) and returns the
    one to execute.
    """

    def choose(self, step_index: int, candidates: Sequence[PhaseChoice]) -> PhaseChoice:
        raise NotImplementedError

    def checked_choose(self, step_index: int, candidates: Sequence[PhaseChoice]) -> PhaseChoice:
        choice = self.choose(step_index, candidates)
        if choice not in candidates:
            raise SchedulerError(
                f"ASYNC scheduler chose {choice}, not among the candidates {list(candidates)}"
            )
        return choice


@dataclass
class SequentialAsync(AsyncScheduler):
    """Run one robot's full Look-Compute-Move cycle at a time.

    Mid-cycle robots are always preferred, so a started cycle finishes
    before another robot begins.  Ties are broken by robot identifier.
    This is the schedule used by the paper's ASYNC figures, and also a
    legal SSYNC/sequential execution.
    """

    def choose(self, step_index: int, candidates: Sequence[PhaseChoice]) -> PhaseChoice:
        in_progress = [c for c in candidates if c[1] != "look"]
        pool = in_progress if in_progress else list(candidates)
        return sorted(pool)[0]


@dataclass
class RandomAsync(AsyncScheduler):
    """Pick a uniformly random pending atomic step (seeded).

    This freely interleaves Look, Compute and Move phases of different
    robots and therefore exercises the stale-snapshot hazards that
    distinguish ASYNC from SSYNC.
    """

    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, step_index: int, candidates: Sequence[PhaseChoice]) -> PhaseChoice:
        return self._rng.choice(sorted(candidates))
