"""Regeneration of Table 1 (the paper's headline result table).

Table 1 lists, for every combination of synchrony, visibility ``phi``,
number of colors ``ell`` and chirality, the lower bound and the upper
bound (achieved by an algorithm) on the number of robots for terminating
grid exploration.  :func:`build_table1` reproduces the table from this
repository's artifacts:

* the *upper bound* of a row is the robot count of the registered
  algorithm for that row, and its "measured" entry reports whether the
  verification campaign (simulation sweeps, plus exhaustive model checking
  for the SSYNC/ASYNC rows) confirms terminating exploration;
* the *lower bound* of the ``phi = 1`` SSYNC/ASYNC rows is the paper's own
  Theorem 1, whose executable demonstration lives in
  :mod:`repro.impossibility`; the other lower bounds are quoted from
  Bramas et al. [5] exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..algorithms import table1_rows
from ..checking import check_terminating_exploration
from ..core.algorithm import Algorithm
from ..core.grid import Grid
from ..verification import verify_algorithm

__all__ = ["Table1Row", "build_table1", "render_table1", "PAPER_TABLE1"]


#: The paper's Table 1, keyed by (synchrony, phi, ell, chirality):
#: (lower bound, lower-bound source, upper bound, optimal?).
PAPER_TABLE1 = {
    ("FSYNC", 2, 2, True): (2, "[5]", 2, True),
    ("FSYNC", 2, 2, False): (2, "[5]", 3, False),
    ("FSYNC", 2, 1, True): (3, "[5]", 3, True),
    ("FSYNC", 2, 1, False): (3, "[5]", 4, False),
    ("FSYNC", 1, 3, True): (2, "[5]", 2, True),
    ("FSYNC", 1, 3, False): (2, "[5]", 4, False),
    ("FSYNC", 1, 2, True): (3, "[5]", 3, True),
    ("FSYNC", 1, 2, False): (3, "[5]", 5, False),
    ("ASYNC", 2, 3, True): (2, "[5]", 2, True),
    ("ASYNC", 2, 3, False): (2, "[5]", 3, False),
    ("ASYNC", 2, 2, True): (2, "[5]", 3, False),
    ("ASYNC", 2, 2, False): (2, "[5]", 4, False),
    ("ASYNC", 1, 3, True): (3, "Thm 1", 3, True),
    ("ASYNC", 1, 3, False): (3, "Thm 1", 6, False),
}


@dataclass
class Table1Row:
    """One regenerated row of Table 1."""

    synchrony: str
    phi: int
    ell: int
    chirality: bool
    lower_bound: int
    lower_source: str
    paper_upper: int
    paper_optimal: bool
    algorithm: Optional[str]
    measured_k: Optional[int]
    verified: Optional[bool]
    model_checked: Optional[bool]
    note: str = ""

    @property
    def matches_paper(self) -> bool:
        """Whether the measured upper bound and its validity match the paper."""
        return (
            self.algorithm is not None
            and self.measured_k == self.paper_upper
            and bool(self.verified)
        )


def _check_row(
    algorithm: Algorithm,
    quick: bool,
    model_check_grid: Tuple[int, int],
) -> Tuple[bool, Optional[bool]]:
    """Verification outcome (simulation sweep, optional exhaustive check)."""
    seeds = (0, 1) if quick else tuple(range(5))
    report = verify_algorithm(algorithm, seeds=seeds)
    verified = report.ok
    model_checked: Optional[bool] = None
    if algorithm.synchrony == "ASYNC":
        m = max(algorithm.min_m, model_check_grid[0])
        n = max(algorithm.min_n, model_check_grid[1])
        result = check_terminating_exploration(algorithm, Grid(m, n), model="SSYNC")
        model_checked = result.ok
    return verified, model_checked


def build_table1(quick: bool = True, model_check_grid: Tuple[int, int] = (3, 4)) -> List[Table1Row]:
    """Regenerate Table 1 from the registered algorithms.

    ``quick=True`` uses a reduced seed set for the randomized campaigns
    (suitable for benchmarks); ``quick=False`` runs the full campaign.
    """
    registered = {
        (a.synchrony, a.phi, a.ell, a.chirality): a for a in table1_rows()
    }
    rows: List[Table1Row] = []
    for key, (lower, source, upper, optimal) in PAPER_TABLE1.items():
        synchrony, phi, ell, chirality = key
        algorithm = registered.get(key)
        if algorithm is None:
            rows.append(
                Table1Row(
                    synchrony=synchrony,
                    phi=phi,
                    ell=ell,
                    chirality=chirality,
                    lower_bound=lower,
                    lower_source=source,
                    paper_upper=upper,
                    paper_optimal=optimal,
                    algorithm=None,
                    measured_k=None,
                    verified=None,
                    model_checked=None,
                    note="not reproduced (see EXPERIMENTS.md)",
                )
            )
            continue
        verified, model_checked = _check_row(algorithm, quick, model_check_grid)
        note = ""
        if algorithm.min_n > 3:
            note = f"verified for n >= {algorithm.min_n} (see EXPERIMENTS.md)"
        rows.append(
            Table1Row(
                synchrony=synchrony,
                phi=phi,
                ell=ell,
                chirality=chirality,
                lower_bound=lower,
                lower_source=source,
                paper_upper=upper,
                paper_optimal=optimal,
                algorithm=algorithm.name,
                measured_k=algorithm.k,
                verified=verified,
                model_checked=model_checked,
                note=note,
            )
        )
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the regenerated Table 1 as aligned text."""
    header = (
        f"{'Synchrony':<11}{'phi':<5}{'ell':<5}{'chir':<6}{'LB':<4}{'LB src':<8}"
        f"{'paper UB':<10}{'repo k':<8}{'verified':<10}{'checked':<9}note"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        chirality = "yes" if row.chirality else "no"
        star = "*" if row.paper_optimal else ""
        verified = "-" if row.verified is None else ("yes" if row.verified else "NO")
        checked = "-" if row.model_checked is None else ("yes" if row.model_checked else "NO")
        measured = "-" if row.measured_k is None else str(row.measured_k)
        lines.append(
            f"{row.synchrony:<11}{row.phi:<5}{row.ell:<5}{chirality:<6}{row.lower_bound:<4}"
            f"{row.lower_source:<8}{str(row.paper_upper) + star:<10}{measured:<8}"
            f"{verified:<10}{checked:<9}{row.note}"
        )
    return "\n".join(lines)
