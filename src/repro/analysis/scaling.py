"""Round-complexity scaling sweeps (extension beyond the paper).

The paper does not plot running times, but every algorithm visibly takes
Theta(m * n) robot moves.  This module measures steps and moves over a
family of grid sizes and fits the leading coefficient, which the scaling
benchmark (``benchmarks/bench_scaling.py``) reports as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..core.grid import Grid
from ..engine.matcher import MatcherCache
from ..engine.suites import scaling_suite
from ..engine.walk import TieBreak, run_fsync

__all__ = ["ScalingPoint", "round_complexity_sweep", "fit_linear_in_nodes"]


@dataclass(frozen=True)
class ScalingPoint:
    """One measurement of a scaling sweep."""

    m: int
    n: int
    nodes: int
    steps: int
    moves: int


def round_complexity_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    cache: Optional[MatcherCache] = None,
) -> List[ScalingPoint]:
    """Measure FSYNC rounds and moves over a family of grid sizes.

    The default size family is the shared :func:`repro.engine.suites.scaling_suite`.
    One :class:`~repro.engine.matcher.MatcherCache` (freshly created unless
    supplied) spans the whole sweep: the matcher's keys are grid-size
    independent, so every size after the first replays the interior
    patterns from the cache instead of re-evaluating the guards.
    """
    if sizes is None:
        sizes = scaling_suite(algorithm)
    cache = cache if cache is not None else MatcherCache()
    points = []
    for m, n in sizes:
        if not algorithm.supports_grid(m, n):
            continue
        grid = Grid(m, n)
        result = run_fsync(
            algorithm, grid, tie_break=TieBreak.FIRST, matcher=cache.matcher_for(algorithm, grid)
        )
        points.append(
            ScalingPoint(m=m, n=n, nodes=m * n, steps=result.steps, moves=result.total_moves)
        )
    return points


def fit_linear_in_nodes(points: List[ScalingPoint], field: str = "moves") -> float:
    """Least-squares slope of ``field`` against the node count (through the origin)."""
    num = sum(point.nodes * getattr(point, field) for point in points)
    den = sum(point.nodes * point.nodes for point in points)
    return num / den if den else float("nan")
