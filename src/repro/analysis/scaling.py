"""Round-complexity scaling sweeps (extension beyond the paper).

The paper does not plot running times, but every algorithm visibly takes
Theta(m * n) robot moves.  This module measures steps and moves over a
family of grid sizes and fits the leading coefficient, which the scaling
benchmark (``benchmarks/bench_scaling.py``) reports as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..core.algorithm import Algorithm
from ..core.errors import VerificationError
from ..core.grid import Grid
from ..engine.matcher import MatcherCache
from ..engine.pool import ExplorationPool, registered
from ..engine.reduction import ReductionSpec, normalize_reduction
from ..engine.sharded import explore_sharded
from ..engine.suites import scaling_suite
from ..engine.walk import TieBreak, run_fsync

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.backend import ExecutionBackend
    from ..engine.store import VerdictStore

__all__ = [
    "ScalingPoint",
    "StateSpacePoint",
    "round_complexity_sweep",
    "state_space_sweep",
    "fit_linear_in_nodes",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One measurement of a scaling sweep."""

    m: int
    n: int
    nodes: int
    steps: int
    moves: int


def round_complexity_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    cache: Optional[MatcherCache] = None,
    pool: Optional[ExplorationPool] = None,
    backend: Optional["ExecutionBackend"] = None,
    store: Optional["VerdictStore"] = None,
) -> List[ScalingPoint]:
    """Measure FSYNC rounds and moves over a family of grid sizes.

    The default size family is the shared :func:`repro.engine.suites.scaling_suite`.
    One :class:`~repro.engine.matcher.MatcherCache` spans the whole sweep:
    the matcher's keys are grid-size independent, so every size after the
    first replays the interior patterns from the cache instead of
    re-evaluating the guards.  The cache is, in order of preference, the
    caller's ``cache``, the coordinator cache of the caller's ``pool`` (so
    sweeps share warmth with every other workload threaded through that
    :class:`~repro.engine.pool.ExplorationPool`), or a fresh one.

    ``backend`` routes the sweep's bounded executions through an
    :class:`~repro.engine.backend.ExecutionBackend` as ordinary walk
    tasks — each point is a pure function of ``(algorithm, grid)`` under
    the deterministic FSYNC schedule, so the measured steps/moves are
    identical wherever the runs execute (TCP worker daemons included).

    ``store`` (a :class:`~repro.engine.store.VerdictStore`) memoizes each
    point's run as an ordinary walk verdict — sweeps re-run across
    sessions are served from disk; the fitted slope is unchanged because
    stored reports equal computed ones.
    """
    if sizes is None:
        sizes = scaling_suite(algorithm)
    sizes = [(m, n) for m, n in sizes if algorithm.supports_grid(m, n)]
    if backend is not None and registered(algorithm):
        from ..engine.campaign import CampaignTask, ParallelCampaignEngine  # local import: layering

        tasks = [
            CampaignTask(algorithm=algorithm.name, m=m, n=n, model="FSYNC", tie_break=TieBreak.FIRST)
            for m, n in sizes
        ]
        if store is not None:
            # The engine's prefilter serves stored points and records fresh
            # ones; only the remainder crosses the wire.
            reports = ParallelCampaignEngine(backend=backend, store=store).run_tasks(algorithm, tasks)
        else:
            reports = backend.run_tasks(tasks)
        for report in reports:
            # The serial path propagates execution errors; a report whose
            # run never executed (verify_one converts exceptions into
            # ok=False reports whose reason is the formatted exception)
            # must not become a silent (0, 0) data point skewing the fit.
            # Definition-1 outcomes — the run executed but did not
            # terminate/explore — are real measurements and recorded
            # exactly as the serial path records them.
            if not report.ok and not report.reason.startswith(
                ("did not terminate", "terminated with")
            ):
                raise VerificationError(
                    f"scaling sweep run failed on {report.m}x{report.n}: {report.reason}"
                )
        return [
            ScalingPoint(
                m=task.m, n=task.n, nodes=task.m * task.n, steps=report.steps, moves=report.moves
            )
            for task, report in zip(tasks, reports)
        ]
    if cache is None:
        cache = pool.cache if pool is not None else MatcherCache()
    if store is not None and registered(algorithm):
        from ..engine.campaign import verify_one  # local import: layering

        points = []
        for m, n in sizes:
            report = verify_one(
                algorithm, m, n, model="FSYNC", tie_break=TieBreak.FIRST, cache=cache, store=store
            )
            if not report.ok and not report.reason.startswith(
                ("did not terminate", "terminated with")
            ):
                raise VerificationError(
                    f"scaling sweep run failed on {m}x{n}: {report.reason}"
                )
            points.append(
                ScalingPoint(m=m, n=n, nodes=m * n, steps=report.steps, moves=report.moves)
            )
        return points
    points = []
    for m, n in sizes:
        grid = Grid(m, n)
        result = run_fsync(
            algorithm, grid, tie_break=TieBreak.FIRST, matcher=cache.matcher_for(algorithm, grid)
        )
        points.append(
            ScalingPoint(m=m, n=n, nodes=m * n, steps=result.steps, moves=result.total_moves)
        )
    return points


@dataclass(frozen=True)
class StateSpacePoint:
    """One measurement of a state-space scaling sweep."""

    m: int
    n: int
    nodes: int
    #: Reachable canonical states (of the reduction quotient if reduced).
    states: int
    #: Matcher-cache hit rate observed during this size's exploration.
    cache_hit_rate: float
    #: The active reduction spec the size was explored under.
    reduction: str = "none"
    #: Per-component reduction statistics of this size's exploration
    #: (``None`` when unreduced).
    reduction_stats: Optional[dict] = None


def state_space_sweep(
    algorithm: Algorithm,
    sizes: Optional[Iterable[Tuple[int, int]]] = None,
    model: str = "FSYNC",
    symmetry_reduction: bool = False,
    max_states: int = 200_000,
    pool: Optional[ExplorationPool] = None,
    reduction: ReductionSpec = None,
    backend: Optional["ExecutionBackend"] = None,
    store: Optional["VerdictStore"] = None,
) -> List[StateSpacePoint]:
    """Measure reachable-state-space growth over a family of grid sizes.

    ``reduction`` selects the reduction pipeline each size is explored
    under (``symmetry_reduction=True`` stays as the deprecated alias for
    ``reduction="grid"``); the per-size quotient ratios land on the points.

    Each size is explored exhaustively.  With ``pool`` the sweep runs
    through the persistent :class:`~repro.engine.pool.ExplorationPool`:
    small sizes route serially on its warm coordinator cache, large ones
    shard over its long-lived workers, and every size after the first
    benefits from the patterns already memoized — without the pool, each
    size runs serially on one sweep-local cache.  The counts are identical
    either way (routing and caching never change exploration results).
    ``backend`` supersedes ``pool``: each size's exploration fans its BFS
    waves out through ``backend.map_shards`` instead (see
    :mod:`repro.engine.backend`) — counts still identical.
    ``store`` memoizes each size's exploration in a
    :class:`~repro.engine.store.VerdictStore`, so repeated sweeps (and any
    other store consumer asking for the same exploration) skip the BFS.
    """
    if sizes is None:
        sizes = scaling_suite(algorithm)
    spec = normalize_reduction(reduction, symmetry_reduction)
    pool = pool if pool is not None else ExplorationPool(workers=1)
    points = []
    for m, n in sizes:
        if not algorithm.supports_grid(m, n):
            continue
        if backend is not None:
            exploration = explore_sharded(
                algorithm,
                Grid(m, n),
                model,
                reduction=spec,
                max_states=max_states,
                backend=backend,
                store=store,
            )
        else:
            exploration = pool.explore(
                algorithm,
                Grid(m, n),
                model,
                reduction=spec,
                max_states=max_states,
                store=store,
            )
        stats = exploration.matcher_stats or {}
        points.append(
            StateSpacePoint(
                m=m,
                n=n,
                nodes=m * n,
                states=exploration.num_states,
                cache_hit_rate=float(stats.get("hit_rate", 0.0)),
                reduction=exploration.reduction,
                reduction_stats=exploration.reduction_stats,
            )
        )
    return points


def fit_linear_in_nodes(points: List[ScalingPoint], field: str = "moves") -> float:
    """Least-squares slope of ``field`` against the node count (through the origin)."""
    num = sum(point.nodes * getattr(point, field) for point in points)
    den = sum(point.nodes * point.nodes for point in points)
    return num / den if den else float("nan")
