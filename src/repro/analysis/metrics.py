"""Quantitative metrics extracted from executions.

The paper reports no timing tables (its results are possibility/optimality
statements), so these metrics exist to characterise the reproduced
algorithms quantitatively: rounds/steps to termination, robot moves, color
changes, per-node visit counts, and the exploration ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.execution import ExecutionResult

__all__ = ["ExecutionMetrics", "collect_metrics"]


@dataclass(frozen=True)
class ExecutionMetrics:
    """Summary numbers for one execution."""

    algorithm: str
    model: str
    m: int
    n: int
    steps: int
    moves: int
    color_changes: int
    visited: int
    total_nodes: int
    terminated: bool

    @property
    def coverage(self) -> float:
        """Fraction of nodes visited."""
        return self.visited / self.total_nodes

    @property
    def moves_per_node(self) -> float:
        """Robot moves per grid node — the paper's algorithms are Theta(1) here."""
        return self.moves / self.total_nodes

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "model": self.model,
            "m": self.m,
            "n": self.n,
            "steps": self.steps,
            "moves": self.moves,
            "color_changes": self.color_changes,
            "coverage": self.coverage,
            "moves_per_node": self.moves_per_node,
            "terminated": self.terminated,
        }


def collect_metrics(result: ExecutionResult) -> ExecutionMetrics:
    """Extract :class:`ExecutionMetrics` from an execution result."""
    return ExecutionMetrics(
        algorithm=result.algorithm_name,
        model=result.model,
        m=result.grid.m,
        n=result.grid.n,
        steps=result.steps,
        moves=result.total_moves,
        color_changes=result.total_color_changes,
        visited=len(result.visited),
        total_nodes=result.grid.num_nodes,
        terminated=result.terminated,
    )
