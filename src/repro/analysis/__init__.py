"""Analysis utilities: Table 1 regeneration, route checking, metrics and scaling."""

from .metrics import ExecutionMetrics, collect_metrics
from .route import follows_boustrophedon_route, route_deviation
from .scaling import ScalingPoint, round_complexity_sweep
from .table1 import Table1Row, build_table1, render_table1

__all__ = [
    "ExecutionMetrics",
    "collect_metrics",
    "follows_boustrophedon_route",
    "route_deviation",
    "ScalingPoint",
    "round_complexity_sweep",
    "Table1Row",
    "build_table1",
    "render_table1",
]
