"""Figure 3: the boustrophedon exploration route.

All of the paper's algorithms explore the grid "according to the arrow in
Fig. 3": start from the northwest corner, sweep each row, drop one row at
each border, alternating direction.  This module checks an execution's
first-visit order against that route.

Because the formations span one or two rows (and trailing robots re-visit
nodes), the first-visit order is not literally the Figure 3 permutation;
what characterises the route is that *row bands are completed from north
to south*: a node is never first-visited while some node two or more rows
above it is still unvisited.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.execution import ExecutionResult
from ..core.grid import Node

__all__ = ["follows_boustrophedon_route", "route_deviation"]


def route_deviation(result: ExecutionResult, band: int = 2) -> List[Tuple[Node, Node]]:
    """Pairs (late, early) violating the north-to-south band discipline.

    A pair ``(u, v)`` is a deviation when ``u`` is first-visited before
    ``v`` although ``u`` lies at least ``band`` rows *below* ``v`` — i.e.
    the sweep jumped ahead leaving unexplored territory behind.  The
    paper's route (Figure 3) admits no such pair for ``band = 2``: the
    formations occupy at most two adjacent rows at any time.
    """
    order = result.first_visit_order()
    deviations: List[Tuple[Node, Node]] = []
    unvisited = set(result.grid.nodes())
    for node in order:
        unvisited.discard(node)
        for other in unvisited:
            if node[0] >= other[0] + band:
                deviations.append((node, other))
    return deviations


def follows_boustrophedon_route(result: ExecutionResult, band: int = 2) -> bool:
    """Whether the execution's first-visit order follows the Figure 3 route."""
    if not result.explored:
        return False
    return not route_deviation(result, band=band)
