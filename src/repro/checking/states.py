"""Canonical scheduler states for the exhaustive model checker.

The definitions moved into the engine kernel (:mod:`repro.engine.states`)
so the simulator, the checker and the campaign runner can share them; this
module remains the stable public import path.
"""

from __future__ import annotations

from ..engine.states import (
    AsyncRobotState,
    FrozenSnapshot,
    SchedulerState,
    freeze_snapshot,
    initial_state,
    thaw_snapshot,
    world_from_state,
)

__all__ = [
    "AsyncRobotState",
    "SchedulerState",
    "FrozenSnapshot",
    "initial_state",
    "world_from_state",
    "freeze_snapshot",
    "thaw_snapshot",
]
