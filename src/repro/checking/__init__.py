"""Exhaustive model checking of terminating exploration on small grids."""

from .model_checker import (
    CheckResult,
    check_terminating_exploration,
    enumerate_reachable,
    explore_state_space,
)
from .states import AsyncRobotState, SchedulerState, initial_state

__all__ = [
    "CheckResult",
    "check_terminating_exploration",
    "enumerate_reachable",
    "explore_state_space",
    "SchedulerState",
    "AsyncRobotState",
    "initial_state",
]
