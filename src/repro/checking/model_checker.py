"""Exhaustive exploration of all scheduler behaviours on small grids.

The paper's correctness arguments quantify over *every* fair schedule and
every choice the scheduler makes when several rules or views match.  On a
small grid the reachable state space of that game is finite, so it can be
enumerated exactly:

* :func:`explore_state_space` builds the successor graph of canonical
  states (:mod:`repro.engine.states`) under FSYNC, SSYNC or ASYNC
  semantics, branching over every scheduler choice;
* :func:`check_terminating_exploration` then decides the two halves of
  Definition 1 over *all* executions:

  - **termination**: the successor graph contains no reachable cycle
    (every execution is finite), and
  - **coverage**: along every maximal execution, every grid node is
    eventually occupied — computed by a backward fixpoint over the DAG
    (the set of nodes *guaranteed* to be visited from a state is the
    intersection over its successors, plus the nodes occupied in the
    state itself).

Successor generation is delegated to the unified transition-system kernel
(:class:`repro.engine.transition.AlgorithmTransitionSystem`) — the same
semantics the simulator walks — and the frontier search, state interning
and graph analyses live in :mod:`repro.engine.explorer`.

``reduction=`` selects a composable reduction pipeline
(:mod:`repro.engine.reduction`): ``"grid"`` quotients the search by the
grid automorphisms the algorithm cannot distinguish (rotations, plus
reflections for chirality-free algorithms; see
:mod:`repro.engine.symmetry`), ``"grid+color"`` additionally quotients by
the detected color-permutation symmetries of the rule set, and
``"grid+color+por"`` adds ample-set partial-order reduction for the ASYNC
micro-step interleavings.  Every combination shrinks the state space while
preserving both the termination and the coverage verdicts exactly.
``symmetry_reduction=True`` remains as the deprecated boolean alias for
``reduction="grid"``.

This is a strictly stronger check than any number of randomized
simulations, and it is the tool used to validate the paper's ASYNC
algorithms (Table 1, SSYNC/ASYNC rows) on small grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.algorithm import Algorithm
from ..core.grid import Grid
from ..engine.explorer import Exploration, guaranteed_nodes, has_cycle
from ..engine.matcher import MatcherCache
from ..engine.pool import ExplorationPool
from ..engine.reduction import ReductionSpec, normalize_reduction
from ..engine.sharded import explore_sharded
from ..engine.states import SchedulerState
from ..engine.transition import AlgorithmTransitionSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.backend import ExecutionBackend

__all__ = ["CheckResult", "explore_state_space", "check_terminating_exploration", "enumerate_reachable"]


@dataclass
class CheckResult:
    """Outcome of an exhaustive check on one (algorithm, grid, model) triple."""

    algorithm: str
    model: str
    m: int
    n: int
    states_explored: int
    terminal_states: int
    terminates: bool
    explores: bool
    counterexample: Optional[str] = None
    #: Whether the counts above refer to a symmetry-reduced quotient (grid
    #: and/or color).  Kept for backward compatibility; ``reduction`` names
    #: the precise pipeline.
    symmetry_reduction: bool = False
    #: Matcher-cache counters accumulated by this check (``hits`` /
    #: ``misses`` / ``hit_rate``); ``None`` for results built by hand.
    #: Excluded from equality: the counters depend on how warm the matcher
    #: happened to be, and results are promised identical across the
    #: serial/sharded/cached execution modes.
    matcher_stats: Optional[Dict[str, float]] = field(default=None, compare=False)
    #: The active reduction spec the check ran under (``"none"``,
    #: ``"grid"``, ``"grid+color+por"``, ...).
    reduction: str = "none"
    #: Per-component reduction statistics (orbit collapses, interleavings
    #: pruned); deterministic for a given check, but excluded from equality
    #: like the matcher counters — observability, not part of the verdict.
    reduction_stats: Optional[Dict[str, Dict[str, float]]] = field(default=None, compare=False)
    #: Wire accounting when the exploration ran over a stateful shard
    #: session (``bytes_sent`` / ``bytes_received`` / ``rows_exchanged`` /
    #: ``waves``; see :mod:`repro.engine.distributed`).  Transport
    #: observability, excluded from equality like the matcher counters.
    wire_stats: Optional[Dict[str, int]] = field(default=None, compare=False)
    #: Verdict-store counters when the check was requested through a
    #: :class:`~repro.engine.store.VerdictStore` (``hits`` / ``misses`` /
    #: ``coalesced`` / ``outcome``).  Cache observability, excluded from
    #: equality: a cached check is identical to a freshly computed one.
    store_stats: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """Whether terminating exploration holds over all scheduler behaviours."""
        return self.terminates and self.explores

    def summary(self) -> str:
        status = "terminating exploration holds" if self.ok else f"FAILS ({self.counterexample})"
        if self.reduction not in ("none", "grid"):
            reduced = f", reduced [{self.reduction}]"
        else:
            reduced = ", symmetry-reduced" if self.symmetry_reduction else ""
        cache = ""
        if self.matcher_stats is not None:
            cache = f", match cache {self.matcher_stats['hit_rate']:.0%} hits"
        return (
            f"{self.algorithm} on {self.m}x{self.n} [{self.model}]: {status}"
            f" ({self.states_explored} states, {self.terminal_states} terminal{reduced}{cache})"
        )


def successors(algorithm: Algorithm, grid: Grid, state: SchedulerState, model: str) -> List[SchedulerState]:
    """All scheduler-reachable successor states of ``state`` under ``model``.

    Convenience wrapper constructing a fresh transition system; callers that
    expand many states should build one
    :class:`~repro.engine.transition.AlgorithmTransitionSystem` and reuse it
    so the snapshot/match memoization pays off.
    """
    return AlgorithmTransitionSystem(algorithm, grid, model).successors(state)


def _explore(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    *,
    max_states: int,
    start: Optional[SchedulerState] = None,
    symmetry_reduction: bool,
    reduction: ReductionSpec,
    workers: Optional[int],
    cache: Optional[MatcherCache],
    pool: Optional[ExplorationPool],
    backend: Optional["ExecutionBackend"] = None,
    kernel: Optional[str] = None,
    store=None,
) -> Exploration:
    """Route one exploration through the pool, the sharded or the serial explorer.

    ``pool`` — a persistent :class:`~repro.engine.pool.ExplorationPool` —
    takes precedence: the pool routes adaptively (serial below its
    estimated-state-count threshold, sharded on its long-lived workers
    above) and keeps both its coordinator-side and its per-worker matcher
    caches warm across the checks threaded through it.  Otherwise
    ``workers > 1`` fans the frontier over an ephemeral process pool (see
    :mod:`repro.engine.sharded`), and the serial path optionally runs on a
    matcher backed by a shared :class:`MatcherCache` so repeated checks of
    the same algorithm — at any grid size — start warm.  Every route
    produces the identical ``Exploration``.

    ``kernel`` selects the successor kernel (``"object"`` / ``"packed"`` /
    ``"auto"``; see :mod:`repro.engine.packed`) on every route — it rides
    in the ``ExploreKey``, so sharded and backend workers rebuild the
    matching transition system.  Verdicts are kernel-independent.
    """
    if model not in ("FSYNC", "SSYNC", "ASYNC"):
        raise ValueError(f"unknown model {model!r}")
    spec = normalize_reduction(reduction, symmetry_reduction)
    if backend is not None:
        # An ExecutionBackend supersedes pool/workers/cache: the wave loop
        # advances a stateful shard session when the backend offers one,
        # else fans shards out through backend.map_shards (possibly over
        # TCP worker daemons) — byte-identical to the serial path either way.
        return explore_sharded(
            algorithm,
            grid,
            model,
            reduction=spec,
            max_states=max_states,
            start=start,
            cache=cache,
            backend=backend,
            kernel=kernel,
            store=store,
        )
    if pool is not None:
        return pool.explore(
            algorithm,
            grid,
            model,
            reduction=spec,
            max_states=max_states,
            start=start,
            kernel=kernel,
            store=store,
        )
    # explore_sharded owns both remaining routes: workers > 1 shards over an
    # ephemeral pool, workers <= 1 is the serial explorer on ``cache``.
    return explore_sharded(
        algorithm,
        grid,
        model,
        workers=workers if workers is not None else 1,
        reduction=spec,
        max_states=max_states,
        start=start,
        cache=cache,
        kernel=kernel,
        store=store,
    )


def explore_state_space(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
    start: Optional[SchedulerState] = None,
    symmetry_reduction: bool = False,
    workers: Optional[int] = None,
    cache: Optional[MatcherCache] = None,
    pool: Optional[ExplorationPool] = None,
    reduction: ReductionSpec = None,
    backend: Optional["ExecutionBackend"] = None,
    kernel: Optional[str] = None,
    store=None,
) -> Dict[SchedulerState, List[SchedulerState]]:
    """Build the successor graph of all reachable scheduler states.

    With a quotienting ``reduction`` (``"grid"``, ``"grid+color"``, ...)
    the returned graph is the quotient by the selected symmetries: states
    are orbit representatives, and a representative's successor list
    contains the representatives of its raw successors; ``"por"`` prunes
    ASYNC interleavings instead of quotienting.  ``symmetry_reduction=True``
    is the deprecated alias for ``reduction="grid"``.

    ``workers > 1`` shards the frontier across a process pool; ``cache``
    reuses snapshot/match memo tables across repeated (serial) checks;
    ``pool`` runs the exploration on a persistent
    :class:`~repro.engine.pool.ExplorationPool` (superseding ``workers``
    and ``cache``, which the pool manages itself); ``store`` serves the
    exploration from a persistent
    :class:`~repro.engine.store.VerdictStore` when it was computed
    before.  All four leave the result unchanged.
    """
    exploration = _explore(
        algorithm,
        grid,
        model,
        max_states=max_states,
        start=start,
        symmetry_reduction=symmetry_reduction,
        reduction=reduction,
        workers=workers,
        cache=cache,
        pool=pool,
        backend=backend,
        kernel=kernel,
        store=store,
    )
    return exploration.graph()


def enumerate_reachable(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
    symmetry_reduction: bool = False,
    workers: Optional[int] = None,
    cache: Optional[MatcherCache] = None,
    pool: Optional[ExplorationPool] = None,
    reduction: ReductionSpec = None,
    backend: Optional["ExecutionBackend"] = None,
    kernel: Optional[str] = None,
    store=None,
) -> int:
    """Number of reachable canonical states (convenience wrapper)."""
    return _explore(
        algorithm,
        grid,
        model,
        max_states=max_states,
        symmetry_reduction=symmetry_reduction,
        reduction=reduction,
        workers=workers,
        cache=cache,
        pool=pool,
        backend=backend,
        kernel=kernel,
        store=store,
    ).num_states


def check_terminating_exploration(
    algorithm: Algorithm,
    grid: Grid,
    model: str = "SSYNC",
    max_states: int = 200_000,
    symmetry_reduction: bool = False,
    workers: Optional[int] = None,
    cache: Optional[MatcherCache] = None,
    pool: Optional[ExplorationPool] = None,
    reduction: ReductionSpec = None,
    backend: Optional["ExecutionBackend"] = None,
    kernel: Optional[str] = None,
    store=None,
) -> CheckResult:
    """Exhaustively decide Definition 1 over all scheduler behaviours.

    The verdict is identical under every ``reduction`` spec — ``"none"``,
    ``"grid"``, ``"grid+color"``, ``"grid+color+por"`` and any other
    combination; the reduced run only explores fewer states (a quotient
    cycle lifts to an infinite raw execution and vice versa, coverage sets
    are mapped exactly through the collapsing witnesses, and the ample-set
    conditions plus cycle proviso make partial-order pruning
    verdict-preserving; see :mod:`repro.engine.reduction`).
    ``symmetry_reduction=True`` remains the deprecated alias for
    ``reduction="grid"``.  The verdict is likewise identical with and
    without ``workers`` (sharded exploration merges into the serial graph
    exactly), with and without ``cache`` (memoization only skips
    recomputation), and with and without ``pool`` (a persistent
    :class:`~repro.engine.pool.ExplorationPool`, which routes adaptively
    between those two mechanisms and supersedes both arguments).  It is
    also identical under every ``kernel`` (``"object"`` / ``"packed"`` /
    ``"auto"``): the packed successor kernel only changes how fast states
    are expanded, never which states exist.

    ``store`` — a :class:`~repro.engine.store.VerdictStore` — caches the
    whole :class:`CheckResult` under a content key that includes the
    normalized reduction spec, kernel spec *and* ``max_states`` (so a
    budget-limited check can never answer for a roomier one); duplicate
    concurrent requests coalesce onto a single exploration.  Cached
    results are identical to computed ones.
    """
    if store is not None:
        from ..engine.pool import registered
        from ..engine.spec import check_store_key

        if registered(algorithm):
            key = check_store_key(
                algorithm.name, grid.m, grid.n, model,
                reduction, kernel, max_states, symmetry_reduction,
            )
            return store.fetch(
                key,
                lambda: _run_check(
                    algorithm, grid, model,
                    max_states=max_states, symmetry_reduction=symmetry_reduction,
                    workers=workers, cache=cache, pool=pool, reduction=reduction,
                    backend=backend, kernel=kernel, store=store,
                ),
            )
    return _run_check(
        algorithm, grid, model,
        max_states=max_states, symmetry_reduction=symmetry_reduction,
        workers=workers, cache=cache, pool=pool, reduction=reduction,
        backend=backend, kernel=kernel, store=store,
    )


def _run_check(
    algorithm: Algorithm,
    grid: Grid,
    model: str,
    *,
    max_states: int,
    symmetry_reduction: bool,
    workers: Optional[int],
    cache: Optional[MatcherCache],
    pool: Optional[ExplorationPool],
    reduction: ReductionSpec,
    backend: Optional["ExecutionBackend"],
    kernel: Optional[str],
    store=None,
) -> CheckResult:
    """Compute one exhaustive check (the uncached body of the entry point)."""
    exploration = _explore(
        algorithm,
        grid,
        model,
        max_states=max_states,
        symmetry_reduction=symmetry_reduction,
        reduction=reduction,
        workers=workers,
        cache=cache,
        pool=pool,
        backend=backend,
        kernel=kernel,
        store=store,
    )
    terminal_states = len(exploration.terminal_indices())

    if has_cycle(exploration.succ):
        return CheckResult(
            algorithm=algorithm.name,
            model=model,
            m=grid.m,
            n=grid.n,
            states_explored=exploration.num_states,
            terminal_states=terminal_states,
            terminates=False,
            explores=False,
            counterexample="a scheduler can drive the system into an infinite execution (cycle reached)",
            symmetry_reduction=exploration.reduced,
            matcher_stats=exploration.matcher_stats,
            reduction=exploration.reduction,
            reduction_stats=exploration.reduction_stats,
            wire_stats=exploration.wire_stats,
        )

    all_nodes = frozenset(grid.nodes())
    guaranteed = guaranteed_nodes(exploration)
    guaranteed_root = guaranteed[exploration.root]
    if exploration.root_sym is not None:
        # Map the canonical root's guarantee back into the raw initial
        # state's coordinates so counterexamples name the actual nodes.
        guaranteed_root = frozenset(exploration.root_sym.node(node) for node in guaranteed_root)

    explores = guaranteed_root == all_nodes
    counterexample = None
    if not explores:
        missing = sorted(all_nodes - guaranteed_root)
        counterexample = f"a scheduler can keep nodes {missing} unvisited on some execution"
    return CheckResult(
        algorithm=algorithm.name,
        model=model,
        m=grid.m,
        n=grid.n,
        states_explored=exploration.num_states,
        terminal_states=terminal_states,
        terminates=True,
        explores=explores,
        counterexample=counterexample,
        symmetry_reduction=exploration.reduced,
        matcher_stats=exploration.matcher_stats,
        reduction=exploration.reduction,
        reduction_stats=exploration.reduction_stats,
        wire_stats=exploration.wire_stats,
    )
